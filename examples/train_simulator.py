#!/usr/bin/env python
"""Train the data-driven wetlab simulators on paired clean/noisy strands.

Reproduces the workflow of Section V-B: sample paired data from the "real"
channel (here the hidden reference channel; in production, aligned
sequencing reads), fit both data-driven models —

* the alignment-fitted :class:`LearnedProfileChannel` (seconds to fit), and
* the GRU+attention seq2seq model of Figure 4 (minutes to train on CPU) —

and compare how well each reproduces the real channel's error statistics
on held-out strands.

Run:  python examples/train_simulator.py            (profile model only)
      python examples/train_simulator.py --seq2seq  (additionally trains the RNN)
"""

import random
import sys

from repro.dna.alphabet import random_sequence
from repro.dna.alignment import edit_operations
from repro.simulation import LearnedProfileChannel, WetlabReferenceChannel
from repro.simulation.dataset import make_paired_dataset

STRAND_LENGTH = 80
TRAIN_CLUSTERS = 600
READS_PER_CLUSTER = 3


def error_statistics(channel, strands, rng, reads_per_strand=4):
    """Aggregate (ins, del, sub) rates of *channel* over *strands*."""
    ins = dele = sub = positions = 0
    for strand in strands:
        for _ in range(reads_per_strand):
            noisy = channel.transmit(strand, rng)
            for op in edit_operations(strand, noisy):
                if op.kind == "ins":
                    ins += 1
                else:
                    positions += 1
                    dele += op.kind == "del"
                    sub += op.kind == "sub"
    return ins / positions, dele / positions, sub / positions


def main() -> None:
    rng = random.Random(31)
    real = WetlabReferenceChannel()
    dataset = make_paired_dataset(
        real,
        num_clusters=TRAIN_CLUSTERS,
        strand_length=STRAND_LENGTH,
        reads_per_cluster=READS_PER_CLUSTER,
        rng=rng,
    )
    print(
        f"paired dataset: {TRAIN_CLUSTERS} clusters x {READS_PER_CLUSTER} reads, "
        f"split {len(dataset.train_indices)}/{len(dataset.val_indices)}/"
        f"{len(dataset.test_indices)}"
    )

    profile = LearnedProfileChannel(bins=30).fit(dataset.train_pairs)
    print("fitted LearnedProfileChannel "
          f"(per-bin deletion rates, 5' -> 3': "
          f"{[round(r, 3) for r in profile.p_del[::6]]})")

    test_strands = [random_sequence(STRAND_LENGTH, rng) for _ in range(40)]
    real_stats = error_statistics(real, test_strands, rng)
    profile_stats = error_statistics(profile, test_strands, rng)
    print(f"\n{'channel':>18s} | {'ins':>6s} | {'del':>6s} | {'sub':>6s}")
    print(f"{'real (hidden)':>18s} | {real_stats[0]:.4f} | {real_stats[1]:.4f} | {real_stats[2]:.4f}")
    print(f"{'learned profile':>18s} | {profile_stats[0]:.4f} | {profile_stats[1]:.4f} | {profile_stats[2]:.4f}")

    if "--seq2seq" in sys.argv:
        from repro.seq2seq import (
            Seq2SeqChannelModel,
            Seq2SeqTrainer,
            TrainingConfig,
        )

        print("\ntraining GRU+attention seq2seq (this takes a few minutes)...")
        model = Seq2SeqChannelModel(hidden_size=48, embed_dim=12, attention_size=32)
        trainer = Seq2SeqTrainer(
            model,
            TrainingConfig(epochs=10, batch_size=16, learning_rate=3e-3),
        )
        history = trainer.fit(dataset.train_pairs, dataset.val_pairs)
        print(
            "epoch losses: "
            + ", ".join(f"{loss:.3f}" for loss in history.train_losses)
        )
        rnn_stats = error_statistics(model, test_strands, rng, reads_per_strand=2)
        print(f"{'seq2seq (RNN)':>18s} | {rnn_stats[0]:.4f} | {rnn_stats[1]:.4f} | {rnn_stats[2]:.4f}")
    else:
        print("\n(pass --seq2seq to also train the Figure-4 RNN model)")


if __name__ == "__main__":
    main()
