#!/usr/bin/env python
"""Reliability-aware storage: Baseline vs Gini vs DNAMapper layouts.

Double-sided BMA reconstruction concentrates errors in the middle strand
indexes (paper Figure 6), so in the baseline layout the *middle
Reed-Solomon rows* carry almost all the risk.  This example stores a
quality-tiered payload (think of an image's most-significant bit planes vs
its least-significant ones) under all three layouts and damages the strands
with the same middle-peaked error profile:

* **baseline** — rows in natural order: the middle rows fail, and whatever
  tier lives there is destroyed;
* **gini** — codewords spread diagonally: every codeword sees the average
  error rate, which the RS parity absorbs;
* **dnamapper** — rows are ranked by a measured reliability profile and the
  priority tiers are mapped accordingly: any residual damage lands in the
  bulk tier, never the critical one.

Data layout note: a molecule is a matrix *column*, so a tier must occupy a
byte *row range within each molecule* to have a defined reliability.  The
payload below interleaves the three tiers into every 30-byte chunk
(critical bytes first), which is exactly how DNAMapper expects
priority-ordered data.

Run:  python examples/reliability_aware_storage.py
"""

import math
import random

from repro import (
    BaselineLayout,
    DNADecoder,
    DNAEncoder,
    DNAMapperLayout,
    EncodingParameters,
    GiniLayout,
)
from repro.codec.bits import bases_to_bytes, bytes_to_bases

PAYLOAD_BYTES = 30
TIER_ROWS = PAYLOAD_BYTES // 3  # rows 0-9 critical, 10-19 standard, 20-29 bulk
TIER_NAMES = ("critical", "standard", "bulk")
CHUNKS = 60
PEAK = 0.18


_HEADER_BYTES = 8  # the codec prepends a length header to the stream


def tier_of(data_offset: int) -> int:
    """Tier of a data byte, by the physical molecule row it will occupy.

    The encoder's stream is ``header + data``, so data byte ``d`` lands on
    row ``(d + header) % payload_bytes`` of its molecule.
    """
    row = (data_offset + _HEADER_BYTES) % PAYLOAD_BYTES
    return min(2, row // TIER_ROWS)


def make_tiered_payload() -> bytes:
    """A payload whose tier structure aligns with physical molecule rows."""
    payload = bytearray()
    for offset in range(CHUNKS * PAYLOAD_BYTES - _HEADER_BYTES):
        tier = tier_of(offset)
        payload.append((offset * 31 + tier * 97) % 256)
    return bytes(payload)


def middle_peaked(row: int, rows: int) -> float:
    center = (rows - 1) / 2
    return PEAK * math.exp(-(((row - center) / (rows / 5)) ** 2))


def measured_reliability(rows: int):
    """What profiling reconstruction output (paper Fig. 6) would report."""
    return [1.0 - middle_peaked(row, rows) for row in range(rows)]


def corrupt(references, params, rng):
    corrupted = []
    index_nt = params.index_bytes * 4
    for strand in references:
        payload = bytearray(bases_to_bytes(strand[index_nt:]))
        for row in range(len(payload)):
            if rng.random() < middle_peaked(row, len(payload)):
                payload[row] ^= rng.randrange(1, 256)
        corrupted.append(strand[:index_nt] + bytes_to_bases(bytes(payload)))
    return corrupted


def tier_damage(original: bytes, recovered: bytes):
    """Byte errors per tier (tier = the byte's physical molecule row)."""
    recovered = recovered.ljust(len(original), b"\0")
    damage = [0, 0, 0]
    for offset, (a, b) in enumerate(zip(original, recovered)):
        if a != b:
            damage[tier_of(offset)] += 1
    return damage


def main() -> None:
    data = make_tiered_payload()
    layouts = {
        "baseline": BaselineLayout(),
        "gini": GiniLayout(),
        "dnamapper": DNAMapperLayout(measured_reliability(PAYLOAD_BYTES)),
    }
    print(f"payload: {len(data)} bytes, tiers interleaved per chunk; "
          f"middle-peaked damage (peak {PEAK:.0%})\n")
    print(f"{'layout':>10s} | {'critical':>8s} | {'standard':>8s} | {'bulk':>8s} | outcome")
    print("-" * 64)
    for name, layout in layouts.items():
        params = EncodingParameters(payload_bytes=PAYLOAD_BYTES, layout=layout)
        pool = DNAEncoder(params).encode(data)
        rng = random.Random(99)
        damaged = corrupt(pool.references, params, rng)
        recovered, report = DNADecoder(params).decode(
            damaged, expected_units=pool.num_units
        )
        damage = tier_damage(data, recovered)
        outcome = (
            "fully corrected"
            if recovered == data
            else f"{report.failed_rows} rows uncorrectable"
        )
        print(
            f"{name:>10s} | {damage[0]:8d} | {damage[1]:8d} | {damage[2]:8d} | {outcome}"
        )

    print(
        "\nReading the table: the baseline layout loses its middle rows and\n"
        "the 'standard' tier that happens to live there; Gini spreads the\n"
        "same damage across all codewords so parity absorbs it; DNAMapper\n"
        "pushes any residual damage into the 'bulk' tier."
    )


if __name__ == "__main__":
    main()
