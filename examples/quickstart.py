#!/usr/bin/env python
"""Quickstart: store a file in (simulated) DNA and read it back.

Runs the full five-stage pipeline — encode, wetlab simulation, clustering,
trace reconstruction, decoding — with defaults matching the paper's Table
III setting (120 nt payload, 6% error, coverage 10) and prints per-stage
statistics.

Run:  python examples/quickstart.py
"""

from repro import Pipeline, PipelineConfig

MESSAGE = (
    b"DNA data storage stores bits in synthesized DNA molecules. "
    b"This file made the round trip through the whole pipeline: it was "
    b"encoded into indexed, Reed-Solomon-protected strands, sequenced "
    b"through a noisy simulated channel, clustered, reconstructed, and "
    b"decoded back to the exact original bytes. "
) * 8


def main() -> None:
    pipeline = Pipeline(PipelineConfig())
    print(f"storing {len(MESSAGE)} bytes...")
    result = pipeline.run(MESSAGE)

    encoded = result.encoded
    print(f"  encoded into {len(encoded.strands)} strands "
          f"({encoded.parameters.body_nt} nt body, "
          f"{encoded.num_units} encoding unit(s))")
    print(f"  sequencing produced {len(result.sequencing.reads)} noisy reads "
          f"(coverage {result.sequencing.coverage:.1f})")
    print(f"  clustering found {len(result.clustering.clusters)} clusters "
          f"({result.clustering.edit_comparisons} edit-distance calls)")
    report = result.decode_report
    print(f"  decoder: {report.clean_rows} clean rows, "
          f"{report.corrected_rows} corrected, {report.failed_rows} failed, "
          f"{report.missing_columns} molecules lost")

    print("\nstage latency (s):")
    for stage, seconds in result.timings.as_dict().items():
        print(f"  {stage:>15s}: {seconds:7.2f}")

    assert result.success and result.data == MESSAGE
    print("\nfile recovered exactly: OK")


if __name__ == "__main__":
    main()
