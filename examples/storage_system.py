#!/usr/bin/env python
"""The whole toolkit behind a key-value interface.

:class:`~repro.pipeline.store.DNAStorageSystem` is the paper's Section II-F
architecture as an API: ``store(key, data)`` / ``retrieve(key)`` over one
shared simulated tube, with PCR random access, sequencing, preprocessing,
clustering, reconstruction and decoding all happening behind the calls.
Also shows cheap physical copying via :meth:`sample_copy` — pipette out a
fraction of the tube and the copy still retrieves everything.

Run:  python examples/storage_system.py
"""

from repro.clustering import ClusteringConfig
from repro.pipeline import DNAStorageSystem, StorageSystemConfig
from repro.simulation import NegativeBinomialCoverage, WetlabReferenceChannel

FILES = {
    "readme": b"Store me in a molecule, please. " * 10,
    "ledger": bytes((i * 73) % 256 for i in range(700)),
    "poem": b"And all I ask is a tall ship and a star to steer her by; " * 6,
}


def main() -> None:
    system = DNAStorageSystem(
        StorageSystemConfig(
            channel=WetlabReferenceChannel.illumina(),
            coverage=NegativeBinomialCoverage(12.0, dispersion=4.0),
            clustering=ClusteringConfig(seed=3),
        )
    )
    for key, data in FILES.items():
        molecules = system.store(key, data)
        print(f"store({key!r}): {len(data):4d} B -> {molecules} molecules")
    print(f"tube now holds {len(system)} molecules for keys {system.keys}\n")

    for key, data in FILES.items():
        result = system.retrieve(key)
        status = "exact" if result.data == data else "MISMATCH"
        print(
            f"retrieve({key!r}): {status}; "
            f"{len(result.clustering.clusters)} clusters, "
            f"{result.timings.total:.1f}s"
        )
        assert result.data == data

    print("\nphysical copy (60% aliquot):")
    copy = system.sample_copy(0.6)
    result = copy.retrieve("poem")
    print(
        f"copy holds {len(copy)} molecules; retrieve('poem'): "
        f"{'exact' if result.data == FILES['poem'] else 'MISMATCH'}"
    )
    assert result.data == FILES["poem"]


if __name__ == "__main__":
    main()
