#!/usr/bin/env python
"""Handling wetlab sequencing data (Section VIII of the paper).

Instead of feeding the clustering module from the simulator, this example
ingests a **fastq file** the way a real Nanopore/Illumina run would deliver
it: reads arrive in both orientations, carry primer sites and quality
scores, and include some junk.  The wetlab preprocessing module orients,
assigns, trims and filters the reads; the rest of the pipeline then
recovers the file.

(The fastq file itself is synthesized here — see DESIGN.md §4 on
substituting real sequencing runs — but the code path from fastq to decoded
file is exactly the one real data would take.)

Run:  python examples/wetlab_fastq.py
"""

import random
import tempfile
from pathlib import Path

from repro import (
    DNAEncoder,
    EncodingParameters,
    Pipeline,
    PipelineConfig,
    design_primer_library,
)
from repro.clustering import ClusteringConfig
from repro.dna.alphabet import random_sequence, reverse_complement
from repro.dna.fastq import FastqRecord, read_fastq, write_fastq
from repro.simulation import WetlabReferenceChannel
from repro.wetlab import WetlabPreprocessor

DATA = b"Sequenced, not simulated (well, almost). " * 12


def synthesize_fastq(path: Path, strands, channel, rng) -> None:
    """Emulate a sequencer writing a fastq: noise, orientations, junk."""
    records = []
    read_id = 0
    for strand in strands:
        for _ in range(10):  # coverage 10
            noisy = channel.transmit(strand, rng)
            if not noisy:
                continue
            if rng.random() < 0.5:  # 3'->5' orientation
                noisy = reverse_complement(noisy)
            qualities = [max(2, min(40, int(rng.gauss(30, 6)))) for _ in noisy]
            records.append(FastqRecord(f"read_{read_id}", noisy, qualities))
            read_id += 1
    for _ in range(40):  # junk reads that match no primer pair
        junk = random_sequence(rng.randrange(60, 180), rng)
        records.append(FastqRecord(f"junk_{read_id}", junk, [12] * len(junk)))
        read_id += 1
    rng.shuffle(records)
    write_fastq(records, path)


def main() -> None:
    rng = random.Random(8)
    pair = design_primer_library(1, rng=rng)[0]
    params = EncodingParameters(primer_pair=pair)
    encoded = DNAEncoder(params).encode(DATA)
    print(f"encoded {len(DATA)} B into {len(encoded.strands)} tagged strands")

    # A decent sequencing run: position-dependent and bursty, but with a
    # gentler 3' degradation ramp than the worst-case reference profile.
    sequencer = WetlabReferenceChannel(end_ramp=1.0, p_truncate=0.01)

    with tempfile.TemporaryDirectory() as tmp:
        fastq_path = Path(tmp) / "run.fastq"
        synthesize_fastq(fastq_path, encoded.strands, sequencer, rng)
        records = read_fastq(fastq_path)
        print(f"sequencer delivered {len(records)} fastq records")

        preprocessor = WetlabPreprocessor(
            [pair],
            min_mean_quality=15,
            expected_body_length=params.body_nt,
        )
        by_pair, stats = preprocessor.process(records)
        print(
            f"preprocessing: {stats.accepted} accepted "
            f"({stats.flipped} re-oriented), "
            f"{stats.rejected_primer} junk/primer rejects, "
            f"{stats.rejected_quality} low-quality, "
            f"{stats.rejected_length} bad length"
        )

        pipeline = Pipeline(
            PipelineConfig(encoding=params, clustering=ClusteringConfig(seed=3))
        )
        result = pipeline.run_from_reads(
            by_pair[0], expected_units=encoded.num_units
        )
        assert result.data == DATA, "wetlab path failed to recover the file"
        print(f"\nrecovered the file exactly from fastq: {result.data[:41]!r}...")


if __name__ == "__main__":
    main()
