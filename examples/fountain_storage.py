#!/usr/bin/env python
"""Rateless storage with a DNA-Fountain-style LT code.

The default toolkit architecture is fixed-rate Reed-Solomon; this example
swaps the encoding module for the rateless :class:`FountainCodec` (Erlich &
Zielinski's DNA Fountain) while reusing the toolkit's simulation and
reconstruction stages — demonstrating the pipeline's modularity with an
encoding scheme that looks nothing like the matrix architecture.

Flow: file -> droplets -> strands -> noisy reads (grouped per strand by a
perfect-clustering shortcut) -> consensus strands -> droplets -> peeling
decoder -> file.  Dropout resilience comes from the droplet surplus, not
from parity symbols.

Run:  python examples/fountain_storage.py
"""

import random

from repro.codec import FountainCodec
from repro.reconstruction import NWConsensusReconstructor
from repro.simulation import IIDChannel, NegativeBinomialCoverage, sequence_pool

DATA = b"Rateless codes let you pour as many droplets as you need. " * 40


def main() -> None:
    rng = random.Random(77)
    codec = FountainCodec(block_bytes=24)
    blocks = codec.split_blocks(DATA)
    droplets = codec.encode(DATA, overhead=2.0)
    strands = [codec.droplet_to_strand(droplet) for droplet in droplets]
    print(
        f"{len(DATA)} B -> {len(blocks)} blocks -> {len(droplets)} droplets "
        f"({codec.strand_nt} nt per strand, 100% droplet surplus)"
    )

    # Sequencing with overdispersed coverage: some strands drop out
    # entirely, which a rateless code shrugs off.
    channel = IIDChannel.from_total_rate(0.05)
    run = sequence_pool(
        strands, channel, NegativeBinomialCoverage(10.0, dispersion=3.0), rng
    )
    print(
        f"sequencing: {len(run.reads)} reads, "
        f"{len(run.dropouts)} strands received no reads at all"
    )

    # Reconstruct each surviving strand from its reads (ground-truth
    # clusters keep the example focused on the codec; wire in
    # RashtchianClusterer for the full experience).
    reconstructor = NWConsensusReconstructor()
    consensus_strands = []
    for origin, members in run.true_clusters().items():
        cluster = [run.reads[i] for i in members]
        consensus_strands.append(
            reconstructor.reconstruct(cluster, codec.strand_nt)
        )

    recovered_droplets = []
    undecodable = 0
    for strand in consensus_strands:
        try:
            recovered_droplets.append(codec.strand_to_droplet(strand))
        except ValueError:
            undecodable += 1
    print(
        f"reconstruction: {len(recovered_droplets)} droplets recovered, "
        f"{undecodable} unusable"
    )

    recovered = codec.decode(recovered_droplets, len(blocks))
    assert recovered == DATA, "fountain pipeline failed"
    print(f"\npeeling decoder recovered the file exactly: "
          f"{recovered[:58]!r}...")


if __name__ == "__main__":
    main()
