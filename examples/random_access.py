#!/usr/bin/env python
"""Random access: a DNA pool as a primer-addressed key-value store.

Three files are encoded under three different PCR primer pairs and their
molecules are mixed in one pool (one physical test tube).  To read one file
back, the pool is PCR-amplified with that file's primer pair — only its
molecules amplify — and the amplified reads go through the regular
sequencing/clustering/reconstruction/decoding pipeline.

This is Section II-E/II-F of the paper: PCR as the addressing mechanism,
the pool as a key-value store.

Run:  python examples/random_access.py
"""

import random

from repro import (
    DNAEncoder,
    DNAPool,
    EncodingParameters,
    PCRParameters,
    Pipeline,
    PipelineConfig,
    design_primer_library,
)
from repro.clustering import ClusteringConfig
from repro.simulation import ConstantCoverage, IIDChannel
from repro.wetlab import WetlabPreprocessor

FILES = {
    "poem": b"Shall I compare thee to a summer's day? " * 6,
    "notes": b"PCR primers are the keys of the DNA key-value store. " * 5,
    "logo": bytes(range(200)) * 2,
}


def main() -> None:
    rng = random.Random(2024)
    library = design_primer_library(len(FILES), rng=rng)

    # --- write path: encode each file under its own primer pair, mix all
    # molecules in one pool.
    pool = DNAPool()
    parameters = {}
    encoded_units = {}
    for (name, data), pair in zip(FILES.items(), library):
        params = EncodingParameters(
            payload_bytes=20, data_columns=30, parity_columns=12, primer_pair=pair
        )
        encoded = DNAEncoder(params).encode(data)
        pool.store(name, pair, encoded.strands)
        parameters[name] = params
        encoded_units[name] = encoded.num_units
        print(f"stored {name!r}: {len(data)} B -> {len(encoded.strands)} molecules")
    print(f"pool now holds {len(pool)} molecules from {len(pool.keys)} files\n")

    # --- read path: select one file by PCR, sequence, and decode.
    target = "notes"
    amplified = pool.pcr_select(
        pool.primer_pair(target),
        PCRParameters(amplification=10, efficiency=0.95),
        rng,
    )
    print(f"PCR with {target!r} primers amplified {len(amplified)} molecules")

    # Sequence the amplified product through a noisy channel.
    channel = IIDChannel.from_total_rate(0.05)
    reads = [channel.transmit(molecule, rng) for molecule in amplified]

    # Orient/trim primers, then run the recovery half of the pipeline.
    preprocessor = WetlabPreprocessor(
        [pool.primer_pair(target)],
        expected_body_length=parameters[target].body_nt,
    )
    by_pair, stats = preprocessor.process(reads)
    print(f"preprocessing accepted {stats.accepted}/{stats.total} reads")

    pipeline = Pipeline(
        PipelineConfig(
            encoding=parameters[target],
            coverage=ConstantCoverage(10),  # unused on this path
            clustering=ClusteringConfig(seed=1),
        )
    )
    result = pipeline.run_from_reads(
        by_pair[0], expected_units=encoded_units[target]
    )
    assert result.data == FILES[target], "random access failed"
    print(f"\nrecovered {target!r} exactly: {result.data[:53]!r}...")

    # The other files' molecules were never amplified.
    foreign = set(amplified) & {
        molecule
        for key in pool.keys
        if key != target
        for molecule in pool.pcr_select(
            pool.primer_pair(key), PCRParameters(amplification=1, efficiency=1.0), rng
        )
    }
    print(f"molecules from other files in the PCR product: {len(foreign)}")


if __name__ == "__main__":
    main()
