"""Process-wide metrics: counters, gauges and percentile histograms.

The registry is the quantitative half of the observability layer (the
tracer in :mod:`repro.observability.trace` is the temporal half): stages
increment labelled instruments — ``rs_decode_errors_corrected``,
``clusters_formed``, ``reads_discarded``, ``bma_lookahead_invocations`` —
and the exporter renders them next to the span latencies so one report
answers both "where did the time go" and "what did each stage do".

Instruments are keyed by ``(name, labels)``; asking for the same key twice
returns the same instrument, so call sites never need to coordinate.  A
shared no-op registry (:data:`NULL_REGISTRY`) backs the no-op tracer:
its instruments discard every update, keeping disabled instrumentation
free of memory growth.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, object]) -> LabelsKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile``'s default ("linear") method, implemented
    locally so the metrics layer stays dependency-free.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution summarised by count/sum/min/max and p50/p90/p99."""

    __slots__ = ("observations",)

    def __init__(self) -> None:
        self.observations: List[float] = []

    def observe(self, value: float) -> None:
        self.observations.append(float(value))

    @property
    def count(self) -> int:
        return len(self.observations)

    def quantile(self, q: float) -> float:
        return percentile(self.observations, q)

    def summary(self) -> Dict[str, float]:
        """The exported shape: count, sum, min/max, mean and percentiles."""
        if not self.observations:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": sum(self.observations),
            "min": min(self.observations),
            "max": max(self.observations),
            "mean": sum(self.observations) / self.count,
            "p50": self.quantile(50),
            "p90": self.quantile(90),
            "p99": self.quantile(99),
        }


class MetricsRegistry:
    """Get-or-create home for every instrument in a run."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}

    # -- instrument accessors ------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        return self._counters.setdefault((name, _labels_key(labels)), Counter())

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._gauges.setdefault((name, _labels_key(labels)), Gauge())

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._histograms.setdefault(
            (name, _labels_key(labels)), Histogram()
        )

    # -- iteration (sorted for stable reports) -------------------------

    def counters(self) -> Iterator[Tuple[str, Dict[str, str], Counter]]:
        for (name, labels), counter in sorted(self._counters.items()):
            yield name, dict(labels), counter

    def gauges(self) -> Iterator[Tuple[str, Dict[str, str], Gauge]]:
        for (name, labels), gauge in sorted(self._gauges.items()):
            yield name, dict(labels), gauge

    def histograms(self) -> Iterator[Tuple[str, Dict[str, str], Histogram]]:
        for (name, labels), histogram in sorted(self._histograms.items()):
            yield name, dict(labels), histogram

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s instruments into this registry (sums/extends)."""
        for (key, counter) in other._counters.items():
            self._counters.setdefault(key, Counter()).value += counter.value
        for (key, gauge) in other._gauges.items():
            self._gauges.setdefault(key, Gauge()).value = gauge.value
        for (key, histogram) in other._histograms.items():
            self._histograms.setdefault(key, Histogram()).observations.extend(
                histogram.observations
            )


class _NullInstrument:
    """Accepts every update and remembers none of them."""

    __slots__ = ()
    value = 0
    observations: List[float] = []
    count = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: one shared instrument, zero retention."""

    def counter(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT


#: Shared no-op registry used by the no-op tracer.
NULL_REGISTRY = NullMetricsRegistry()


def load_imbalance(durations: Sequence[float]) -> float:
    """Max/mean chunk duration for one fan-out: 1.0 is perfectly balanced.

    The metric the worker pool records per fan-out (gauge
    ``worker_load_imbalance{span=...}``): at *w* equal chunks it stays at
    1.0, while one straggler chunk doing all the work pushes it toward
    *w*.  Empty or sub-resolution fan-outs (all-zero durations) report 1.0
    — nothing measurable was unbalanced.
    """
    if not durations:
        return 1.0
    mean = sum(durations) / len(durations)
    if mean <= 0.0:
        return 1.0
    return max(durations) / mean


def emit_process_gauges(metrics: MetricsRegistry) -> None:
    """Record process resource usage as gauges (peak RSS, CPU time).

    CPU times sum the process itself and its reaped children, so worker-
    pool runs report the whole fan-out.  ``ru_maxrss`` is kibibytes on
    Linux but bytes on macOS; both normalise to bytes here.  A no-op on
    platforms without the :mod:`resource` module (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    import sys

    scale = 1 if sys.platform == "darwin" else 1024
    own = resource.getrusage(resource.RUSAGE_SELF)
    children = resource.getrusage(resource.RUSAGE_CHILDREN)
    metrics.gauge("process_peak_rss_bytes").set(
        max(own.ru_maxrss, children.ru_maxrss) * scale
    )
    metrics.gauge("process_user_cpu_seconds").set(own.ru_utime + children.ru_utime)
    metrics.gauge("process_sys_cpu_seconds").set(own.ru_stime + children.ru_stime)
