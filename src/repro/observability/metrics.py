"""Process-wide metrics: counters, gauges and percentile histograms.

The registry is the quantitative half of the observability layer (the
tracer in :mod:`repro.observability.trace` is the temporal half): stages
increment labelled instruments — ``rs_decode_errors_corrected``,
``clusters_formed``, ``reads_discarded``, ``bma_lookahead_invocations`` —
and the exporter renders them next to the span latencies so one report
answers both "where did the time go" and "what did each stage do".

Instruments are keyed by ``(name, labels)``; asking for the same key twice
returns the same instrument, so call sites never need to coordinate.  A
shared no-op registry (:data:`NULL_REGISTRY`) backs the no-op tracer:
its instruments discard every update, keeping disabled instrumentation
free of memory growth.

The registry and its instruments are thread-safe: a registry-wide lock is
shared by every instrument it creates, so a stage thread updating counters
can race the :class:`~repro.observability.sampler.TelemetrySampler` thread
calling :meth:`MetricsRegistry.snapshot` without torn reads or
``RuntimeError: dictionary changed size during iteration``.  The lock is
dropped on pickling (instruments cross no process boundary; worker-side
metrics travel as the plain-data
:class:`~repro.observability.trace.WorkerTracer` export).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, object]) -> LabelsKey:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) with linear interpolation.

    Matches ``numpy.percentile``'s default ("linear") method, implemented
    locally so the metrics layer stays dependency-free.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


class _Locked:
    """Mixin: a (possibly shared) lock that pickling drops and recreates."""

    __slots__ = ()

    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for cls in type(self).__mro__
            for slot in getattr(cls, "__slots__", ())
            if slot != "_lock"
        }

    def __setstate__(self, state) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._lock = threading.RLock()


class Counter(_Locked):
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: Optional[threading.RLock] = None) -> None:
        self.value = 0
        self._lock = lock if lock is not None else threading.RLock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge(_Locked):
    """A point-in-time value (last write wins)."""

    __slots__ = ("value", "_lock")

    def __init__(self, lock: Optional[threading.RLock] = None) -> None:
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram(_Locked):
    """A distribution summarised by count/sum/min/max and p50/p90/p99."""

    __slots__ = ("observations", "_lock")

    def __init__(self, lock: Optional[threading.RLock] = None) -> None:
        self.observations: List[float] = []
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.observations.append(float(value))

    @property
    def count(self) -> int:
        return len(self.observations)

    def quantile(self, q: float) -> float:
        with self._lock:
            return percentile(self.observations, q)

    def summary(self) -> Dict[str, float]:
        """The exported shape: count, sum, min/max, mean and percentiles."""
        with self._lock:
            observations = list(self.observations)
        if not observations:
            return {"count": 0, "sum": 0.0}
        return {
            "count": len(observations),
            "sum": sum(observations),
            "min": min(observations),
            "max": max(observations),
            "mean": sum(observations) / len(observations),
            "p50": percentile(observations, 50),
            "p90": percentile(observations, 90),
            "p99": percentile(observations, 99),
        }


def render_key(name: str, labels: Dict[str, str]) -> str:
    """Flat ``name{label=value,...}`` key used by snapshots and samples."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Get-or-create home for every instrument in a run.

    One :class:`threading.RLock` guards the instrument tables *and* is
    shared by every instrument the registry hands out, so
    :meth:`snapshot` sees a consistent point in time even while other
    threads are incrementing and observing.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[Tuple[str, LabelsKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelsKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelsKey], Histogram] = {}

    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- instrument accessors ------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(self._lock)
            return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(self._lock)
            return instrument

    def histogram(self, name: str, **labels: object) -> Histogram:
        key = (name, _labels_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(self._lock)
            return instrument

    # -- iteration (sorted for stable reports) -------------------------

    def counters(self) -> Iterator[Tuple[str, Dict[str, str], Counter]]:
        with self._lock:
            items = sorted(self._counters.items())
        for (name, labels), counter in items:
            yield name, dict(labels), counter

    def gauges(self) -> Iterator[Tuple[str, Dict[str, str], Gauge]]:
        with self._lock:
            items = sorted(self._gauges.items())
        for (name, labels), gauge in items:
            yield name, dict(labels), gauge

    def histograms(self) -> Iterator[Tuple[str, Dict[str, str], Histogram]]:
        with self._lock:
            items = sorted(self._histograms.items())
        for (name, labels), histogram in items:
            yield name, dict(labels), histogram

    def __len__(self) -> int:
        with self._lock:
            return (
                len(self._counters) + len(self._gauges) + len(self._histograms)
            )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A consistent point-in-time copy of every instrument.

        Returns a JSON-ready mapping::

            {"counters":   {"name{label=v}": int},
             "gauges":     {"name{label=v}": float},
             "histograms": {"name{label=v}": {"count": ..., "p50": ...}}}

        Taken under the registry lock, so no instrument moves while the
        copy is built — this is what the telemetry sampler thread calls.
        """
        with self._lock:
            counters = {
                render_key(name, dict(labels)): counter.value
                for (name, labels), counter in sorted(self._counters.items())
            }
            gauges = {
                render_key(name, dict(labels)): gauge.value
                for (name, labels), gauge in sorted(self._gauges.items())
            }
            histograms = {
                render_key(name, dict(labels)): histogram.summary()
                for (name, labels), histogram in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s instruments into this registry (sums/extends)."""
        with self._lock:
            for (key, counter) in other._counters.items():
                mine = self._counters.get(key)
                if mine is None:
                    mine = self._counters[key] = Counter(self._lock)
                mine.value += counter.value
            for (key, gauge) in other._gauges.items():
                mine = self._gauges.get(key)
                if mine is None:
                    mine = self._gauges[key] = Gauge(self._lock)
                mine.value = gauge.value
            for (key, histogram) in other._histograms.items():
                mine = self._histograms.get(key)
                if mine is None:
                    mine = self._histograms[key] = Histogram(self._lock)
                mine.observations.extend(histogram.observations)


class _NullInstrument:
    """Accepts every update and remembers none of them."""

    __slots__ = ()
    value = 0
    observations: List[float] = []
    count = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """The disabled registry: one shared instrument, zero retention."""

    def counter(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, **labels: object):  # type: ignore[override]
        return _NULL_INSTRUMENT


#: Shared no-op registry used by the no-op tracer.
NULL_REGISTRY = NullMetricsRegistry()


def load_imbalance(durations: Sequence[float]) -> float:
    """Max/mean chunk duration for one fan-out: 1.0 is perfectly balanced.

    The metric the worker pool records per fan-out (gauge
    ``worker_load_imbalance{span=...}``): at *w* equal chunks it stays at
    1.0, while one straggler chunk doing all the work pushes it toward
    *w*.  Empty or sub-resolution fan-outs (all-zero durations) report 1.0
    — nothing measurable was unbalanced.
    """
    if not durations:
        return 1.0
    mean = sum(durations) / len(durations)
    if mean <= 0.0:
        return 1.0
    return max(durations) / mean


def emit_process_gauges(metrics: MetricsRegistry) -> None:
    """Record process resource usage as gauges (peak RSS, CPU time).

    CPU times sum the process itself and its reaped children, so worker-
    pool runs report the whole fan-out.  ``ru_maxrss`` is kibibytes on
    Linux but bytes on macOS; both normalise to bytes here.  A no-op on
    platforms without the :mod:`resource` module (Windows).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return
    import sys

    scale = 1 if sys.platform == "darwin" else 1024
    own = resource.getrusage(resource.RUSAGE_SELF)
    children = resource.getrusage(resource.RUSAGE_CHILDREN)
    metrics.gauge("process_peak_rss_bytes").set(
        max(own.ru_maxrss, children.ru_maxrss) * scale
    )
    metrics.gauge("process_user_cpu_seconds").set(own.ru_utime + children.ru_utime)
    metrics.gauge("process_sys_cpu_seconds").set(own.ru_stime + children.ru_stime)
