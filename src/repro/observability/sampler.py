"""Live telemetry sampling: a background thread snapshotting the metrics.

Spans tell you where the time went *after* a run; the sampler records how
the run looked *while it happened*.  A :class:`TelemetrySampler` wraps a
(thread-safe) :class:`~repro.observability.metrics.MetricsRegistry` and a
sampling interval: between :meth:`~TelemetrySampler.start` and
:meth:`~TelemetrySampler.stop` a daemon thread calls
:meth:`MetricsRegistry.snapshot` every ``interval`` seconds and pairs it
with the process's current resident set size, producing a monotonic
time-series of samples::

    {"t": 0.153, "rss_bytes": 48734208,
     "counters": {"clusters_formed": 12, ...},
     "gauges": {"worker_load_imbalance{span=...}": 1.08, ...}}

One sample is always taken at start and one at stop, so even runs shorter
than the interval yield a two-point series.  The samples attach to the
:class:`~repro.observability.runs.RunRecord` of a recorded run (CLI
``--sample-interval``), giving ``repro runs show`` an in-flight view —
counter ramps, RSS growth — instead of only end-of-run totals.

The sampler owns no instrumentation of its own: it is a pure reader, and
the registry's internal lock makes the reads race-free against the
pipeline thread (see :mod:`repro.observability.metrics`).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.observability.metrics import MetricsRegistry


def current_rss_bytes() -> int:
    """The process's resident set size right now, in bytes (0 if unknown).

    Linux exposes the live value in ``/proc/self/status`` (``VmRSS``);
    elsewhere fall back to :func:`resource.getrusage`'s *peak* RSS, which
    is at least monotone, and 0 where neither exists.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        import sys

        scale = 1 if sys.platform == "darwin" else 1024
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * scale
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0


class TelemetrySampler:
    """Periodic counter/gauge/RSS snapshots on a background thread.

    Usage mirrors the tracer's opt-in pattern::

        sampler = TelemetrySampler(tracer.metrics, interval=0.05)
        result = Pipeline(config).run(data, tracer=tracer, sampler=sampler)
        series = sampler.samples          # already stopped by the pipeline

    ``start``/``stop`` are also safe to call directly (stop is idempotent
    and returns the collected series).  Sample timestamps are seconds
    since ``start`` and strictly increasing.
    """

    def __init__(self, metrics: MetricsRegistry, interval: float = 0.05):
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.metrics = metrics
        self.interval = float(interval)
        self._samples: List[Dict] = []
        self._samples_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._epoch: Optional[float] = None

    # ------------------------------------------------------------------

    @property
    def samples(self) -> List[Dict]:
        """The series collected so far (a copy; safe while running)."""
        with self._samples_lock:
            return list(self._samples)

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "TelemetrySampler":
        """Take the first sample and launch the sampling thread."""
        if self._thread is not None:
            raise RuntimeError("sampler is already running")
        if self._epoch is None:
            self._epoch = time.monotonic()
        self._take_sample()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-telemetry-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> List[Dict]:
        """Stop the thread, take a final sample, return the full series."""
        thread = self._thread
        if thread is not None:
            self._stop_event.set()
            thread.join()
            self._thread = None
            self._take_sample()
        return self.samples

    def __enter__(self) -> "TelemetrySampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _loop(self) -> None:
        # Event.wait doubles as the sleep: setting the stop event wakes
        # the thread immediately instead of finishing a full interval.
        while not self._stop_event.wait(self.interval):
            self._take_sample()

    def _take_sample(self) -> None:
        snapshot = self.metrics.snapshot()
        elapsed = time.monotonic() - (self._epoch or time.monotonic())
        sample = {
            "t": elapsed,
            "rss_bytes": current_rss_bytes(),
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
        }
        with self._samples_lock:
            if self._samples and sample["t"] <= self._samples[-1]["t"]:
                # Clock resolution can tie consecutive samples; nudge so
                # the exported series stays strictly monotonic.
                sample["t"] = self._samples[-1]["t"] + 1e-9
            sample["t"] = round(sample["t"], 9)
            self._samples.append(sample)
