"""Structured logging on the stdlib ``logging`` machinery.

Every component gets a scoped logger under the ``repro`` hierarchy::

    from repro.observability.log import get_logger
    log = get_logger("pipeline")
    log.info("decoded %d bytes", n)

The library itself never configures handlers (a :class:`logging.NullHandler`
keeps it silent when embedded); the CLI calls :func:`configure_logging`
once, wired to the global ``--log-level/-v`` and ``--log-format`` flags,
choosing between a compact human formatter and a JSONL formatter whose
records can sit next to the trace/ledger artifacts.
"""

from __future__ import annotations

import json
import logging
from typing import IO, Optional

#: Root of the package's logger hierarchy.
ROOT_LOGGER = "repro"

#: CLI-facing level names (``-v`` bumps warning -> info -> debug).
LEVELS = ("debug", "info", "warning", "error")

# Embedded use stays silent unless the host application configures
# logging; this also suppresses the "no handlers" stderr warning.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(component: str) -> logging.Logger:
    """The scoped logger for *component* (e.g. ``cli``, ``pipeline``)."""
    return logging.getLogger(f"{ROOT_LOGGER}.{component}")


class HumanFormatter(logging.Formatter):
    """Compact single-line format: ``level component: message``."""

    def format(self, record: logging.LogRecord) -> str:
        component = record.name
        prefix = f"{ROOT_LOGGER}."
        if component.startswith(prefix):
            component = component[len(prefix):]
        return f"{record.levelname.lower()} {component}: {record.getMessage()}"


class JSONFormatter(logging.Formatter):
    """One JSON object per record: ``ts``, ``level``, ``component``, ``message``."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "component": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def resolve_level(name: Optional[str], verbosity: int = 0) -> int:
    """Map a ``--log-level`` name and ``-v`` count to a logging level.

    An explicit name wins; otherwise each ``-v`` raises the default
    ``warning`` one step (info, then debug).
    """
    if name:
        return getattr(logging, name.upper())
    if verbosity >= 2:
        return logging.DEBUG
    if verbosity == 1:
        return logging.INFO
    return logging.WARNING


def configure_logging(
    level: int = logging.WARNING,
    fmt: str = "human",
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree with one stream handler.

    Idempotent: previous handlers installed by this function are replaced,
    so repeated CLI invocations in one process (tests!) never stack
    handlers or leak streams captured from an earlier call.
    """
    if fmt not in ("human", "json"):
        raise ValueError(f"log format must be 'human' or 'json', got {fmt!r}")
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if not isinstance(handler, logging.NullHandler):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JSONFormatter() if fmt == "json" else HumanFormatter())
    logger.addHandler(handler)
    logger.propagate = False
    return logger
