"""Per-strand provenance: the lineage half of observability.

The tracer answers "where did the time go" and the quality report "what
did the run do to the data *in aggregate*".  This module answers the
question both leave open when a decode degrades: **which strands were
lost, and why**.  Every encoded strand carries a stable ID (its reference
index, which is also its molecule index ``unit * n + column``) and the
ledger records its journey through the five stages:

* **encoding** — unit and column coordinates;
* **simulation** — the reads the channel emitted for it (with per-read
  edit distances against the reference, sharded over the worker pool);
* **clustering** — where those reads landed, which clusters survived the
  ``min_cluster_size`` filter, and which cluster the strand dominates;
* **reconstruction** — the consensus distance back to the reference body
  and the molecule index the decoder parsed from each consensus;
* **decoding** — the column's Reed-Solomon fate: ``clean``, ``corrected``
  (with a symbol count), ``erased`` (recovered as an erasure) or
  ``uncorrectable`` (its unit had failed rows).

:mod:`repro.observability.forensics` joins the ledger into one root-cause
verdict per strand (``dropout`` / ``underclustered`` / ``misclustered`` /
``consensus_error`` / ``ecc_overload`` / ``ok``) behind ``repro why``.

Collection follows the tracer's no-op-default pattern: the shared
:data:`NULL_LEDGER` accepts every record call and retains nothing, so
uninstrumented runs pay only a dead method call per stage (the expensive
joins — read alignment, consensus distances — live *inside* the recording
methods and never run when disabled).  All derived values are pure
functions of the run's seeds, and the sharded computations go through
:meth:`~repro.parallel.WorkerPool.map_chunks` (which preserves item
order), so the exported JSONL is byte-identical at any worker count.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.dna.distance import levenshtein_distance
from repro.observability.trace import worker_span
from repro.parallel import WorkerPool

#: Version of the ledger JSONL format (bumped on breaking change).
PROVENANCE_SCHEMA_VERSION = 1

#: Root-cause vocabulary in forensic priority order: when several causes
#: tie for a unit's failed rows, the earlier entry wins.  ``ok`` is last —
#: it is never a failure cause.
VERDICTS = (
    "dropout",
    "underclustered",
    "misclustered",
    "consensus_error",
    "ecc_overload",
    "ok",
)

#: Column fates a strand can meet in the decoder.
COLUMN_FATES = ("clean", "corrected", "erased", "uncorrectable", "unknown")


# ----------------------------------------------------------------------
# Per-strand records
# ----------------------------------------------------------------------


@dataclass
class ClusterPlacement:
    """Where (some of) a strand's reads landed after clustering."""

    #: cluster id in the clusterer's output order
    cluster: int
    #: how many of the strand's reads sit in that cluster
    reads: int
    #: whether the cluster survived the ``min_cluster_size`` filter
    kept: bool
    #: whether this strand is the cluster's dominant origin
    dominant: bool


@dataclass
class ConsensusOutcome:
    """One reconstruction attributed to the strand (its dominant cluster)."""

    #: cluster id the consensus was built from
    cluster: int
    #: edit distance from the consensus to the strand's reference body
    distance: int
    #: molecule index the decoder parsed from it (``None`` = unparseable)
    decoded_index: Optional[int] = None


@dataclass
class StrandProvenance:
    """The joined, per-strand lineage record — one line of the ledger."""

    strand_id: int
    unit: int
    column: int
    #: reads the channel emitted for this strand (0 = dropout)
    reads: int = 0
    #: indices of those reads in the pipeline's (shuffled) read list
    read_ids: List[int] = field(default_factory=list)
    #: per-read edit distance against the reference body
    read_edits: List[int] = field(default_factory=list)
    placements: List[ClusterPlacement] = field(default_factory=list)
    consensus: List[ConsensusOutcome] = field(default_factory=list)
    #: RS fate of the strand's column (see :data:`COLUMN_FATES`)
    column_fate: str = "unknown"
    #: RS symbols corrected inside this strand's column (data region)
    symbols_corrected: int = 0
    #: uncorrectable RS rows in the strand's unit
    unit_failed_rows: int = 0
    verdict: str = "ok"

    @property
    def dropout(self) -> bool:
        return self.reads == 0

    def as_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        payload["dropout"] = self.dropout
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StrandProvenance":
        known = dict(payload)
        known.pop("dropout", None)
        known.pop("kind", None)
        placements = [
            ClusterPlacement(**p) for p in known.pop("placements", [])
        ]
        consensus = [ConsensusOutcome(**c) for c in known.pop("consensus", [])]
        return cls(placements=placements, consensus=consensus, **known)


@dataclass
class UnitOutcome:
    """Per-encoding-unit Reed-Solomon bookkeeping."""

    unit: int
    #: matrix columns handed to the decoder as erasures
    erased_columns: List[int] = field(default_factory=list)
    #: uncorrectable codeword rows
    failed_rows: List[int] = field(default_factory=list)
    clean_rows: int = 0
    corrected_rows: int = 0
    #: corrected-symbol count per matrix column (data region only)
    corrections_by_column: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        # JSON object keys are strings; keep the column keys sorted so the
        # export is byte-stable.
        payload["corrections_by_column"] = {
            str(column): self.corrections_by_column[column]
            for column in sorted(self.corrections_by_column)
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "UnitOutcome":
        known = dict(payload)
        known.pop("kind", None)
        corrections = {
            int(column): count
            for column, count in known.pop("corrections_by_column", {}).items()
        }
        return cls(corrections_by_column=corrections, **known)


@dataclass
class ProvenanceSummary:
    """Roll-up of the forensic verdicts — what ``repro why`` prints first."""

    strands: int = 0
    reads: int = 0
    verdicts: Dict[str, int] = field(default_factory=dict)
    failed_rows: int = 0
    #: failed RS rows attributed to the dominant fault of their unit
    failed_row_causes: Dict[str, int] = field(default_factory=dict)
    units_failed: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "strands": self.strands,
            "reads": self.reads,
            "verdicts": {v: self.verdicts.get(v, 0) for v in VERDICTS},
            "failed_rows": self.failed_rows,
            "failed_row_causes": {
                cause: self.failed_row_causes[cause]
                for cause in VERDICTS
                if cause in self.failed_row_causes
            },
            "units_failed": self.units_failed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProvenanceSummary":
        return cls(
            strands=int(payload.get("strands", 0)),
            reads=int(payload.get("reads", 0)),
            verdicts=dict(payload.get("verdicts", {})),
            failed_rows=int(payload.get("failed_rows", 0)),
            failed_row_causes=dict(payload.get("failed_row_causes", {})),
            units_failed=int(payload.get("units_failed", 0)),
        )


@dataclass
class ProvenanceReport:
    """Everything the forensics join produced for one run."""

    strands: List[StrandProvenance] = field(default_factory=list)
    units: List[UnitOutcome] = field(default_factory=list)
    summary: ProvenanceSummary = field(default_factory=ProvenanceSummary)

    def strand(self, strand_id: int) -> Optional[StrandProvenance]:
        for record in self.strands:
            if record.strand_id == strand_id:
                return record
        return None


# ----------------------------------------------------------------------
# The ledger (recording side)
# ----------------------------------------------------------------------


def _edit_distance_chunk(pairs, _extra) -> List[int]:
    """WorkerPool entry point: edit distance for (sequence, reference) pairs."""
    with worker_span("provenance.edit_distance_chunk", pairs=len(pairs)):
        return [levenshtein_distance(left, right) for left, right in pairs]


class ProvenanceLedger:
    """Accumulates per-stage lineage facts during one pipeline run.

    The pipeline (and the decoder, for the RS plane) call the ``record_*``
    methods as each stage completes; :meth:`finalize` joins the facts into
    a :class:`ProvenanceReport` via :mod:`repro.observability.forensics`.
    The ledger is single-run, single-thread state — use one per pipeline
    run, exactly like a :class:`~repro.observability.Tracer`.
    """

    enabled = True

    def __init__(self) -> None:
        self.total_columns = 0
        self.num_units = 0
        self.references: List[str] = []
        self.origins: List[int] = []
        self.read_edits: List[int] = []
        self.sequencing_recorded = False
        self.clusters: List[List[int]] = []
        #: indices into :attr:`clusters` that survived the size filter,
        #: in reconstruction order
        self.kept_ids: List[int] = []
        self.clustering_recorded = False
        #: per kept cluster: (dominant origin, consensus edit distance)
        self.consensus_origins: List[int] = []
        self.consensus_distances: List[int] = []
        #: per decoder input position: parsed molecule index (None = bad)
        self.parsed_indices: Dict[int, Optional[int]] = {}
        self.unit_outcomes: Dict[int, UnitOutcome] = {}

    # -- encoding ------------------------------------------------------

    def record_encoding(
        self, references: Sequence[str], total_columns: int, num_units: int
    ) -> None:
        """Register the encoded pool: strand IDs are reference indices."""
        self.references = list(references)
        self.total_columns = total_columns
        self.num_units = num_units

    # -- simulation ----------------------------------------------------

    def record_sequencing(self, run, pool: Optional[WorkerPool] = None) -> None:
        """Record read origins and per-read edit distances for *run*.

        The alignment of every read against its origin reference is the
        ledger's one expensive pass; it rides the columnar plane (reads
        grouped by origin, one uint64-lane Myers sweep per reference over
        the run's :class:`~repro.dna.readpool.ReadPool`), shards over
        *pool* and, because
        :meth:`~repro.parallel.WorkerPool.map_chunks` preserves item
        order, merges back deterministically at any worker count.
        """
        from repro.simulation.observed import per_read_edit_distances

        self.origins = list(run.origins)
        self.read_edits = per_read_edit_distances(run, pool=pool)
        self.sequencing_recorded = True

    # -- clustering ----------------------------------------------------

    def record_clustering(
        self, clusters: Sequence[Sequence[int]], kept_ids: Sequence[int]
    ) -> None:
        """Record the full clustering plus which clusters were kept."""
        self.clusters = [list(cluster) for cluster in clusters]
        self.kept_ids = list(kept_ids)
        self.clustering_recorded = True

    # -- reconstruction ------------------------------------------------

    def record_reconstruction(
        self, reconstructions: Sequence[str], pool: Optional[WorkerPool] = None
    ) -> None:
        """Score each consensus against its cluster's dominant origin.

        *reconstructions* must be parallel to the kept clusters recorded
        by :meth:`record_clustering`.  The distance computation shards
        over *pool* with the same deterministic merge as the read pass.
        """
        if not self.clustering_recorded or not self.origins:
            return
        origins: List[int] = []
        pairs = []
        for kept_id, consensus in zip(self.kept_ids, reconstructions):
            votes = Counter(
                self.origins[read_index] for read_index in self.clusters[kept_id]
            )
            origin = votes.most_common(1)[0][0]
            origins.append(origin)
            reference = (
                self.references[origin]
                if 0 <= origin < len(self.references)
                else ""
            )
            pairs.append((consensus, reference))
        self.consensus_origins = origins
        if pool is None:
            self.consensus_distances = _edit_distance_chunk(pairs, None)
        else:
            self.consensus_distances = pool.map_chunks(
                _edit_distance_chunk, pairs, None
            )

    # -- decoding (called from DNADecoder) -----------------------------

    def record_strand_parse(self, position: int, index: Optional[int]) -> None:
        """Record the molecule index parsed from decoder input *position*."""
        self.parsed_indices[position] = index

    def record_unit(self, outcome: UnitOutcome) -> None:
        """Record one encoding unit's Reed-Solomon outcome."""
        self.unit_outcomes[outcome.unit] = outcome

    # -- finalisation --------------------------------------------------

    def finalize(self) -> ProvenanceReport:
        """Join the recorded facts into per-strand verdicts + summary."""
        from repro.observability.forensics import analyze

        return analyze(self)


class NullProvenanceLedger(ProvenanceLedger):
    """The disabled ledger: accepts every record call, retains nothing."""

    enabled = False

    def __init__(self) -> None:  # keep the shared instance state-free
        pass

    def record_encoding(self, references, total_columns, num_units) -> None:
        pass

    def record_sequencing(self, run, pool=None) -> None:
        pass

    def record_clustering(self, clusters, kept_ids) -> None:
        pass

    def record_reconstruction(self, reconstructions, pool=None) -> None:
        pass

    def record_strand_parse(self, position, index) -> None:
        pass

    def record_unit(self, outcome) -> None:
        pass

    def finalize(self) -> ProvenanceReport:
        return ProvenanceReport()


#: Shared default ledger: safe to pass everywhere, records nothing.
NULL_LEDGER = NullProvenanceLedger()


def as_ledger(ledger: Optional[ProvenanceLedger]) -> ProvenanceLedger:
    """Normalise an optional ledger argument (``None`` -> no-op)."""
    return NULL_LEDGER if ledger is None else ledger


# ----------------------------------------------------------------------
# JSONL export / import
# ----------------------------------------------------------------------


def ledger_lines(report: ProvenanceReport) -> Iterator[str]:
    """Serialise *report* as JSONL (meta, strands, units, summary).

    Strand records are emitted in strand-ID order and every mapping is
    built with a fixed key order, so two identical runs produce
    byte-identical files — the property the worker-determinism tests pin.
    """
    yield json.dumps(
        {
            "kind": "meta",
            "version": PROVENANCE_SCHEMA_VERSION,
            "strands": len(report.strands),
            "units": len(report.units),
        }
    )
    for record in sorted(report.strands, key=lambda r: r.strand_id):
        payload = {"kind": "strand"}
        payload.update(record.as_dict())
        yield json.dumps(payload)
    for outcome in sorted(report.units, key=lambda u: u.unit):
        payload = {"kind": "unit"}
        payload.update(outcome.as_dict())
        yield json.dumps(payload)
    summary = {"kind": "summary"}
    summary.update(report.summary.as_dict())
    yield json.dumps(summary)


def write_ledger(report: ProvenanceReport, path: Union[str, Path]) -> Path:
    """Write *report* to *path* as JSONL; returns the path."""
    path = Path(path)
    path.write_text("\n".join(ledger_lines(report)) + "\n", encoding="utf-8")
    return path


def load_ledger(source: Union[str, Path, Iterable[str]]) -> ProvenanceReport:
    """Parse a provenance JSONL file (or lines) back into a report."""
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = source
    report = ProvenanceReport()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if kind == "meta":
            version = record.get("version", PROVENANCE_SCHEMA_VERSION)
            if version > PROVENANCE_SCHEMA_VERSION:
                raise ValueError(
                    f"provenance schema {version} is newer than supported "
                    f"({PROVENANCE_SCHEMA_VERSION})"
                )
        elif kind == "strand":
            report.strands.append(StrandProvenance.from_dict(record))
        elif kind == "unit":
            report.units.append(UnitOutcome.from_dict(record))
        elif kind == "summary":
            report.summary = ProvenanceSummary.from_dict(record)
        else:
            raise ValueError(f"unknown ledger record kind {kind!r}")
    return report
