"""Serialisation and report rendering for traces and metrics.

The on-disk format is JSONL — one self-describing object per line — so a
trace can be streamed, grepped, and diffed:

* ``{"kind": "span", "id": 3, "parent": 1, "name": ..., "start": ...,
  "duration": ..., "attributes": {...}}`` — spans appear in depth-first
  order; ``parent`` reconstructs the nesting.
* ``{"kind": "counter"|"gauge", "name": ..., "labels": {...},
  "value": ...}``
* ``{"kind": "histogram", "name": ..., "labels": {...},
  "summary": {"count": ..., "p50": ..., ...}}``

:func:`load_trace` reads the format back into a :class:`TraceData`;
:func:`render_report` turns one into the plain-text latency/counter
report behind ``repro trace`` (reusing
:func:`repro.analysis.reporting.format_table`).

:func:`to_chrome_trace` / :func:`write_chrome_trace` convert either
representation to the Chrome Trace Event Format (``repro trace --chrome``,
``--trace-out``): one complete-event ("X") per span with microsecond
timestamps, one ``pid`` lane per worker process, so fan-outs render as
parallel tracks in Perfetto or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from repro.analysis.reporting import format_table
from repro.observability.trace import Span, Tracer

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------


def trace_lines(tracer: Tracer) -> Iterator[str]:
    """Serialise *tracer*'s spans and metrics as JSONL lines."""
    yield json.dumps({"kind": "meta", "version": FORMAT_VERSION})
    next_id = 0

    def emit(span: Span, parent: int) -> Iterator[str]:
        nonlocal next_id
        next_id += 1
        span_id = next_id
        yield json.dumps(
            {
                "kind": "span",
                "id": span_id,
                "parent": parent,
                "name": span.name,
                "start": span.start,
                "duration": span.duration,
                "attributes": span.attributes,
            },
            default=str,
        )
        for child in span.children:
            yield from emit(child, span_id)

    for root in tracer.roots:
        yield from emit(root, 0)

    for name, labels, counter in tracer.metrics.counters():
        yield json.dumps(
            {"kind": "counter", "name": name, "labels": labels, "value": counter.value}
        )
    for name, labels, gauge in tracer.metrics.gauges():
        yield json.dumps(
            {"kind": "gauge", "name": name, "labels": labels, "value": gauge.value}
        )
    for name, labels, histogram in tracer.metrics.histograms():
        yield json.dumps(
            {
                "kind": "histogram",
                "name": name,
                "labels": labels,
                "summary": histogram.summary(),
            }
        )


def write_trace(tracer: Tracer, path: Union[str, Path]) -> Path:
    """Write *tracer* to *path* as JSONL; returns the path."""
    path = Path(path)
    path.write_text("\n".join(trace_lines(tracer)) + "\n", encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------


@dataclass
class TraceData:
    """A deserialised trace: span trees plus flattened metric records."""

    roots: List[Span] = field(default_factory=list)
    counters: List[Tuple[str, Dict[str, str], int]] = field(default_factory=list)
    gauges: List[Tuple[str, Dict[str, str], float]] = field(default_factory=list)
    histograms: List[Tuple[str, Dict[str, str], Dict[str, float]]] = field(
        default_factory=list
    )

    def walk(self) -> Iterator[Span]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        return [span for span in self.walk() if span.name == name]


def load_trace(source: Union[str, Path, Iterable[str]]) -> TraceData:
    """Parse a JSONL trace from a path or an iterable of lines."""
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text(encoding="utf-8").splitlines()
    else:
        lines = source
    trace = TraceData()
    spans_by_id: Dict[int, Span] = {}
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if kind == "meta":
            continue
        if kind == "span":
            span = Span(record["name"], dict(record.get("attributes", {})))
            span.start = float(record["start"])
            span.duration = float(record["duration"])
            spans_by_id[record["id"]] = span
            parent = spans_by_id.get(record.get("parent") or 0)
            if parent is None:
                trace.roots.append(span)
            else:
                parent.children.append(span)
        elif kind == "counter":
            trace.counters.append(
                (record["name"], dict(record.get("labels", {})), int(record["value"]))
            )
        elif kind == "gauge":
            trace.gauges.append(
                (record["name"], dict(record.get("labels", {})), float(record["value"]))
            )
        elif kind == "histogram":
            trace.histograms.append(
                (record["name"], dict(record.get("labels", {})), dict(record["summary"]))
            )
        else:
            raise ValueError(f"unknown trace record kind {kind!r}")
    return trace


# ----------------------------------------------------------------------
# Chrome Trace Event Format (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------

#: The synthetic pid of the parent process's lane (worker lanes use the
#: real OS pid stitched into their span attributes; OS pid 1 is init and
#: can never collide with a worker).
MAIN_LANE_PID = 1


def to_chrome_trace(source: Union[Tracer, "TraceData"]) -> Dict:
    """Convert a live tracer or loaded trace to Chrome Trace Event JSON.

    Every span becomes one complete event (``"ph": "X"``) with
    microsecond ``ts``/``dur`` and its attributes under ``args``.  Spans
    stitched from workers carry a ``pid`` attribute; they and their
    descendants land in that worker's lane, with one thread track per
    ``chunk_index`` so chunks that shared a worker process never overlap
    on a track.  Everything else lives in the ``main`` lane.  Process
    lanes are named via ``process_name`` metadata events.
    """
    events: List[Dict] = []
    worker_pids = set()

    def visit(span: Span, pid: int, tid: int) -> None:
        attr_pid = span.attributes.get("pid")
        if isinstance(attr_pid, int):
            pid = attr_pid
            tid = int(span.attributes.get("chunk_index", 0)) + 1
            worker_pids.add(pid)
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": dict(span.attributes),
            }
        )
        for child in span.children:
            visit(child, pid, tid)

    for root in source.roots:
        visit(root, MAIN_LANE_PID, 1)

    metadata = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": MAIN_LANE_PID,
            "tid": 0,
            "args": {"name": "main"},
        }
    ]
    for pid in sorted(worker_pids):
        metadata.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"worker {pid}"},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    source: Union[Tracer, "TraceData"], path: Union[str, Path]
) -> Path:
    """Write *source* as a Chrome trace JSON file; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(to_chrome_trace(source), default=str) + "\n", encoding="utf-8"
    )
    return path


def span_structure(roots: List[Span]):
    """A worker-count-invariant signature of the span tree's shape.

    Captures which span names appear and how they nest, collapsing the
    multiplicity of same-named siblings — fan-outs repeat ``worker.chunk``
    once per chunk, and the chunk count is the one thing that legitimately
    varies with ``--workers``.  Two traces of the same workload therefore
    compare equal at any worker count, while a missing stage, a renamed
    span, or a hierarchy change shows up as a signature difference.
    """

    def signature(span: Span):
        return (
            span.name,
            tuple(sorted({signature(child) for child in span.children})),
        )

    return tuple(sorted({signature(root) for root in roots}))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _format_labels(labels: Dict[str, str]) -> str:
    return ",".join(f"{key}={value}" for key, value in sorted(labels.items())) or "-"


def render_span_tree(roots: List[Span], precision: int = 4) -> str:
    """An indented per-span breakdown (one line per span, tree order)."""
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        attrs = (
            " [" + ", ".join(f"{k}={v}" for k, v in span.attributes.items()) + "]"
            if span.attributes
            else ""
        )
        lines.append(
            f"{'  ' * depth}{span.name}  {span.duration:.{precision}f}s{attrs}"
        )
        for child in span.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


def aggregate_spans(roots: List[Span]) -> List[Tuple[str, int, float, float, float, float]]:
    """Per-name rollup: (name, calls, total, mean, min, max), tree order."""
    order: List[str] = []
    stats: Dict[str, List[float]] = {}

    def visit(span: Span) -> None:
        if span.name not in stats:
            stats[span.name] = []
            order.append(span.name)
        stats[span.name].append(span.duration)
        for child in span.children:
            visit(child)

    for root in roots:
        visit(root)
    return [
        (
            name,
            len(durations),
            sum(durations),
            sum(durations) / len(durations),
            min(durations),
            max(durations),
        )
        for name in order
        for durations in (stats[name],)
    ]


def render_report(trace: TraceData, title: str = "trace report") -> str:
    """The human-readable latency + counters report for a loaded trace."""
    sections: List[str] = []

    if trace.roots:
        # Percentages are of wall time (the sum of root spans); nested spans
        # overlap their parents, so the column does not sum to 100%.
        wall = sum(root.duration for root in trace.roots)
        # Total-duration descending, with equal-duration spans ordered by
        # name so the report is stable across runs (spans that measure
        # nothing, e.g. sub-resolution stages, routinely tie at 0.0).
        aggregated = sorted(
            aggregate_spans(trace.roots),
            key=lambda entry: (-entry[2], entry[0]),
        )
        rows = [
            [
                name,
                str(calls),
                f"{total:.4f}",
                f"{total / wall:.1%}" if wall > 0 else "-",
                f"{mean:.4f}",
                f"{low:.4f}",
                f"{high:.4f}",
            ]
            for name, calls, total, mean, low, high in aggregated
        ]
        sections.append(
            format_table(
                ["span", "calls", "total s", "% wall", "mean s", "min s", "max s"],
                rows,
                title=f"{title} - span latency",
            )
        )
        sections.append("span tree\n" + render_span_tree(trace.roots))

    imbalance = [
        (labels.get("span", "-"), value)
        for name, labels, value in trace.gauges
        if name == "worker_load_imbalance"
    ]
    if imbalance:
        # One row per fan-out site: how many chunks ran (histogram count)
        # and how lopsided the slowest one was (gauge, 1.0 = balanced).
        chunk_stats = {
            labels.get("span", "-"): summary
            for name, labels, summary in trace.histograms
            if name == "worker_chunk_seconds"
        }
        rows = []
        for stage, value in sorted(imbalance):
            summary = chunk_stats.get(stage, {})
            rows.append(
                [
                    stage,
                    str(int(summary.get("count", 0))),
                    f"{summary.get('mean', 0.0):.4g}",
                    f"{summary.get('max', 0.0):.4g}",
                    f"{value:.3f}",
                ]
            )
        sections.append(
            format_table(
                ["fan-out", "chunks", "mean chunk s", "max chunk s", "imbalance"],
                rows,
                title="fan-out balance (imbalance = max/mean chunk duration; 1.0 = even)",
            )
        )

    if trace.counters:
        rows = [
            [name, _format_labels(labels), str(value)]
            for name, labels, value in trace.counters
        ]
        sections.append(
            format_table(["counter", "labels", "value"], rows, title="counters")
        )

    if trace.gauges:
        rows = [
            [name, _format_labels(labels), f"{value:g}"]
            for name, labels, value in trace.gauges
        ]
        sections.append(format_table(["gauge", "labels", "value"], rows, title="gauges"))

    if trace.histograms:
        rows = [
            [
                name,
                _format_labels(labels),
                str(int(summary.get("count", 0))),
                f"{summary.get('mean', 0.0):.4g}",
                f"{summary.get('p50', 0.0):.4g}",
                f"{summary.get('p90', 0.0):.4g}",
                f"{summary.get('p99', 0.0):.4g}",
                f"{summary.get('max', 0.0):.4g}",
            ]
            for name, labels, summary in trace.histograms
        ]
        sections.append(
            format_table(
                ["histogram", "labels", "count", "mean", "p50", "p90", "p99", "max"],
                rows,
                title="histograms",
            )
        )

    if not sections:
        return f"{title}: empty trace"
    return "\n\n".join(sections)


def render_tracer_report(tracer: Tracer, title: str = "trace report") -> str:
    """Render a live tracer without the disk round trip."""
    return render_report(load_trace(trace_lines(tracer)), title=title)
