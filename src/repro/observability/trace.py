"""Hierarchical wall-clock spans: the temporal half of observability.

A :class:`Tracer` hands out context-manager spans that nest::

    tracer = Tracer()
    with tracer.span("pipeline.run"):
        with tracer.span("clustering.signatures", reads=len(reads)) as span:
            ...
            span.set("signature_bytes", total)

Every span records its start offset (relative to the tracer's epoch), its
wall-clock duration, free-form key/value attributes, and its children.
Stage rollups read ``span.duration`` directly, which is how the pipeline's
:class:`~repro.pipeline.stats.StageTimings` stays populated without a
single bare ``perf_counter()`` pair.

The default throughout the toolkit is :data:`NULL_TRACER`: its spans still
measure duration (so rollups keep working untraced) but retain nothing —
no tree, no attributes, no metrics — making disabled instrumentation cost
exactly what the old hand-rolled ``perf_counter()`` pairs did.

Tracing crosses process boundaries through :class:`WorkerTracer`: the
worker-pool trampoline installs one per chunk (see
:func:`capture_worker_spans`), worker code adds spans through the ambient
:func:`worker_span`, and the parent grafts the exported records back into
its own tree with :meth:`Tracer.attach_worker_export` — re-based onto the
parent epoch and annotated with ``pid``/``chunk_index``/``items``, so one
merged tree covers the whole fan-out.

Tracers are not thread-safe; use one per thread (or per pipeline run).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.observability.metrics import NULL_REGISTRY, MetricsRegistry


class Span:
    """One timed region; a context manager vended by :meth:`Tracer.span`."""

    __slots__ = ("name", "attributes", "start", "duration", "children", "_tracer", "_t0")

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        _tracer: Optional["Tracer"] = None,
    ):
        self.name = name
        self.attributes: Dict[str, Any] = attributes or {}
        self.start = 0.0
        self.duration = 0.0
        self.children: List[Span] = []
        self._tracer = _tracer
        self._t0 = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self._t0 = time.perf_counter()
        if self._tracer is not None:
            self.start = self._t0 - self._tracer.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._t0
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"attributes={self.attributes!r}, children={len(self.children)})"
        )


class Tracer:
    """Builds a tree of :class:`Span` objects plus a metrics registry.

    ``profile=True`` attaches a
    :class:`~repro.observability.profile.StageProfiler`: top-level stage
    spans (roots and their direct children) then record tracemalloc
    current/peak memory and GC collection counts as span attributes.
    """

    enabled = True

    def __init__(
        self, metrics: Optional[MetricsRegistry] = None, profile: bool = False
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self.epoch = time.perf_counter()
        self.profiler = None
        if profile:
            from repro.observability.profile import StageProfiler

            self.profiler = StageProfiler()

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; enter it (``with``) to start the clock."""
        return Span(name, attributes, _tracer=self)

    # -- stack discipline (driven by Span.__enter__/__exit__) ----------

    def _push(self, span: Span) -> None:
        depth = len(self._stack)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        if self.profiler is not None and depth <= 1:
            self.profiler.enter(span)

    def _pop(self, span: Span) -> None:
        if self.profiler is not None:
            self.profiler.exit(span)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)

    # -- queries -------------------------------------------------------

    def current_span(self) -> Optional[Span]:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    def walk(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        """All spans named *name* (e.g. every ``clustering.signatures``)."""
        return [span for span in self.walk() if span.name == name]

    def reset(self) -> None:
        """Drop recorded spans and re-base the epoch (metrics are left alone)."""
        self.roots = []
        self._stack = []
        self.epoch = time.perf_counter()

    # -- distributed capture -------------------------------------------

    def attach_worker_export(
        self,
        export: Dict[str, Any],
        chunk_index: int,
        items: int,
        base_offset: float = 0.0,
    ) -> List[Span]:
        """Graft one worker chunk's exported spans into this tracer's tree.

        *export* is the dict produced by :meth:`WorkerTracer.export`.  The
        reconstructed spans become children of the currently open span (or
        new roots); each worker-side root is annotated with the worker
        ``pid`` plus its ``chunk_index``/``items`` within the fan-out, and
        every start offset is re-based by *base_offset* — the fan-out's
        start relative to this tracer's epoch — so the merged timeline is
        consistent.  Worker counters are summed into the metrics registry;
        worker gauges are last-write-wins, matching
        :meth:`MetricsRegistry.merge`.
        """
        spans: List[Span] = []
        roots: List[Span] = []
        for record in export.get("spans", ()):
            span = Span(record["name"], dict(record["attributes"]))
            span.start = base_offset + record["start"]
            span.duration = record["duration"]
            spans.append(span)
            parent = record["parent"]
            if parent < 0:
                roots.append(span)
            else:
                spans[parent].children.append(span)
        for root in roots:
            root.attributes.setdefault("pid", export.get("pid"))
            root.attributes.setdefault("chunk_index", chunk_index)
            root.attributes.setdefault("items", items)
        target = self.current_span()
        if target is not None:
            target.children.extend(roots)
        else:
            self.roots.extend(roots)
        for name, value in export.get("counters", {}).items():
            self.metrics.counter(name).inc(value)
        for name, value in export.get("gauges", {}).items():
            self.metrics.gauge(name).set(value)
        return roots


class _NullSpan:
    """A span that measures its duration but retains nothing else.

    Durations must survive even with tracing disabled because stage
    rollups (``StageTimings``, ``ClusteringResult.signature_seconds``,
    ``TrainingHistory.seconds``) are part of the library's regular
    return values, not optional diagnostics.

    ``attributes``/``children`` are fresh per instance: callers that write
    ``span.attributes[...]`` directly (bypassing the no-op :meth:`set`)
    must not leak state into every other null span in the process.
    """

    __slots__ = ("duration", "_t0", "attributes", "children")

    name = ""
    start = 0.0

    def __init__(self) -> None:
        self.duration = 0.0
        self._t0 = 0.0
        self.attributes: Dict[str, Any] = {}
        self.children: List[Span] = []

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._t0
        return False


class NullTracer:
    """The disabled tracer: timing-only spans, no-op metrics, no state."""

    enabled = False
    metrics = NULL_REGISTRY
    roots: List[Span] = []

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NullSpan()

    def current_span(self) -> None:
        return None

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []

    def reset(self) -> None:
        pass


#: Shared default tracer: safe to pass everywhere, records nothing.
NULL_TRACER = NullTracer()


def as_tracer(tracer: Optional["Tracer"]) -> "Tracer":
    """Normalise an optional tracer argument (``None`` -> no-op)."""
    return NULL_TRACER if tracer is None else tracer


# ----------------------------------------------------------------------
# Worker-side capture
# ----------------------------------------------------------------------


class WorkerTracer:
    """Span capture inside one worker chunk; exports plain records.

    Spans recorded here start relative to the worker's own epoch (chunk
    entry); :meth:`export` flattens them into picklable dicts so the
    process-pool trampoline can ship them back, and
    :meth:`Tracer.attach_worker_export` re-bases them onto the parent's
    timeline.  ``gauges``/``counters`` are plain name→value maps for the
    same reason — worker processes must not require a live
    :class:`~repro.observability.metrics.MetricsRegistry` round trip.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self.epoch = time.perf_counter()
        self.gauges: Dict[str, float] = {}
        self.counters: Dict[str, int] = {}

    def span(self, name: str, **attributes: Any) -> Span:
        return Span(name, attributes, _tracer=self)

    # Same stack discipline as Tracer (Span.__enter__/__exit__ drive it).

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def inc_counter(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def export(self) -> Dict[str, Any]:
        """Flatten the recorded tree into a picklable record list.

        ``spans`` is depth-first with ``parent`` holding the index of the
        parent record (-1 for roots) — the same shape the JSONL exporter
        uses, minus the ids.
        """
        records: List[Dict[str, Any]] = []

        def emit(span: Span, parent: int) -> None:
            index = len(records)
            records.append(
                {
                    "name": span.name,
                    "start": span.start,
                    "duration": span.duration,
                    "attributes": span.attributes,
                    "parent": parent,
                }
            )
            for child in span.children:
                emit(child, index)

        for root in self.roots:
            emit(root, -1)
        return {
            "pid": os.getpid(),
            "spans": records,
            "gauges": dict(self.gauges),
            "counters": dict(self.counters),
        }


#: The ambient per-process worker tracer (installed by the pool trampoline).
_WORKER_TRACER: Optional[WorkerTracer] = None


def current_worker_tracer() -> Optional[WorkerTracer]:
    """The ambient :class:`WorkerTracer`, or ``None`` outside capture."""
    return _WORKER_TRACER


def worker_span(name: str, **attributes: Any):
    """A span on the ambient worker tracer (a no-op span outside capture).

    Worker-pool chunk functions call this instead of threading a tracer
    through their ``(chunk, extra)`` interface; the spans surface in the
    parent's merged tree when the fan-out runs under a recording tracer.
    """
    if _WORKER_TRACER is None:
        return _NullSpan()
    return _WORKER_TRACER.span(name, **attributes)


@contextmanager
def capture_worker_spans() -> Iterator[WorkerTracer]:
    """Install a fresh ambient :class:`WorkerTracer` for one chunk."""
    global _WORKER_TRACER
    previous = _WORKER_TRACER
    tracer = WorkerTracer()
    _WORKER_TRACER = tracer
    try:
        yield tracer
    finally:
        _WORKER_TRACER = previous
