"""Hierarchical wall-clock spans: the temporal half of observability.

A :class:`Tracer` hands out context-manager spans that nest::

    tracer = Tracer()
    with tracer.span("pipeline.run"):
        with tracer.span("clustering.signatures", reads=len(reads)) as span:
            ...
            span.set("signature_bytes", total)

Every span records its start offset (relative to the tracer's epoch), its
wall-clock duration, free-form key/value attributes, and its children.
Stage rollups read ``span.duration`` directly, which is how the pipeline's
:class:`~repro.pipeline.stats.StageTimings` stays populated without a
single bare ``perf_counter()`` pair.

The default throughout the toolkit is :data:`NULL_TRACER`: its spans still
measure duration (so rollups keep working untraced) but retain nothing —
no tree, no attributes, no metrics — making disabled instrumentation cost
exactly what the old hand-rolled ``perf_counter()`` pairs did.

Tracers are not thread-safe; use one per thread (or per pipeline run).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional

from repro.observability.metrics import NULL_REGISTRY, MetricsRegistry


class Span:
    """One timed region; a context manager vended by :meth:`Tracer.span`."""

    __slots__ = ("name", "attributes", "start", "duration", "children", "_tracer", "_t0")

    def __init__(
        self,
        name: str,
        attributes: Optional[Dict[str, Any]] = None,
        _tracer: Optional["Tracer"] = None,
    ):
        self.name = name
        self.attributes: Dict[str, Any] = attributes or {}
        self.start = 0.0
        self.duration = 0.0
        self.children: List[Span] = []
        self._tracer = _tracer
        self._t0 = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self._t0 = time.perf_counter()
        if self._tracer is not None:
            self.start = self._t0 - self._tracer.epoch
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._t0
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"attributes={self.attributes!r}, children={len(self.children)})"
        )


class Tracer:
    """Builds a tree of :class:`Span` objects plus a metrics registry."""

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self.epoch = time.perf_counter()

    def span(self, name: str, **attributes: Any) -> Span:
        """A new span; enter it (``with``) to start the clock."""
        return Span(name, attributes, _tracer=self)

    # -- stack discipline (driven by Span.__enter__/__exit__) ----------

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)

    # -- queries -------------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> List[Span]:
        """All spans named *name* (e.g. every ``clustering.signatures``)."""
        return [span for span in self.walk() if span.name == name]

    def reset(self) -> None:
        """Drop recorded spans (metrics are left alone)."""
        self.roots = []
        self._stack = []
        self.epoch = time.perf_counter()


class _NullSpan:
    """A span that measures its duration but retains nothing else.

    Durations must survive even with tracing disabled because stage
    rollups (``StageTimings``, ``ClusteringResult.signature_seconds``,
    ``TrainingHistory.seconds``) are part of the library's regular
    return values, not optional diagnostics.
    """

    __slots__ = ("duration", "_t0")

    name = ""
    start = 0.0
    attributes: Dict[str, Any] = {}
    children: List[Span] = []

    def __init__(self) -> None:
        self.duration = 0.0
        self._t0 = 0.0

    def set(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._t0
        return False


class NullTracer:
    """The disabled tracer: timing-only spans, no-op metrics, no state."""

    enabled = False
    metrics = NULL_REGISTRY
    roots: List[Span] = []

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NullSpan()

    def walk(self) -> Iterator[Span]:
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []

    def reset(self) -> None:
        pass


#: Shared default tracer: safe to pass everywhere, records nothing.
NULL_TRACER = NullTracer()


def as_tracer(tracer: Optional["Tracer"]) -> "Tracer":
    """Normalise an optional tracer argument (``None`` -> no-op)."""
    return NULL_TRACER if tracer is None else tracer
