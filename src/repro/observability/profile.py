"""Opt-in per-stage resource profiling: tracemalloc memory + GC activity.

A :class:`StageProfiler` rides along with a profiling tracer
(``Tracer(profile=True)``): every *top-level* stage span — roots and their
direct children, which is exactly the ``pipeline.<stage>`` layer — gains
three attributes on exit:

* ``mem_current_kb`` — Python-heap bytes alive when the stage ended;
* ``mem_peak_kb`` — the allocation high-water mark inside the stage;
* ``gc_collections`` — cyclic-GC passes that ran during the stage.

Deeper spans are left alone: tracemalloc makes every allocation ~2× more
expensive, so sampling is restricted to the layer whose numbers the
``repro trace`` report actually aggregates, and the whole machinery stays
off unless ``profile=True`` (or the CLI's ``--profile``) asked for it.

tracemalloc's peak counter is process-global, so nesting needs care: the
profiler resets the peak at every profiled enter and folds each child's
observed peak back into its parent's running maximum, which keeps parent
peaks correct even though children clobber the global counter.
"""

from __future__ import annotations

import gc
import tracemalloc
from typing import Any, List


def _gc_collections() -> int:
    """Total cyclic-GC passes so far, summed over the generations."""
    return sum(stat.get("collections", 0) for stat in gc.get_stats())


class StageProfiler:
    """Samples tracemalloc + GC deltas around top-level stage spans."""

    def __init__(self) -> None:
        # Each frame: [span, gc_collections at enter, children's max peak].
        self._frames: List[List[Any]] = []
        self._started_tracemalloc = False

    def _ensure_tracing(self) -> None:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def enter(self, span) -> None:
        """Open a profiled window for *span* (called by ``Tracer._push``)."""
        self._ensure_tracing()
        tracemalloc.reset_peak()
        self._frames.append([span, _gc_collections(), 0])

    def exit(self, span) -> bool:
        """Close *span*'s window if it is the innermost profiled one.

        ``Tracer._pop`` calls this for every span; anything that is not the
        top profiled frame (deeper, unprofiled spans) is ignored.
        """
        if not self._frames or self._frames[-1][0] is not span:
            return False
        _, gc_at_enter, child_peak = self._frames.pop()
        current, peak = tracemalloc.get_traced_memory()
        peak = max(peak, child_peak)
        span.set("mem_current_kb", round(current / 1024, 1))
        span.set("mem_peak_kb", round(peak / 1024, 1))
        span.set("gc_collections", _gc_collections() - gc_at_enter)
        if self._frames:
            parent = self._frames[-1]
            parent[2] = max(parent[2], peak)
            tracemalloc.reset_peak()  # fresh window for the parent's tail
        return True

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it (idempotent)."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False
        self._frames = []
