"""Structured quality reports: the fidelity half of observability.

PR 1's tracer answers "where did the time go"; this module answers "what
did the run do to the data".  Each pipeline stage contributes one section:

* :class:`ChannelQuality` — error rates *observed* in the simulated reads
  (by aligning a sample of reads against their origin strands), next to
  the rates the channel was *configured* with, plus read-length deltas;
* :class:`ClusteringQuality` — purity, fragmentation and under/over-merge
  counts against the sequencing ground truth;
* :class:`ReconstructionQuality` — per-strand edit distance to the
  reference body and the exact-recovery fraction;
* :class:`DecodingQuality` — RS row outcomes, symbols corrected, erasures
  and bytes recovered.

A :class:`QualityReport` bundles the sections (each ``None`` when its
ground truth was unavailable, e.g. on the wetlab-reads entry point) and is
surfaced on :class:`~repro.pipeline.pipeline.PipelineResult` alongside
:class:`~repro.pipeline.stats.StageTimings`.  The report round-trips
through plain dicts/JSON so benchmark artifacts can embed and diff it —
that is what ``repro bench --compare`` gates regressions on.

This module is pure data; the evaluation logic that *builds* the sections
lives next to each stage (:mod:`repro.simulation.observed`,
:mod:`repro.clustering.metrics`, :mod:`repro.pipeline.quality`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Dict, Optional

#: Version of the ``QualityReport.as_dict`` shape (bumped on breaking change).
QUALITY_SCHEMA_VERSION = 1


@dataclass
class ChannelQuality:
    """Error rates observed in the channel output vs. the configured rates.

    Rates are per reference base, estimated by globally aligning a sample
    of reads against the strands that produced them (the same attribution
    the learned channel models use when fitting).
    """

    reads_sampled: int = 0
    bases_compared: int = 0
    substitution_rate: float = 0.0
    insertion_rate: float = 0.0
    deletion_rate: float = 0.0
    #: mean signed read-length minus reference-length difference
    mean_length_delta: float = 0.0
    #: largest absolute length difference seen in the sample
    max_length_delta: int = 0
    #: the channel's configured rates, when it can report them
    expected_substitution_rate: Optional[float] = None
    expected_insertion_rate: Optional[float] = None
    expected_deletion_rate: Optional[float] = None

    @property
    def total_rate(self) -> float:
        return self.substitution_rate + self.insertion_rate + self.deletion_rate

    @property
    def expected_total_rate(self) -> Optional[float]:
        expected = (
            self.expected_substitution_rate,
            self.expected_insertion_rate,
            self.expected_deletion_rate,
        )
        if any(rate is None for rate in expected):
            return None
        return sum(expected)  # type: ignore[arg-type]


@dataclass
class ClusteringQuality:
    """Clustering outcome against the sequencing ground truth."""

    clusters: int = 0
    true_clusters: int = 0
    #: fraction of reads that sit in their cluster's dominant true class
    purity: float = 0.0
    #: excess fragments: sum over true clusters of (pieces - 1)
    fragmentation: int = 0
    #: true clusters split across more than one output cluster
    under_merged: int = 0
    #: output clusters containing reads from more than one true cluster
    over_merged: int = 0


@dataclass
class ReconstructionQuality:
    """Per-strand distance between reconstructions and reference bodies."""

    strands: int = 0
    exact_matches: int = 0
    mean_edit_distance: float = 0.0
    p90_edit_distance: float = 0.0
    max_edit_distance: int = 0

    @property
    def exact_recovery_fraction(self) -> float:
        return self.exact_matches / self.strands if self.strands else 0.0


@dataclass
class DecodingQuality:
    """Reed-Solomon workload and outcome of the decode stage."""

    clean_rows: int = 0
    corrected_rows: int = 0
    failed_rows: int = 0
    #: total RS symbols repaired across all corrected rows
    symbols_corrected: int = 0
    #: erasure locations handed to the RS decoder (missing molecules)
    erasures: int = 0
    bytes_recovered: int = 0
    success: bool = False

    @property
    def total_rows(self) -> int:
        return self.clean_rows + self.corrected_rows + self.failed_rows

    @property
    def clean_row_fraction(self) -> float:
        total = self.total_rows
        return self.clean_rows / total if total else 0.0


@dataclass
class ProvenanceQuality:
    """Per-strand root-cause verdict counts from the provenance ledger.

    Populated only when a run records a
    :class:`~repro.observability.provenance.ProvenanceLedger`; the verdict
    vocabulary is documented in :mod:`repro.observability.forensics`.
    """

    strands: int = 0
    ok: int = 0
    dropout: int = 0
    underclustered: int = 0
    misclustered: int = 0
    consensus_error: int = 0
    ecc_overload: int = 0

    @property
    def failures(self) -> int:
        """Strands whose verdict names a fault (everything but ``ok``)."""
        return self.strands - self.ok


_SECTION_TYPES = {
    "channel": ChannelQuality,
    "clustering": ClusteringQuality,
    "reconstruction": ReconstructionQuality,
    "decoding": DecodingQuality,
    "provenance": ProvenanceQuality,
}


@dataclass
class QualityReport:
    """All quality sections one pipeline run produced.

    Sections are ``None`` when their ground truth was unavailable — e.g.
    ``run_from_reads`` has no sequencing origins, so only ``decoding`` is
    populated there.
    """

    channel: Optional[ChannelQuality] = None
    clustering: Optional[ClusteringQuality] = None
    reconstruction: Optional[ReconstructionQuality] = None
    decoding: Optional[DecodingQuality] = None
    #: per-strand root-cause verdict counts; ``None`` unless the run
    #: recorded a provenance ledger
    provenance: Optional[ProvenanceQuality] = None

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (schema-versioned; ``from_dict`` inverts it)."""
        payload: Dict[str, Any] = {"schema_version": QUALITY_SCHEMA_VERSION}
        for name in _SECTION_TYPES:
            section = getattr(self, name)
            payload[name] = None if section is None else asdict(section)
        # Derived headline numbers, denormalised for easy grepping/gating.
        if self.reconstruction is not None:
            payload["reconstruction"]["exact_recovery_fraction"] = (
                self.reconstruction.exact_recovery_fraction
            )
        if self.decoding is not None:
            payload["decoding"]["clean_row_fraction"] = (
                self.decoding.clean_row_fraction
            )
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QualityReport":
        """Rebuild a report written by :meth:`as_dict`.

        Unknown keys (e.g. the denormalised derived fields, or fields
        added by a newer schema) are ignored so old readers keep working.
        """
        version = payload.get("schema_version", QUALITY_SCHEMA_VERSION)
        if version > QUALITY_SCHEMA_VERSION:
            raise ValueError(
                f"quality report schema {version} is newer than supported "
                f"({QUALITY_SCHEMA_VERSION})"
            )
        sections: Dict[str, Any] = {}
        for name, section_type in _SECTION_TYPES.items():
            raw = payload.get(name)
            if raw is None:
                sections[name] = None
                continue
            known = {f.name for f in fields(section_type)}
            sections[name] = section_type(
                **{key: value for key, value in raw.items() if key in known}
            )
        return cls(**sections)

    def emit(self, metrics) -> None:
        """Record the headline numbers as gauges in a metrics registry.

        This is what makes the quality report greppable from a saved
        trace: ``repro trace`` renders these next to the span latencies.
        """
        if self.channel is not None:
            metrics.gauge("channel_observed_rate", kind="sub").set(
                self.channel.substitution_rate
            )
            metrics.gauge("channel_observed_rate", kind="ins").set(
                self.channel.insertion_rate
            )
            metrics.gauge("channel_observed_rate", kind="del").set(
                self.channel.deletion_rate
            )
            metrics.gauge("channel_mean_length_delta").set(
                self.channel.mean_length_delta
            )
        if self.clustering is not None:
            metrics.gauge("cluster_purity").set(self.clustering.purity)
            metrics.gauge("cluster_fragmentation").set(
                self.clustering.fragmentation
            )
            metrics.gauge("cluster_under_merged").set(self.clustering.under_merged)
            metrics.gauge("cluster_over_merged").set(self.clustering.over_merged)
        if self.reconstruction is not None:
            metrics.gauge("reconstruction_exact_recovery").set(
                self.reconstruction.exact_recovery_fraction
            )
        if self.decoding is not None:
            metrics.gauge("decode_bytes_recovered").set(
                self.decoding.bytes_recovered
            )
        if self.provenance is not None:
            for verdict in (
                "ok",
                "dropout",
                "underclustered",
                "misclustered",
                "consensus_error",
                "ecc_overload",
            ):
                metrics.gauge("provenance_verdicts", verdict=verdict).set(
                    getattr(self.provenance, verdict)
                )
