"""Unified tracing + metrics for the end-to-end pipeline.

Three pieces:

* :mod:`repro.observability.trace` — nested context-manager spans
  (:class:`Tracer`), with a timing-only no-op default
  (:data:`NULL_TRACER`);
* :mod:`repro.observability.metrics` — labelled counters, gauges and
  percentile histograms (:class:`MetricsRegistry`);
* :mod:`repro.observability.export` — JSONL serialisation and the
  plain-text report behind ``repro trace``.

Enable end-to-end tracing by passing a tracer into the pipeline::

    from repro.observability import Tracer, write_trace

    tracer = Tracer()
    result = Pipeline(config).run(data, tracer=tracer)
    write_trace(tracer, "trace.jsonl")

See DESIGN.md for the span/metric naming scheme.
"""

from repro.observability.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    percentile,
)
from repro.observability.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
)
from repro.observability.export import (
    TraceData,
    load_trace,
    render_report,
    render_span_tree,
    render_tracer_report,
    trace_lines,
    write_trace,
)
from repro.observability.quality import (
    QUALITY_SCHEMA_VERSION,
    ChannelQuality,
    ClusteringQuality,
    DecodingQuality,
    QualityReport,
    ReconstructionQuality,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "percentile",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "TraceData",
    "load_trace",
    "render_report",
    "render_span_tree",
    "render_tracer_report",
    "trace_lines",
    "write_trace",
    "QUALITY_SCHEMA_VERSION",
    "ChannelQuality",
    "ClusteringQuality",
    "DecodingQuality",
    "QualityReport",
    "ReconstructionQuality",
]
