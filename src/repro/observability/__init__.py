"""Unified tracing + metrics for the end-to-end pipeline.

Three pieces:

* :mod:`repro.observability.trace` — nested context-manager spans
  (:class:`Tracer`), with a timing-only no-op default
  (:data:`NULL_TRACER`);
* :mod:`repro.observability.metrics` — labelled counters, gauges and
  percentile histograms (:class:`MetricsRegistry`);
* :mod:`repro.observability.export` — JSONL serialisation, the
  plain-text report behind ``repro trace``, and Chrome Trace Event
  export (``repro trace --chrome`` / ``--trace-out``) for Perfetto;
* :mod:`repro.observability.profile` — opt-in per-stage tracemalloc/GC
  profiling (``Tracer(profile=True)``, CLI ``--profile``);
* :mod:`repro.observability.provenance` /
  :mod:`repro.observability.forensics` — the per-strand lineage ledger
  and root-cause verdict engine behind ``repro why``;
* :mod:`repro.observability.log` — structured stdlib logging behind the
  global ``--log-level/-v`` CLI flags.

Enable end-to-end tracing by passing a tracer into the pipeline::

    from repro.observability import Tracer, write_trace

    tracer = Tracer()
    result = Pipeline(config).run(data, tracer=tracer)
    write_trace(tracer, "trace.jsonl")

See DESIGN.md for the span/metric naming scheme.
"""

from repro.observability.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    load_imbalance,
    percentile,
)
from repro.observability.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    WorkerTracer,
    as_tracer,
    capture_worker_spans,
    current_worker_tracer,
    worker_span,
)
from repro.observability.profile import StageProfiler
from repro.observability.export import (
    TraceData,
    load_trace,
    render_report,
    render_span_tree,
    render_tracer_report,
    span_structure,
    to_chrome_trace,
    trace_lines,
    write_chrome_trace,
    write_trace,
)
from repro.observability.quality import (
    QUALITY_SCHEMA_VERSION,
    ChannelQuality,
    ClusteringQuality,
    DecodingQuality,
    ProvenanceQuality,
    QualityReport,
    ReconstructionQuality,
)
from repro.observability.metrics import emit_process_gauges
from repro.observability.provenance import (
    NULL_LEDGER,
    PROVENANCE_SCHEMA_VERSION,
    VERDICTS,
    NullProvenanceLedger,
    ProvenanceLedger,
    ProvenanceReport,
    ProvenanceSummary,
    StrandProvenance,
    UnitOutcome,
    as_ledger,
    ledger_lines,
    load_ledger,
    write_ledger,
)
from repro.observability.forensics import (
    analyze,
    render_strand_timeline,
    render_why_summary,
)
from repro.observability.log import configure_logging, get_logger, resolve_level
from repro.observability.sampler import TelemetrySampler, current_rss_bytes
from repro.observability.runs import (
    RUNS_SCHEMA_VERSION,
    RunRecord,
    RunRegistry,
    bench_run_record,
    config_fingerprint,
    default_runs_dir,
    detect_drift,
    diff_runs,
    flatten_metrics,
    pipeline_run_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_REGISTRY",
    "load_imbalance",
    "percentile",
    "Span",
    "Tracer",
    "WorkerTracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "capture_worker_spans",
    "current_worker_tracer",
    "worker_span",
    "StageProfiler",
    "TraceData",
    "load_trace",
    "render_report",
    "render_span_tree",
    "render_tracer_report",
    "span_structure",
    "to_chrome_trace",
    "trace_lines",
    "write_chrome_trace",
    "write_trace",
    "QUALITY_SCHEMA_VERSION",
    "ChannelQuality",
    "ClusteringQuality",
    "DecodingQuality",
    "ProvenanceQuality",
    "QualityReport",
    "ReconstructionQuality",
    "emit_process_gauges",
    "NULL_LEDGER",
    "PROVENANCE_SCHEMA_VERSION",
    "VERDICTS",
    "NullProvenanceLedger",
    "ProvenanceLedger",
    "ProvenanceReport",
    "ProvenanceSummary",
    "StrandProvenance",
    "UnitOutcome",
    "as_ledger",
    "ledger_lines",
    "load_ledger",
    "write_ledger",
    "analyze",
    "render_strand_timeline",
    "render_why_summary",
    "configure_logging",
    "get_logger",
    "resolve_level",
    "TelemetrySampler",
    "current_rss_bytes",
    "RUNS_SCHEMA_VERSION",
    "RunRecord",
    "RunRegistry",
    "bench_run_record",
    "config_fingerprint",
    "default_runs_dir",
    "detect_drift",
    "diff_runs",
    "flatten_metrics",
    "pipeline_run_record",
]
