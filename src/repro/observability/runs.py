"""The flight recorder: a persistent, append-only registry of runs.

Single-run observability (spans, metrics, quality, provenance) answers
"what happened in *this* run"; this module answers "how does this run
compare to the last hundred".  Every recorded ``repro pipeline`` /
``repro bench`` invocation appends one :class:`RunRecord` to an on-disk
registry (default ``.repro/runs/``, override with ``--runs-dir`` or the
``REPRO_RUNS_DIR`` environment variable):

* ``runs.jsonl`` — one schema-versioned record per line, append-only, so
  concurrent invocations interleave without corrupting each other (the
  append happens under an advisory file lock and as a single ``write``);
* ``index.json`` — a small derived summary (count, fingerprint tally,
  last run id) rebuilt on every append, cheap to read without scanning
  the log.

Each record carries a **config fingerprint**: the sha256 of the
canonicalized configuration (:func:`config_fingerprint`).  Records with
equal fingerprints ran the same configuration, which is what makes
longitudinal comparison meaningful: :func:`detect_drift` takes the newest
run and diffs its deterministic quality metrics against the trailing
window of same-fingerprint history, reusing the tolerance machinery of
:mod:`repro.benchmarking.compare`.  Seeded runs are bit-reproducible, so
*any* metric movement at a fixed fingerprint means the code changed
behaviour — the same argument the bench gate makes, now across every
recorded invocation instead of only explicit bench runs.

Latency lives in ``timings`` (informational; machine-dependent) and is
never drift-gated; the gated ``metrics`` map holds only deterministic
quality values (decode success, RS row fates, observed channel rates,
verdict counts).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # deferred at runtime: benchmarking imports the pipeline
    from repro.benchmarking.compare import ComparisonResult

#: Version of the RunRecord shape (bumped on breaking change).
RUNS_SCHEMA_VERSION = 1

#: ``kind`` values a record may carry.
RUN_KINDS = ("pipeline", "bench")

#: Environment variable overriding the default registry location.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Default on-disk location, relative to the working directory.
DEFAULT_RUNS_DIR = ".repro/runs"


def default_runs_dir() -> Path:
    """``$REPRO_RUNS_DIR`` when set, else ``.repro/runs``."""
    return Path(os.environ.get(RUNS_DIR_ENV) or DEFAULT_RUNS_DIR)


# ----------------------------------------------------------------------
# Config canonicalization + fingerprint
# ----------------------------------------------------------------------


def canonicalize(value: object) -> object:
    """Reduce *value* to a JSON-stable plain structure.

    Dataclasses and plain objects become ``{"__type__": qualified name,
    **fields}`` so two configs differing only in *which* channel /
    reconstructor / layout class they use fingerprint differently even
    when the field values coincide.  Containers recurse; callables and
    classes reduce to their qualified name; anything else falls back to
    ``repr`` (stable for the value objects used in configs).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (bytes, bytearray)):
        return hashlib.sha256(bytes(value)).hexdigest()
    if isinstance(value, dict):
        return {str(key): canonicalize(val) for key, val in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [canonicalize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(repr(canonicalize(item)) for item in value)
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return canonicalize(value.tolist())
    if isinstance(value, type) or callable(value):
        return f"{getattr(value, '__module__', '?')}.{getattr(value, '__qualname__', repr(value))}"
    type_name = f"{type(value).__module__}.{type(value).__qualname__}"
    if dataclasses.is_dataclass(value):
        fields = {
            f.name: canonicalize(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__type__": type_name, **fields}
    state = getattr(value, "__dict__", None)
    if state is not None:
        return {
            "__type__": type_name,
            **{
                str(key): canonicalize(val)
                for key, val in sorted(state.items())
                if not str(key).startswith("_")
            },
        }
    return {"__type__": type_name, "repr": repr(value)}


def config_fingerprint(config: object) -> str:
    """sha256 over the canonicalized *config* — equal iff configs match.

    Works for a :class:`~repro.pipeline.config.PipelineConfig`, a suite
    parameter dict, or any nested structure of the above.  Changing any
    field (seed, error rate, worker count, layout class, ...) changes the
    fingerprint; re-building an identical config reproduces it.
    """
    blob = json.dumps(
        canonicalize(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# RunRecord
# ----------------------------------------------------------------------


def new_run_id(now: Optional[float] = None) -> str:
    """A sortable, collision-free run id: UTC timestamp + random suffix."""
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime(now))
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


@dataclass
class RunRecord:
    """One recorded invocation, as persisted in ``runs.jsonl``."""

    run_id: str
    #: "pipeline" or "bench"
    kind: str
    #: seconds since the epoch, UTC
    created_unix: float
    #: commit recorded at run time, or "unknown"
    git_sha: str
    #: sha256 of the canonicalized configuration (:func:`config_fingerprint`)
    fingerprint: str
    #: human handle: the input file (pipeline) or suite name (bench)
    label: str = ""
    seed: Optional[int] = None
    workers: int = 1
    schema_version: int = RUNS_SCHEMA_VERSION
    #: wall-clock seconds — per stage for pipelines, per workload for
    #: benches; machine-dependent, never drift-gated
    timings: Dict[str, float] = field(default_factory=dict)
    total_seconds: float = 0.0
    #: deterministic quality metrics, flat dotted keys; the drift gate
    #: compares exactly this map across same-fingerprint runs
    metrics: Dict[str, float] = field(default_factory=dict)
    #: worst max/mean chunk duration per fan-out site (1.0 = balanced)
    load_imbalance: Dict[str, float] = field(default_factory=dict)
    peak_rss_bytes: int = 0
    #: telemetry time-series from ``--sample-interval`` (may be empty)
    samples: List[Dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.kind not in RUN_KINDS:
            raise ValueError(f"kind must be one of {RUN_KINDS}, got {self.kind!r}")

    @property
    def created_iso(self) -> str:
        return time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self.created_unix)
        )

    def as_dict(self) -> Dict:
        """A JSON-ready dict (``from_dict`` inverts it)."""
        payload = dataclasses.asdict(self)
        # schema_version leads so raw JSONL lines are self-describing.
        return {"schema_version": payload.pop("schema_version"), **payload}

    @classmethod
    def from_dict(cls, payload: Dict) -> "RunRecord":
        """Rebuild a record written by :meth:`as_dict`."""
        payload = dict(payload)
        version = payload.get("schema_version")
        if not isinstance(version, int) or version < 1:
            raise ValueError(f"bad run record schema_version {version!r}")
        if version > RUNS_SCHEMA_VERSION:
            raise ValueError(
                f"run record schema {version} is newer than supported "
                f"({RUNS_SCHEMA_VERSION})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: val for key, val in payload.items() if key in known})


def flatten_metrics(node: object, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested dict as flat ``a.b.c`` keys.

    Booleans become 0/1, strings/None are skipped, and ``schema_version``
    keys are dropped (they describe the shape, not the run).
    """
    flat: Dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if key == "schema_version":
                continue
            path = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(value, path))
    elif isinstance(node, bool):
        flat[prefix] = 1.0 if node else 0.0
    elif isinstance(node, (int, float)):
        flat[prefix] = float(node)
    return flat


def _peak_rss_bytes() -> int:
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    scale = 1 if sys.platform == "darwin" else 1024
    own = resource.getrusage(resource.RUSAGE_SELF)
    children = resource.getrusage(resource.RUSAGE_CHILDREN)
    return max(own.ru_maxrss, children.ru_maxrss) * scale


def pipeline_run_record(
    config,
    result,
    *,
    data_bytes: int,
    label: str = "",
    git_sha: Optional[str] = None,
    samples: Sequence[Dict] = (),
    tracer=None,
    run_id: Optional[str] = None,
    now: Optional[float] = None,
) -> RunRecord:
    """Build the RunRecord for one finished pipeline run.

    *config* is the :class:`~repro.pipeline.config.PipelineConfig` that
    produced *result* (a :class:`~repro.pipeline.pipeline.PipelineResult`);
    pass the run's tracer to also capture per-fan-out load imbalance.
    """
    from repro.benchmarking.report import current_git_sha

    metrics: Dict[str, float] = {
        "success": 1.0 if result.success else 0.0,
        "data_bytes": float(data_bytes),
    }
    if result.quality is not None:
        metrics.update(flatten_metrics(result.quality.as_dict(), "quality"))
    elif result.decode_report is not None:
        report = result.decode_report
        metrics.update(
            {
                "decode.clean_rows": float(report.clean_rows),
                "decode.corrected_rows": float(report.corrected_rows),
                "decode.failed_rows": float(report.failed_rows),
            }
        )
    imbalance: Dict[str, float] = {}
    if tracer is not None and getattr(tracer, "metrics", None) is not None:
        for name, labels, gauge in tracer.metrics.gauges():
            if name == "worker_load_imbalance":
                imbalance[labels.get("span", "-")] = round(gauge.value, 4)
    timestamp = time.time() if now is None else now
    return RunRecord(
        run_id=run_id or new_run_id(timestamp),
        kind="pipeline",
        created_unix=timestamp,
        git_sha=git_sha if git_sha is not None else current_git_sha(),
        fingerprint=config_fingerprint(config),
        label=label,
        seed=config.seed,
        workers=config.workers,
        timings={
            stage: round(seconds, 6)
            for stage, seconds in result.timings.as_dict().items()
        },
        total_seconds=round(result.timings.total, 6),
        metrics=metrics,
        load_imbalance=imbalance,
        peak_rss_bytes=_peak_rss_bytes(),
        samples=list(samples),
    )


def bench_run_record(
    report: Dict,
    *,
    samples: Sequence[Dict] = (),
    run_id: Optional[str] = None,
    now: Optional[float] = None,
) -> RunRecord:
    """Build the RunRecord for one ``repro bench --suite`` invocation.

    The fingerprint covers the suite's identity — name plus every
    workload's declared params/sizes — so record streams from different
    suites never mix in the drift window.
    """
    rows = report.get("workloads", [])
    fingerprint_basis = {
        "suite": report.get("suite"),
        "workloads": [
            {
                "name": row.get("name"),
                "params": row.get("params"),
                "data_bytes": row.get("data_bytes"),
                "repeats": row.get("repeats"),
                "workers": row.get("workers"),
            }
            for row in rows
        ],
    }
    metrics: Dict[str, float] = {}
    timings: Dict[str, float] = {}
    total = 0.0
    for row in rows:
        name = row.get("name", "?")
        metrics[f"{name}.success_rate"] = float(row.get("success_rate", 0.0))
        quality = row.get("quality")
        if quality:
            metrics.update(flatten_metrics(quality, f"{name}.quality"))
        p50 = (row.get("latency_s") or {}).get("total", {}).get("p50")
        if p50 is not None:
            timings[f"{name}.total_p50"] = round(float(p50), 6)
            total += float(p50)
    timestamp = time.time() if now is None else now
    return RunRecord(
        run_id=run_id or new_run_id(timestamp),
        kind="bench",
        created_unix=timestamp,
        git_sha=str(report.get("git_sha", "unknown")),
        fingerprint=config_fingerprint(fingerprint_basis),
        label=str(report.get("suite", "")),
        seed=None,
        workers=int(rows[0].get("workers", 1)) if rows else 1,
        timings=timings,
        total_seconds=round(total, 6),
        metrics=metrics,
        load_imbalance={},
        peak_rss_bytes=_peak_rss_bytes(),
        samples=list(samples),
    )


# ----------------------------------------------------------------------
# RunRegistry — the on-disk store
# ----------------------------------------------------------------------


class RunRegistry:
    """Append-only JSONL registry under one directory.

    Appends are multi-process safe: the record line is written in a
    single ``write`` call to a file opened in append mode, under an
    advisory ``flock`` (where the platform provides one) so the derived
    ``index.json`` rebuild never races another writer.
    """

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_runs_dir()

    @property
    def records_path(self) -> Path:
        return self.root / "runs.jsonl"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    @property
    def lock_path(self) -> Path:
        return self.root / ".lock"

    def exists(self) -> bool:
        return self.records_path.exists()

    # -- locking -------------------------------------------------------

    @contextmanager
    def _locked(self):
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with open(self.lock_path, "a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    # -- writing -------------------------------------------------------

    def append(self, record: RunRecord) -> RunRecord:
        """Append *record* and rebuild the index; returns the record."""
        line = json.dumps(record.as_dict(), sort_keys=False) + "\n"
        with self._locked():
            with open(self.records_path, "a", encoding="utf-8") as handle:
                handle.write(line)
            self._rebuild_index()
        return record

    def _rebuild_index(self) -> None:
        records = self._read_records()
        fingerprints: Dict[str, int] = {}
        for record in records:
            fingerprints[record.fingerprint] = (
                fingerprints.get(record.fingerprint, 0) + 1
            )
        index = {
            "schema_version": RUNS_SCHEMA_VERSION,
            "count": len(records),
            "updated_unix": int(time.time()),
            "last_run_id": records[-1].run_id if records else None,
            "fingerprints": fingerprints,
        }
        self.index_path.write_text(json.dumps(index, indent=2) + "\n")

    # -- reading -------------------------------------------------------

    def _read_records(self) -> List[RunRecord]:
        if not self.records_path.exists():
            return []
        records = []
        for line in self.records_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line:
                records.append(RunRecord.from_dict(json.loads(line)))
        return records

    def records(self) -> List[RunRecord]:
        """Every record, oldest first (file order == append order)."""
        return self._read_records()

    def index(self) -> Dict:
        """The derived index document ({} when the registry is empty)."""
        if not self.index_path.exists():
            return {}
        return json.loads(self.index_path.read_text())

    def get(self, run_id: str) -> RunRecord:
        """The record whose id equals or uniquely starts with *run_id*."""
        matches = [
            record
            for record in self._read_records()
            if record.run_id == run_id or record.run_id.startswith(run_id)
        ]
        exact = [record for record in matches if record.run_id == run_id]
        if exact:
            return exact[-1]
        if not matches:
            raise KeyError(f"no run matches {run_id!r}")
        if len(matches) > 1:
            ids = ", ".join(record.run_id for record in matches)
            raise KeyError(f"run id {run_id!r} is ambiguous ({ids})")
        return matches[0]

    def latest(self, kind: Optional[str] = None) -> Optional[RunRecord]:
        """The newest record (optionally of one *kind*), or None."""
        for record in reversed(self._read_records()):
            if kind is None or record.kind == kind:
                return record
        return None

    def trailing(
        self,
        fingerprint: str,
        kind: str,
        before: Optional[str] = None,
        window: int = 8,
    ) -> List[RunRecord]:
        """Up to *window* same-fingerprint records preceding run *before*.

        Newest last.  *before* (a run id) excludes the target run itself
        and anything appended after it; None means "use all history".
        """
        records = self._read_records()
        if before is not None:
            cut = next(
                (i for i, r in enumerate(records) if r.run_id == before),
                len(records),
            )
            records = records[:cut]
        matching = [
            record
            for record in records
            if record.fingerprint == fingerprint and record.kind == kind
        ]
        return matching[-window:] if window > 0 else matching

    # -- retention -----------------------------------------------------

    def gc(
        self,
        max_age_days: Optional[float] = None,
        max_count: Optional[int] = None,
        now: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Prune old records; returns ``(kept, removed)``.

        ``max_age_days`` drops records older than the cutoff;
        ``max_count`` then keeps only the newest N.  The log is rewritten
        atomically (temp file + rename) under the registry lock.
        """
        if max_age_days is None and max_count is None:
            raise ValueError("gc needs max_age_days and/or max_count")
        if max_age_days is not None and max_age_days < 0:
            raise ValueError("max_age_days must be non-negative")
        if max_count is not None and max_count < 0:
            raise ValueError("max_count must be non-negative")
        timestamp = time.time() if now is None else now
        with self._locked():
            records = self._read_records()
            kept = records
            if max_age_days is not None:
                cutoff = timestamp - max_age_days * 86400.0
                kept = [r for r in kept if r.created_unix >= cutoff]
            if max_count is not None and len(kept) > max_count:
                kept = kept[len(kept) - max_count :]
            removed = len(records) - len(kept)
            if removed:
                tmp = self.records_path.with_suffix(".jsonl.tmp")
                tmp.write_text(
                    "".join(
                        json.dumps(r.as_dict(), sort_keys=False) + "\n"
                        for r in kept
                    ),
                    encoding="utf-8",
                )
                tmp.replace(self.records_path)
                self._rebuild_index()
        return len(kept), removed


# ----------------------------------------------------------------------
# Drift detection
# ----------------------------------------------------------------------


def detect_drift(
    registry: RunRegistry,
    run: Optional[RunRecord] = None,
    window: int = 8,
    tolerance: float = 0.10,
    slack: float = 1e-9,
) -> ComparisonResult:
    """Diff *run* (default: the newest record) against its trailing window.

    The baseline for each metric is the mean over up to *window* earlier
    records sharing the run's fingerprint and kind; a metric deviating
    beyond ``max(tolerance * |baseline|, slack)`` in either direction is
    a regression (seeded runs are deterministic, so *any* real movement
    at a fixed fingerprint means behaviour changed).  With no history the
    result is OK with a warning — the first run of a new configuration
    cannot drift.
    """
    from repro.benchmarking.compare import ComparisonResult, diff_metric_maps

    if run is None:
        run = registry.latest()
    result = ComparisonResult()
    if run is None:
        result.warnings.append("registry is empty: nothing to check")
        return result
    history = registry.trailing(
        run.fingerprint, run.kind, before=run.run_id, window=window
    )
    if not history:
        result.warnings.append(
            f"no earlier runs share fingerprint {run.fingerprint[:12]}: "
            "first run of this configuration, nothing to drift against"
        )
        return result
    baseline: Dict[str, float] = {}
    for key in sorted({k for record in history for k in record.metrics}):
        values = [r.metrics[key] for r in history if key in r.metrics]
        baseline[key] = sum(values) / len(values)
    return diff_metric_maps(
        baseline,
        run.metrics,
        tolerance=tolerance,
        slack=slack,
        workload=run.run_id,
        baseline_name=f"trailing {len(history)} run(s)",
    )


def diff_runs(
    a: RunRecord,
    b: RunRecord,
    tolerance: float = 0.10,
    slack: float = 1e-9,
) -> ComparisonResult:
    """Diff two records' metric maps (A as baseline, B as new)."""
    from repro.benchmarking.compare import diff_metric_maps

    result = diff_metric_maps(
        a.metrics,
        b.metrics,
        tolerance=tolerance,
        slack=slack,
        workload=b.run_id,
        baseline_name=a.run_id,
    )
    if a.fingerprint != b.fingerprint:
        result.warnings.append(
            f"fingerprints differ ({a.fingerprint[:12]} vs "
            f"{b.fingerprint[:12]}): comparing different configurations"
        )
    return result
