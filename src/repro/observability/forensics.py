"""Decode-failure forensics: join the provenance ledger into verdicts.

The ledger (:mod:`repro.observability.provenance`) records *facts*; this
module turns them into *attribution*.  Every strand receives exactly one
root-cause verdict, chosen as the first stage at which its journey went
wrong:

* ``dropout`` — the channel emitted zero reads for the strand;
* ``underclustered`` — reads exist, but all of them sit in clusters that
  were discarded (too small) and never reached reconstruction;
* ``misclustered`` — reads exist and some landed in a *kept* cluster, but
  that cluster is dominated by another strand, so no consensus was built
  for this one;
* ``consensus_error`` — the strand dominates a kept cluster, but every
  consensus built for it differs from the reference body (or parses to
  the wrong molecule index);
* ``ecc_overload`` — the journey was clean, yet the strand's column still
  came out damaged in the Reed-Solomon plane (e.g. corrupted by a foreign
  consensus voting on its index, or sitting in a unit whose rows were
  uncorrectable for reasons the upstream stages cannot explain);
* ``ok`` — clean end to end.

A verdict describes the strand's own journey, not whether the file
survived: a dropped-out strand in a unit the RS erasure decoder rescued
is still a ``dropout`` — that is precisely the error-budget accounting
(Organick et al.) the ledger exists to provide.  Failed RS rows are
attributed per unit to the dominant journey fault among that unit's
damaged strands (ties break in :data:`~repro.observability.provenance.VERDICTS`
order), which is what the acceptance gate checks against injected faults.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.observability.provenance import (
    VERDICTS,
    ClusterPlacement,
    ConsensusOutcome,
    ProvenanceLedger,
    ProvenanceReport,
    ProvenanceSummary,
    StrandProvenance,
    UnitOutcome,
)

#: Verdicts that name an upstream (pre-RS) journey fault.
JOURNEY_FAULTS = ("dropout", "underclustered", "misclustered", "consensus_error")


# ----------------------------------------------------------------------
# The join
# ----------------------------------------------------------------------


def analyze(ledger: ProvenanceLedger) -> ProvenanceReport:
    """Join *ledger*'s per-stage facts into a :class:`ProvenanceReport`."""
    strands = len(ledger.references)
    n = ledger.total_columns or 1

    # read index -> cluster id, cluster id -> kept position
    read_cluster: Dict[int, int] = {}
    for cluster_id, members in enumerate(ledger.clusters):
        for read_index in members:
            read_cluster[read_index] = cluster_id
    kept_position = {
        cluster_id: position
        for position, cluster_id in enumerate(ledger.kept_ids)
    }

    # cluster id -> dominant origin (same first-seen tie-break as the
    # reconstruction scoring: Counter.most_common on sorted member order)
    dominant_origin: Dict[int, int] = {}
    if ledger.origins:
        for cluster_id, members in enumerate(ledger.clusters):
            votes = Counter(ledger.origins[read_index] for read_index in members)
            if votes:
                dominant_origin[cluster_id] = votes.most_common(1)[0][0]

    # origin -> read ids (in read order, deterministic)
    reads_by_origin: Dict[int, List[int]] = {}
    for read_index, origin in enumerate(ledger.origins):
        reads_by_origin.setdefault(origin, []).append(read_index)

    records: List[StrandProvenance] = []
    for strand_id in range(strands):
        record = StrandProvenance(
            strand_id=strand_id, unit=strand_id // n, column=strand_id % n
        )
        record.read_ids = reads_by_origin.get(strand_id, [])
        record.reads = len(record.read_ids)
        if ledger.read_edits:
            record.read_edits = [
                ledger.read_edits[read_index] for read_index in record.read_ids
            ]

        # clustering placements
        placement_counts: Dict[int, int] = {}
        for read_index in record.read_ids:
            cluster_id = read_cluster.get(read_index)
            if cluster_id is not None:
                placement_counts[cluster_id] = placement_counts.get(cluster_id, 0) + 1
        record.placements = [
            ClusterPlacement(
                cluster=cluster_id,
                reads=count,
                kept=cluster_id in kept_position,
                dominant=dominant_origin.get(cluster_id) == strand_id,
            )
            for cluster_id, count in sorted(placement_counts.items())
        ]

        # reconstructions attributed to this strand
        for placement in record.placements:
            if not (placement.kept and placement.dominant):
                continue
            position = kept_position[placement.cluster]
            distance = (
                ledger.consensus_distances[position]
                if position < len(ledger.consensus_distances)
                else 0
            )
            record.consensus.append(
                ConsensusOutcome(
                    cluster=placement.cluster,
                    distance=distance,
                    decoded_index=ledger.parsed_indices.get(position),
                )
            )

        # RS-plane fate of the strand's column
        outcome = ledger.unit_outcomes.get(record.unit)
        if outcome is not None:
            record.unit_failed_rows = len(outcome.failed_rows)
            record.symbols_corrected = outcome.corrections_by_column.get(
                record.column, 0
            )
            erased = record.column in outcome.erased_columns
            damaged = erased or record.symbols_corrected > 0
            if outcome.failed_rows and damaged:
                record.column_fate = "uncorrectable"
            elif erased:
                record.column_fate = "erased"
            elif record.symbols_corrected > 0:
                record.column_fate = "corrected"
            else:
                record.column_fate = "clean"

        record.verdict = _verdict(record, ledger)
        records.append(record)

    units = [ledger.unit_outcomes[unit] for unit in sorted(ledger.unit_outcomes)]
    summary = _summarize(records, units)
    return ProvenanceReport(strands=records, units=units, summary=summary)


def _verdict(record: StrandProvenance, ledger: ProvenanceLedger) -> str:
    """One root-cause verdict: first faulty stage, else the RS plane."""
    fault = _journey_fault(record, ledger)
    if fault is not None:
        return fault
    # Journey clean: any residual damage happened inside the RS plane.
    if record.column_fate in ("corrected", "erased", "uncorrectable"):
        return "ecc_overload"
    return "ok"


def _journey_fault(
    record: StrandProvenance, ledger: ProvenanceLedger
) -> Optional[str]:
    if record.reads == 0 and ledger.sequencing_recorded:
        return "dropout"
    if not ledger.clustering_recorded:
        # No lineage through the middle stages (e.g. the wetlab path):
        # the RS plane is the only evidence, handled by the caller.
        return None
    dominated = [p for p in record.placements if p.kept and p.dominant]
    if not dominated:
        if any(p.kept for p in record.placements):
            return "misclustered"
        return "underclustered"
    exact = any(
        outcome.distance == 0
        and (outcome.decoded_index in (None, record.strand_id))
        for outcome in record.consensus
    )
    if not exact:
        return "consensus_error"
    return None


def _summarize(
    records: List[StrandProvenance], units: List[UnitOutcome]
) -> ProvenanceSummary:
    verdict_counts = {verdict: 0 for verdict in VERDICTS}
    for record in records:
        verdict_counts[record.verdict] += 1

    by_unit: Dict[int, List[StrandProvenance]] = {}
    for record in records:
        by_unit.setdefault(record.unit, []).append(record)

    failed_rows = 0
    failed_row_causes: Dict[str, int] = {}
    units_failed = 0
    for outcome in units:
        if not outcome.failed_rows:
            continue
        units_failed += 1
        failed_rows += len(outcome.failed_rows)
        cause = _unit_cause(by_unit.get(outcome.unit, []))
        failed_row_causes[cause] = failed_row_causes.get(cause, 0) + len(
            outcome.failed_rows
        )

    return ProvenanceSummary(
        strands=len(records),
        reads=sum(record.reads for record in records),
        verdicts=verdict_counts,
        failed_rows=failed_rows,
        failed_row_causes=failed_row_causes,
        units_failed=units_failed,
    )


def _unit_cause(records: List[StrandProvenance]) -> str:
    """Dominant journey fault among a failed unit's damaged strands."""
    faults = [r.verdict for r in records if r.verdict in JOURNEY_FAULTS]
    if not faults:
        return "ecc_overload"
    counts = Counter(faults)
    best = max(counts.values())
    for verdict in VERDICTS:  # fixed priority breaks ties deterministically
        if counts.get(verdict) == best:
            return verdict
    return "ecc_overload"  # unreachable


# ----------------------------------------------------------------------
# Rendering (`repro why`)
# ----------------------------------------------------------------------


def render_why_summary(
    report: ProvenanceReport, title: str = "decode forensics"
) -> str:
    """The root-cause summary tables behind ``repro why``."""
    summary = report.summary
    sections: List[str] = []

    total = summary.strands or 1
    rows = [
        [verdict, str(summary.verdicts.get(verdict, 0)),
         f"{summary.verdicts.get(verdict, 0) / total:.1%}"]
        for verdict in VERDICTS
    ]
    sections.append(
        format_table(
            ["verdict", "strands", "fraction"],
            rows,
            title=f"{title} - per-strand verdicts "
            f"({summary.strands} strands, {summary.reads} reads)",
        )
    )

    if summary.failed_rows:
        rows = [
            [cause, str(count), f"{count / summary.failed_rows:.1%}"]
            for cause, count in sorted(
                summary.failed_row_causes.items(),
                key=lambda item: (-item[1], VERDICTS.index(item[0])),
            )
        ]
        sections.append(
            format_table(
                ["root cause", "failed rows", "fraction"],
                rows,
                title=f"failed RS rows by root cause "
                f"({summary.failed_rows} rows in {summary.units_failed} unit(s))",
            )
        )
    else:
        sections.append("no failed RS rows: every codeword row decoded.")

    return "\n\n".join(sections)


def render_strand_timeline(
    record: StrandProvenance, unit: Optional[UnitOutcome] = None
) -> str:
    """The full lineage timeline behind ``repro why --strand``."""
    lines = [
        f"strand {record.strand_id} — verdict: {record.verdict}",
        f"  encoded    unit {record.unit}, column {record.column}",
    ]
    if record.dropout:
        lines.append("  sequenced  0 reads (dropout)")
    else:
        edits = (
            ", edits " + "/".join(str(e) for e in record.read_edits)
            if record.read_edits
            else ""
        )
        lines.append(
            f"  sequenced  {record.reads} read(s) "
            f"(ids {', '.join(str(i) for i in record.read_ids)}{edits})"
        )
    if record.placements:
        for placement in record.placements:
            status = "kept" if placement.kept else "discarded"
            role = ", dominant origin" if placement.dominant else ""
            lines.append(
                f"  clustered  {placement.reads} read(s) -> cluster "
                f"{placement.cluster} ({status}{role})"
            )
    elif not record.dropout:
        lines.append("  clustered  no cluster information recorded")
    if record.consensus:
        for outcome in record.consensus:
            parsed = (
                "unparseable"
                if outcome.decoded_index is None
                else f"index {outcome.decoded_index}"
            )
            match = "exact" if outcome.distance == 0 else f"{outcome.distance} edits"
            lines.append(
                f"  consensus  cluster {outcome.cluster}: {match} vs reference, "
                f"decoded {parsed}"
            )
    else:
        lines.append("  consensus  none built for this strand")
    fate = record.column_fate
    detail = ""
    if fate == "corrected":
        detail = f" ({record.symbols_corrected} symbol(s) repaired)"
    elif fate == "uncorrectable":
        detail = f" (unit has {record.unit_failed_rows} failed row(s))"
    elif fate == "erased" and record.unit_failed_rows == 0:
        detail = " (recovered by erasure decoding)"
    lines.append(f"  decoded    column fate: {fate}{detail}")
    if unit is not None and unit.failed_rows:
        lines.append(
            f"  unit {unit.unit}     failed rows {unit.failed_rows}, "
            f"erased columns {unit.erased_columns}"
        )
    return "\n".join(lines)
