"""The distributed clustering algorithm of Rashtchian et al. (Section VI).

Every read starts as a singleton cluster.  Each round:

1. a random *anchor* of ``anchor_length`` bases is drawn;
2. one representative read is sampled from every current cluster;
3. clusters are bucketed by the ``partition_length`` bases following the
   anchor's first occurrence in the representative (clusters whose
   representative lacks the anchor sit the round out);
4. within each bucket, representatives are compared via their precomputed
   gram signatures: distances below ``theta_low`` merge immediately,
   distances above ``theta_high`` are dismissed immediately, and only the
   gray zone in between pays for a (banded) edit-distance computation.

The signature flavour is pluggable: binary **q-gram** signatures compared
with Hamming distance (the baseline) or positional **w-gram** signatures
compared with the L1 norm (the paper's variant, which widens the gap
between unrelated reads and so trims gray-zone edit-distance calls).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.dna.alphabet import random_sequence
from repro.dna.distance import _pattern_masks, levenshtein_distance, myers_levenshtein_fixed
from repro.dna.distance_batch import myers_levenshtein_batch
from repro.dna.qgram import QGramSignature, WGramSignature, sample_grams
from repro.dna.readpool import ReadPool, as_read_pool
from repro.observability.trace import Tracer, as_tracer, worker_span
from repro.parallel import WorkerPool, as_pool
from repro.clustering.thresholds import (
    ThresholdEstimate,
    estimate_thresholds,
    sample_signature_distances,
)
from repro.clustering.unionfind import UnionFind


@dataclass
class ClusteringConfig:
    """Knobs of the clustering algorithm; defaults follow the paper's setup."""

    #: "qgram" (binary signatures, Hamming) or "wgram" (positions, L1)
    signature: str = "qgram"
    #: number of grams in every signature
    num_grams: int = 96
    #: gram length (the q in q-gram)
    gram_length: int = 4
    #: random anchor length used for partitioning
    anchor_length: int = 4
    #: number of bases after the anchor that form the bucket key
    partition_length: int = 3
    #: merging rounds
    rounds: int = 32
    #: signature distance below which clusters merge without an edit check
    theta_low: Optional[float] = None
    #: signature distance above which clusters never merge
    theta_high: Optional[float] = None
    #: edit distance at or below which gray-zone representatives merge;
    #: defaults to 33% of the median read length
    edit_threshold: Optional[int] = None
    #: after the anchored rounds, rescue straggler clusters of at most this
    #: size by comparing them against every cluster (0 disables the sweep)
    sweep_max_size: int = 5
    #: edit-checked merge candidates per straggler during the final sweep
    sweep_candidates: int = 3
    #: worker processes for signature precomputation and gray-zone edit
    #: verdicts (1 = in-process); ignored when the caller supplies its own
    #: :class:`~repro.parallel.WorkerPool`
    workers: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.signature not in ("qgram", "wgram"):
            raise ValueError(
                f"signature must be 'qgram' or 'wgram', got {self.signature!r}"
            )
        if self.rounds <= 0:
            raise ValueError("rounds must be positive")
        if self.num_grams <= 0 or self.gram_length <= 0:
            raise ValueError("num_grams and gram_length must be positive")
        if (self.theta_low is None) != (self.theta_high is None):
            raise ValueError("set both thresholds or neither (auto mode)")
        if self.theta_low is not None and self.theta_low > self.theta_high:
            raise ValueError("theta_low must not exceed theta_high")


@dataclass
class ClusteringResult:
    """Clusters (as read-index lists) plus run statistics."""

    clusters: List[List[int]]
    theta_low: float
    theta_high: float
    signature_seconds: float
    clustering_seconds: float
    signature_comparisons: int = 0
    edit_comparisons: int = 0
    merges: int = 0
    threshold_estimate: Optional[ThresholdEstimate] = None

    @property
    def total_seconds(self) -> float:
        return self.signature_seconds + self.clustering_seconds


def _compute_signatures_chunk(reads, extra):
    """Worker entry point for parallel signature precomputation."""
    flavour, grams = extra
    with worker_span("clustering.signature_chunk", reads=len(reads)):
        scheme = (
            QGramSignature(grams) if flavour == "qgram" else WGramSignature(grams)
        )
        return scheme.compute_batch(reads)


#: below this many texts sharing a representative, the masks-reuse scalar
#: kernel beats the lane setup cost of the batched one
_BATCH_MIN_LANES = 64


def _verdict_block(pattern: str, texts, threshold: int) -> List[bool]:
    """Gray-zone verdicts of one representative against many candidates.

    Wide blocks sweep all candidates through the uint64-lane batch kernel;
    narrow ones run the scalar kernel with the pattern masks built once for
    the whole block.  Either way each verdict equals
    ``levenshtein_distance(pattern, text, bound=threshold) <= threshold``.
    """
    if len(texts) >= _BATCH_MIN_LANES:
        distances = myers_levenshtein_batch(pattern, texts, bound=threshold)
        return [bool(distance <= threshold) for distance in distances]
    masks = _pattern_masks(pattern)
    return [
        myers_levenshtein_fixed(pattern, text, bound=threshold, masks=masks)
        <= threshold
        for text in texts
    ]


def _grouped_verdicts(pairs, lookup, threshold: int) -> List[bool]:
    """Evaluate (left, right) pairs grouped by their left representative."""
    groups: dict = {}
    for position, (left, right) in enumerate(pairs):
        groups.setdefault(left, []).append((position, right))
    verdicts = [False] * len(pairs)
    for left, entries in groups.items():
        block = _verdict_block(
            lookup(left), [lookup(right) for _, right in entries], threshold
        )
        for (position, _), verdict in zip(entries, block):
            verdicts[position] = verdict
    return verdicts


def _edit_verdicts_chunk(pairs, threshold):
    """Worker entry point for parallel gray-zone edit-distance checks."""
    with worker_span("clustering.edit_verdicts_chunk", pairs=len(pairs)):
        return _grouped_verdicts(pairs, lambda read: read, threshold)


def _edit_verdict_indices_chunk(pairs, extra):
    """Index-pair variant: reads live in a shipped columnar sub-pool."""
    subpool, threshold = extra
    with worker_span("clustering.edit_verdicts_chunk", pairs=len(pairs)):
        groups: dict = {}
        for position, (left, right) in enumerate(pairs):
            groups.setdefault(left, []).append((position, right))
        verdicts = [False] * len(pairs)
        for left, entries in groups.items():
            texts = subpool.view([right for _, right in entries])
            block = _verdict_block(subpool[left], texts, threshold)
            for (position, _), verdict in zip(entries, block):
                verdicts[position] = verdict
        return verdicts


class RashtchianClusterer:
    """Multi-round signature-gated merge clustering."""

    def __init__(self, config: Optional[ClusteringConfig] = None):
        self.config = config or ClusteringConfig()

    def cluster(
        self,
        reads: Sequence[str],
        tracer: Optional[Tracer] = None,
        pool: Optional[WorkerPool] = None,
    ) -> ClusteringResult:
        """Cluster *reads*; returns read-index clusters and statistics.

        When a :class:`~repro.observability.Tracer` is supplied the run
        emits ``clustering.signatures`` / ``clustering.thresholds`` /
        ``clustering.rounds`` / ``clustering.sweep`` spans and flushes
        the comparison/merge counts into its metrics registry.  Signature
        precomputation and gray-zone edit verdicts fan out over *pool*
        (or a pool built from ``config.workers`` when none is supplied);
        results are identical at any worker count.
        """
        if not reads:
            raise ValueError("cannot cluster an empty read set")
        config = self.config
        owns_pool = pool is None
        pool = as_pool(pool, config.workers)
        try:
            return self._cluster(reads, tracer, pool)
        finally:
            if owns_pool:
                pool.close()

    def _cluster(
        self, reads: Sequence[str], tracer: Optional[Tracer], pool: WorkerPool
    ) -> ClusteringResult:
        config = self.config
        tracer = as_tracer(tracer)
        rng = random.Random(config.seed)
        # Columnar plane: reads normalise to a ReadPool (zero-copy when the
        # caller already built one), so signatures batch over the flat code
        # array and gray-zone verdicts ship compact index pairs.  Reads
        # outside latin-1 stay on the string path with identical results.
        read_pool = reads if isinstance(reads, ReadPool) else as_read_pool(reads)
        texts = read_pool.to_strings() if read_pool is not None else reads
        grams = sample_grams(config.num_grams, config.gram_length, rng)
        if config.signature == "qgram":
            scheme = QGramSignature(grams)
            distance: Callable = QGramSignature.distance
        else:
            scheme = WGramSignature(grams)
            distance = WGramSignature.distance

        with tracer.span(
            "clustering.signatures", reads=len(reads), flavour=config.signature
        ) as signature_span:
            signatures = self._compute_signatures(
                read_pool if read_pool is not None else reads, grams, pool
            )
            signature_span.set("shards", pool.last_shards)

        with tracer.span("clustering.merge") as merge_span:
            with tracer.span("clustering.thresholds") as span:
                estimate: Optional[ThresholdEstimate] = None
                if config.theta_low is None:
                    try:
                        sampled = sample_signature_distances(
                            signatures, distance, rng=rng
                        )
                        estimate = estimate_thresholds(sampled)
                        theta_low, theta_high = (
                            estimate.theta_low,
                            estimate.theta_high,
                        )
                    except ValueError:
                        # Too few reads to estimate the inter-cluster mode:
                        # route every in-bucket pair through the
                        # edit-distance check, which is affordable at
                        # exactly these small scales.
                        theta_low, theta_high = 0.0, float("inf")
                else:
                    theta_low, theta_high = config.theta_low, config.theta_high
                span.set("theta_low", theta_low)
                span.set("theta_high", theta_high)

            lengths = sorted(len(read) for read in texts)
            edit_threshold = config.edit_threshold
            if edit_threshold is None:
                edit_threshold = max(4, int(0.33 * lengths[len(lengths) // 2]))

            result = ClusteringResult(
                clusters=[],
                theta_low=theta_low,
                theta_high=theta_high,
                signature_seconds=signature_span.duration,
                clustering_seconds=0.0,
                threshold_estimate=estimate,
            )

            union = UnionFind(len(reads))
            members: List[List[int]] = [[index] for index in range(len(reads))]
            # Gray-zone verdicts are deterministic per read pair; memoise
            # them so representatives re-drawn across rounds never pay twice.
            edit_memo: dict = {}
            with tracer.span("clustering.rounds", rounds=config.rounds) as span:
                for _ in range(config.rounds):
                    self._run_round(
                        texts,
                        read_pool,
                        signatures,
                        distance,
                        union,
                        members,
                        theta_low,
                        theta_high,
                        edit_threshold,
                        rng,
                        result,
                        edit_memo,
                        pool,
                    )
                span.set("merges", result.merges)
            with tracer.span("clustering.sweep") as span:
                merges_before_sweep = result.merges
                for _ in range(3):
                    if config.sweep_max_size <= 0:
                        break
                    merges_before = result.merges
                    self._final_sweep(
                        texts,
                        signatures,
                        distance,
                        union,
                        members,
                        theta_low,
                        edit_threshold,
                        rng,
                        result,
                        edit_memo,
                    )
                    if result.merges == merges_before:
                        break
                span.set("merges", result.merges - merges_before_sweep)
            result.clusters = [
                sorted(members[root])
                for root in range(len(reads))
                if union.find(root) == root
            ]
        result.clustering_seconds = merge_span.duration

        metrics = tracer.metrics
        metrics.counter("signature_comparisons").inc(result.signature_comparisons)
        metrics.counter("edit_comparisons").inc(result.edit_comparisons)
        metrics.counter("cluster_merges").inc(result.merges)
        return result

    def _final_sweep(
        self,
        reads: Sequence[str],
        signatures: List[np.ndarray],
        distance: Callable,
        union: UnionFind,
        members: List[List[int]],
        theta_low: float,
        edit_threshold: int,
        rng: random.Random,
        result: ClusteringResult,
        edit_memo: dict,
    ) -> None:
        """Rescue straggler clusters the anchored rounds left behind.

        Small clusters are compared against a representative of *every*
        cluster (no anchor gate), and their few nearest signature
        neighbours are edit-checked regardless of ``theta_high`` — at high
        error rates true siblings routinely land above it, and the bounded
        edit check is the reliable arbiter.  This trades a vectorised
        signature scan — cheap — for the many extra anchored rounds the
        long tail of unlucky clusters would otherwise need.
        """
        config = self.config
        roots = [r for r in range(len(reads)) if union.find(r) == r]
        if len(roots) < 2:
            return
        reps = {root: rng.choice(members[root]) for root in roots}
        matrix = np.stack([signatures[reps[root]] for root in roots]).astype(np.int64)
        root_positions = {root: position for position, root in enumerate(roots)}

        for root in roots:
            if union.find(root) != root:
                continue  # merged earlier in this sweep
            if len(members[root]) > config.sweep_max_size:
                continue
            rep = reps[root]
            distances = np.abs(matrix - signatures[rep].astype(np.int64)).sum(axis=1)
            distances[root_positions[root]] = np.iinfo(np.int64).max
            result.signature_comparisons += len(roots) - 1
            nearest = np.argsort(distances, kind="stable")[: config.sweep_candidates]
            for position in nearest:
                other_root = union.find(roots[position])
                if other_root == union.find(root):
                    continue
                other_rep = reps[roots[position]]
                if distances[position] > theta_low:
                    pair = (rep, other_rep) if rep < other_rep else (other_rep, rep)
                    verdict = edit_memo.get(pair)
                    if verdict is None:
                        result.edit_comparisons += 1
                        edit = levenshtein_distance(
                            reads[rep], reads[other_rep], bound=edit_threshold
                        )
                        verdict = edit <= edit_threshold
                        edit_memo[pair] = verdict
                    if not verdict:
                        continue
                self._merge(union, members, union.find(root), other_root)
                result.merges += 1
                break

    # ------------------------------------------------------------------

    def _compute_signatures(
        self, reads: Sequence[str], grams: List[str], pool: WorkerPool
    ) -> List[np.ndarray]:
        if not isinstance(reads, (list, tuple, ReadPool)):
            reads = list(reads)  # sliceable for the pool's chunking
        return pool.map_chunks(
            _compute_signatures_chunk, reads, (self.config.signature, grams)
        )

    def _run_round(
        self,
        reads: Sequence[str],
        read_pool: Optional[ReadPool],
        signatures: List[np.ndarray],
        distance: Callable,
        union: UnionFind,
        members: List[List[int]],
        theta_low: float,
        theta_high: float,
        edit_threshold: int,
        rng: random.Random,
        result: ClusteringResult,
        edit_memo: dict,
        pool: WorkerPool,
    ) -> None:
        config = self.config
        anchor = random_sequence(config.anchor_length, rng)
        key_length = config.partition_length

        buckets: dict = {}
        for root in range(len(reads)):
            if union.find(root) != root:
                continue
            representative = rng.choice(members[root])
            read = reads[representative]
            position = read.find(anchor)
            if position < 0:
                continue
            key_start = position + len(anchor)
            key = read[key_start : key_start + key_length]
            if len(key) < key_length:
                continue
            buckets.setdefault(key, []).append((root, representative))

        # Phase 1: signature screening.  Pairs below theta_low merge
        # outright; gray-zone pairs are queued for edit-distance checks.
        immediate: List[tuple] = []
        gray: List[tuple] = []
        for bucket in buckets.values():
            if len(bucket) < 2:
                continue
            for i in range(len(bucket)):
                root_i, rep_i = bucket[i]
                for j in range(i + 1, len(bucket)):
                    root_j, rep_j = bucket[j]
                    if union.connected(root_i, root_j):
                        continue
                    result.signature_comparisons += 1
                    sig_distance = distance(signatures[rep_i], signatures[rep_j])
                    if sig_distance > theta_high:
                        continue
                    if sig_distance <= theta_low:
                        immediate.append((root_i, root_j))
                        self._merge(union, members, root_i, root_j)
                        result.merges += 1
                    else:
                        gray.append((root_i, root_j, rep_i, rep_j))

        # Phase 2: edit-distance arbitration of the gray zone, optionally
        # fanned out over worker processes (the paper's distributed mode:
        # edit distance dominates clustering cost at realistic error rates).
        verdicts = self._gray_zone_verdicts(
            reads, read_pool, gray, edit_threshold, result, edit_memo, pool
        )
        for (root_i, root_j, _, _), verdict in zip(gray, verdicts):
            if not verdict or union.connected(root_i, root_j):
                continue
            self._merge(union, members, root_i, root_j)
            result.merges += 1

    def _gray_zone_verdicts(
        self,
        reads: Sequence[str],
        read_pool: Optional[ReadPool],
        gray: List[tuple],
        edit_threshold: int,
        result: ClusteringResult,
        edit_memo: dict,
        pool: WorkerPool,
    ) -> List[bool]:
        """Evaluate queued gray-zone pairs, using workers when configured."""
        verdicts: List[Optional[bool]] = []
        unresolved: List[Tuple[int, int, int]] = []  # (gray idx, rep_i, rep_j)
        for index, (_, _, rep_i, rep_j) in enumerate(gray):
            pair = (rep_i, rep_j) if rep_i < rep_j else (rep_j, rep_i)
            cached = edit_memo.get(pair)
            verdicts.append(cached)
            if cached is None:
                unresolved.append((index, pair[0], pair[1]))

        result.edit_comparisons += len(unresolved)
        if not unresolved:
            return [bool(v) for v in verdicts]

        if read_pool is not None:
            # Columnar mode: ship one compact sub-pool of the involved
            # representatives plus int index pairs instead of string pairs.
            unique = sorted({rep for _, a, b in unresolved for rep in (a, b)})
            remap = {read_index: position for position, read_index in enumerate(unique)}
            subpool = read_pool.subset(unique)
            index_pairs = [(remap[a], remap[b]) for _, a, b in unresolved]
            resolved = pool.map_chunks(
                _edit_verdict_indices_chunk, index_pairs, (subpool, edit_threshold)
            )
        else:
            pairs = [(reads[a], reads[b]) for _, a, b in unresolved]
            resolved = pool.map_chunks(_edit_verdicts_chunk, pairs, edit_threshold)

        for (index, a, b), verdict in zip(unresolved, resolved):
            edit_memo[(a, b)] = verdict
            verdicts[index] = verdict
        return [bool(v) for v in verdicts]

    @staticmethod
    def _merge(
        union: UnionFind, members: List[List[int]], left: int, right: int
    ) -> None:
        # left/right may be stale (already merged into another root this
        # round); resolve to the live roots before moving member lists.
        root_left, root_right = union.find(left), union.find(right)
        if root_left == root_right:
            return
        union.union(root_left, root_right)
        winner = union.find(root_left)
        loser = root_left if winner == root_right else root_right
        members[winner].extend(members[loser])
        members[loser] = []
