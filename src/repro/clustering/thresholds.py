"""Automatic threshold configuration for clustering (Section VI-B, Figure 5).

The clusterer compares gram signatures against two thresholds: below
``theta_low`` clusters merge immediately, above ``theta_high`` they are
immediately kept apart, and only the gray zone in between pays for an edit
distance computation.  Prior work tuned the thresholds by hand; the toolkit
estimates them from the data.

A handful of probe reads is compared against a larger random sample.  The
resulting signature-distance histogram is bimodal (Figure 5): a small mode
of intra-cluster distances (probe and sample read come from the same
strand) under a dominant mode of inter-cluster distances.  Because the
inter mode holds almost all the mass, its location and spread are estimated
robustly (median and MAD); ``theta_high`` is placed a few sigmas below it,
and ``theta_low`` at the upper edge of whatever population survives below
``theta_high``.

The asymmetry is deliberate: a merge below ``theta_low`` is irreversible,
so ``theta_low`` must be nearly false-positive-free, while a distance above
``theta_high`` merely skips an edit-distance check this round — later
rounds with different anchors get another chance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

_MAD_TO_SIGMA = 1.4826


@dataclass
class ThresholdEstimate:
    """The chosen thresholds plus the evidence they were derived from."""

    theta_low: float
    theta_high: float
    #: all sampled signature distances (the Figure 5 histogram's data)
    distances: List[float] = field(default_factory=list)
    #: robust center and spread of the inter-cluster mode
    inter_center: float = 0.0
    inter_sigma: float = 0.0
    #: number of sampled distances that fell below ``theta_high``
    low_population: int = 0

    def histogram(self, bins: int = 40):
        """Counts and edges of the sampled-distance histogram (Figure 5)."""
        return np.histogram(np.asarray(self.distances), bins=bins)


def estimate_thresholds(
    distances: Sequence[float],
    low_sigmas: float = 4.5,
    high_sigmas: float = 1.0,
) -> ThresholdEstimate:
    """Place ``(theta_low, theta_high)`` from sampled signature distances.

    Parameters
    ----------
    distances:
        Probe-vs-sample signature distances; overwhelmingly inter-cluster.
    low_sigmas:
        ``theta_low`` sits this many (MAD-estimated) sigmas below the inter
        mode's center.  It must be nearly false-positive-free, because a
        sub-``theta_low`` merge skips the edit-distance check entirely.
    high_sigmas:
        ``theta_high`` sits this many sigmas below the center.  Pairs in the
        gray zone pay an edit-distance check, so this edge trades edit-call
        volume against recall; one sigma keeps ~85% of unrelated bucket
        pairs out of the gray zone while admitting essentially all related
        pairs at the error rates of interest.
    """
    if low_sigmas < high_sigmas:
        raise ValueError("low_sigmas must be >= high_sigmas")
    values = np.asarray(list(distances), dtype=np.float64)
    if values.size < 10:
        raise ValueError(f"need at least 10 sampled distances, got {values.size}")

    center = float(np.median(values))
    sigma = _MAD_TO_SIGMA * float(np.median(np.abs(values - center)))
    if sigma == 0.0:
        # Degenerate sample (e.g. all-identical reads); fall back to a band
        # strictly below the single observed distance value.
        sigma = max(1.0, 0.05 * center)

    theta_high = max(1.0, center - high_sigmas * sigma)
    theta_low = max(0.0, min(center - low_sigmas * sigma, theta_high))
    low_values = values[values <= theta_high]
    return ThresholdEstimate(
        theta_low=theta_low,
        theta_high=theta_high,
        distances=values.tolist(),
        inter_center=center,
        inter_sigma=sigma,
        low_population=int(low_values.size),
    )


def sample_signature_distances(
    signatures: Sequence[np.ndarray],
    distance,
    probes: int = 24,
    sample_size: int = 600,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Sample probe-vs-sample signature distances (the Figure 5 procedure).

    Parameters
    ----------
    signatures:
        Precomputed signatures of all reads.
    distance:
        Callable ``(sig_a, sig_b) -> float``.
    probes / sample_size:
        A handful of probe reads is compared against a larger random sample
        of the remaining reads.
    """
    rng = rng or random.Random()
    count = len(signatures)
    if count < 2:
        raise ValueError("need at least two signatures to sample distances")
    # Keep at least one non-probe read so the sample is never empty.
    probe_indices = rng.sample(range(count), min(probes, count - 1))
    probe_set = set(probe_indices)
    candidates = [index for index in range(count) if index not in probe_set]
    sample = rng.sample(candidates, min(sample_size, len(candidates)))
    return [
        float(distance(signatures[probe], signatures[other]))
        for probe in probe_indices
        for other in sample
    ]
