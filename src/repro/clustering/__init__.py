"""Clustering of noisy reads (Section VI).

Implements the distributed clustering algorithm of Rashtchian et al.
(NeurIPS 2017): reads start as singleton clusters and are merged over
several rounds.  Each round buckets clusters by the bases following a random
*anchor*, compares bucket-mates via cheap gram signatures, and falls back to
an (expensive) edit-distance check only when the signature distance is
between two thresholds.  Both the baseline **q-gram** signatures and the
paper's novel **w-gram** positional signatures are supported, as is the
automatic threshold configuration of Section VI-B (Figure 5).
"""

from repro.clustering.unionfind import UnionFind
from repro.clustering.rashtchian import (
    ClusteringConfig,
    ClusteringResult,
    RashtchianClusterer,
)
from repro.clustering.thresholds import ThresholdEstimate, estimate_thresholds
from repro.clustering.tree import TreeClusterer, TreeClusteringConfig
from repro.clustering.metrics import (
    cluster_quality,
    clustering_accuracy,
    cluster_purity,
    confusion_counts,
)

__all__ = [
    "UnionFind",
    "ClusteringConfig",
    "ClusteringResult",
    "RashtchianClusterer",
    "ThresholdEstimate",
    "estimate_thresholds",
    "TreeClusterer",
    "TreeClusteringConfig",
    "clustering_accuracy",
    "cluster_purity",
    "cluster_quality",
    "confusion_counts",
]
