"""Clustering quality metrics.

The headline metric follows Rashtchian et al.: a true cluster is *recovered*
when some output cluster contains at least a ``gamma`` fraction of its reads
and nothing else.  Accuracy is the fraction of true clusters recovered —
this is the "clustering accuracy" column of Table II in the paper.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.observability.quality import ClusteringQuality


def _as_label_map(clusters: Sequence[Sequence[int]]) -> Dict[int, int]:
    labels: Dict[int, int] = {}
    for label, members in enumerate(clusters):
        for member in members:
            if member in labels:
                raise ValueError(f"read {member} appears in two clusters")
            labels[member] = label
    return labels


def clustering_accuracy(
    predicted: Sequence[Sequence[int]],
    truth: Sequence[Sequence[int]],
    gamma: float = 1.0,
) -> float:
    """Fraction of true clusters recovered (Rashtchian's :math:`A_\\gamma`).

    Parameters
    ----------
    predicted, truth:
        Clusterings as lists of read-index lists.
    gamma:
        Minimum fraction of a true cluster an output cluster must contain;
        the output cluster must additionally contain no foreign reads.
    """
    if not 0.0 < gamma <= 1.0:
        raise ValueError(f"gamma must be in (0, 1], got {gamma}")
    if not truth:
        raise ValueError("truth clustering must be non-empty")
    predicted_labels = _as_label_map(predicted)
    predicted_sizes = Counter(predicted_labels.values())

    recovered = 0
    for true_members in truth:
        if not true_members:
            continue
        votes = Counter(
            predicted_labels[member]
            for member in true_members
            if member in predicted_labels
        )
        if not votes:
            continue
        best_label, overlap = votes.most_common(1)[0]
        contains_enough = overlap >= gamma * len(true_members)
        is_pure = predicted_sizes[best_label] == overlap
        if contains_enough and is_pure:
            recovered += 1
    return recovered / len(truth)


def cluster_purity(
    predicted: Sequence[Sequence[int]], truth: Sequence[Sequence[int]]
) -> float:
    """Weighted purity: reads in their cluster's dominant true class."""
    truth_labels = _as_label_map(truth)
    total = 0
    pure = 0
    for members in predicted:
        if not members:
            continue
        votes = Counter(truth_labels.get(member, -1) for member in members)
        pure += votes.most_common(1)[0][1]
        total += len(members)
    return pure / total if total else 0.0


def cluster_quality(
    predicted: Sequence[Sequence[int]], truth: Sequence[Sequence[int]]
) -> ClusteringQuality:
    """Summarise a clustering against ground truth for the quality report.

    Alongside :func:`cluster_purity` this counts the two failure shapes
    the accuracy metric conflates:

    * **fragmentation / under-merge** — a true cluster's reads scattered
      over several output clusters (``fragmentation`` counts the excess
      pieces, ``under_merged`` the affected true clusters);
    * **over-merge** — one output cluster mixing reads from several true
      clusters (the failure purity penalises).

    Linear in the number of reads, so safe to run on every pipeline pass.
    """
    truth_labels = _as_label_map(truth)
    predicted_labels = _as_label_map(predicted)

    fragmentation = 0
    under_merged = 0
    for members in truth:
        if not members:
            continue
        homes = {
            predicted_labels[member]
            for member in members
            if member in predicted_labels
        }
        if len(homes) > 1:
            under_merged += 1
            fragmentation += len(homes) - 1

    over_merged = 0
    for members in predicted:
        sources = {
            truth_labels[member] for member in members if member in truth_labels
        }
        if len(sources) > 1:
            over_merged += 1

    return ClusteringQuality(
        clusters=sum(1 for members in predicted if members),
        true_clusters=sum(1 for members in truth if members),
        purity=cluster_purity(predicted, truth),
        fragmentation=fragmentation,
        under_merged=under_merged,
        over_merged=over_merged,
    )


def confusion_counts(
    predicted: Sequence[Sequence[int]], truth: Sequence[Sequence[int]]
) -> Tuple[int, int, int, int]:
    """Pairwise (TP, FP, FN, TN) counts over all read pairs.

    Quadratic in the number of reads within clusters; intended for test-
    and benchmark-scale inputs.
    """
    predicted_labels = _as_label_map(predicted)
    truth_labels = _as_label_map(truth)
    reads: List[int] = sorted(truth_labels)
    tp = fp = fn = tn = 0
    for i_pos, i in enumerate(reads):
        for j in reads[i_pos + 1 :]:
            same_pred = predicted_labels.get(i) == predicted_labels.get(j) and i in predicted_labels and j in predicted_labels
            same_true = truth_labels[i] == truth_labels[j]
            if same_pred and same_true:
                tp += 1
            elif same_pred:
                fp += 1
            elif same_true:
                fn += 1
            else:
                tn += 1
    return tp, fp, fn, tn
