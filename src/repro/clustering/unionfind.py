"""Disjoint-set forest with union by size and path compression."""

from __future__ import annotations

from typing import Dict, List


class UnionFind:
    """Tracks the merging of ``n`` initially-singleton clusters."""

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self._parent = list(range(size))
        self._size = [1] * size
        self._components = size

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def components(self) -> int:
        """Number of distinct clusters."""
        return self._components

    def find(self, item: int) -> int:
        """Return the canonical representative of *item*'s cluster."""
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, left: int, right: int) -> bool:
        """Merge two clusters; return ``True`` if they were distinct."""
        root_left, root_right = self.find(left), self.find(right)
        if root_left == root_right:
            return False
        if self._size[root_left] < self._size[root_right]:
            root_left, root_right = root_right, root_left
        self._parent[root_right] = root_left
        self._size[root_left] += self._size[root_right]
        self._components -= 1
        return True

    def connected(self, left: int, right: int) -> bool:
        """Whether two items share a cluster."""
        return self.find(left) == self.find(right)

    def groups(self) -> List[List[int]]:
        """Materialise the clusters as lists of member indices."""
        by_root: Dict[int, List[int]] = {}
        for item in range(len(self._parent)):
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())
