"""Clover-style prefix-tree clustering (related work, Section X).

Clover (Qu et al., 2022) clusters DNA reads with a multi-tree index over
read prefixes instead of Levenshtein comparisons, trading a little accuracy
for dramatically lower memory and compute.  This module implements the same
idea in the toolkit's pluggable-clusterer shape so users can compare it
against the Rashtchian algorithm:

* every cluster keeps one representative read;
* a read joins a cluster when, at some probe offset, its ``probe_length``-
  base window exactly matches the representative's window at a nearby
  offset (the offset wobble absorbs indels);
* otherwise the read founds a new cluster.

There is no edit-distance computation anywhere, which is exactly Clover's
selling point.  Accuracy is below the signature-gated merge clustering at
high error rates — the trade-off the related-work section describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.clustering.rashtchian import ClusteringResult
from repro.observability.trace import Tracer, as_tracer


@dataclass
class TreeClusteringConfig:
    """Knobs of the prefix-tree clusterer."""

    #: window length that must match exactly for a read to join a cluster
    probe_length: int = 12
    #: offsets (from the read start) at which windows are probed
    probe_offsets: Tuple[int, ...] = (0, 16, 32, 48)
    #: maximum indel drift tolerated between read and representative offsets
    wobble: int = 2

    def __post_init__(self) -> None:
        if self.probe_length <= 0:
            raise ValueError("probe_length must be positive")
        if not self.probe_offsets:
            raise ValueError("probe_offsets must not be empty")
        if self.wobble < 0:
            raise ValueError("wobble must be non-negative")


class TreeClusterer:
    """Single-pass, comparison-free clustering over window hash tables.

    For each probe offset a dictionary maps window strings to cluster ids;
    a read is looked up under every (offset, drift) combination and joins
    the first cluster whose window it hits.  Insertion registers the read's
    own windows, so later reads can join through any member, not just the
    founder (transitive growth, like Clover's tree descent).
    """

    def __init__(self, config: Optional[TreeClusteringConfig] = None):
        self.config = config or TreeClusteringConfig()

    def cluster(
        self, reads: Sequence[str], tracer: Optional[Tracer] = None
    ) -> ClusteringResult:
        """Cluster *reads*; returns the toolkit-standard result object."""
        if not reads:
            raise ValueError("cannot cluster an empty read set")
        config = self.config
        tracer = as_tracer(tracer)
        with tracer.span("clustering.tree", reads=len(reads)) as span:
            tables: List[Dict[str, int]] = [dict() for _ in config.probe_offsets]
            clusters: List[List[int]] = []
            lookups = 0

            for read_index, read in enumerate(reads):
                assigned = self._lookup(read, tables)
                lookups += 1
                if assigned is None:
                    assigned = len(clusters)
                    clusters.append([])
                clusters[assigned].append(read_index)
                self._register(read, assigned, tables)
            span.set("clusters", len(clusters))

        tracer.metrics.counter("signature_comparisons").inc(lookups)
        return ClusteringResult(
            clusters=[sorted(members) for members in clusters],
            theta_low=0.0,
            theta_high=0.0,
            signature_seconds=0.0,
            clustering_seconds=span.duration,
            signature_comparisons=lookups,
            edit_comparisons=0,
            merges=sum(len(members) - 1 for members in clusters),
        )

    # ------------------------------------------------------------------

    def _windows(self, read: str):
        config = self.config
        for table_index, offset in enumerate(config.probe_offsets):
            for drift in range(-config.wobble, config.wobble + 1):
                position = offset + drift
                if position < 0 or position + config.probe_length > len(read):
                    continue
                yield table_index, read[position : position + config.probe_length]

    def _lookup(self, read: str, tables: List[Dict[str, int]]) -> Optional[int]:
        votes: Dict[int, int] = {}
        for table_index, window in self._windows(read):
            cluster = tables[table_index].get(window)
            if cluster is not None:
                votes[cluster] = votes.get(cluster, 0) + 1
        if not votes:
            return None
        # Require agreement from at least two distinct probes when more
        # than one probe was available; a single 12-mer collision between
        # unrelated reads is rare but not negligible at scale.
        best_cluster, best_votes = max(votes.items(), key=lambda item: item[1])
        if best_votes >= 2 or len(self.config.probe_offsets) == 1:
            return best_cluster
        return best_cluster if len(votes) == 1 else None

    def _register(self, read: str, cluster: int, tables: List[Dict[str, int]]) -> None:
        for table_index, window in self._windows(read):
            tables[table_index].setdefault(window, cluster)
