"""Evaluation metrics and report formatting for the pipeline experiments."""

from repro.analysis.error_profile import (
    ErrorProfile,
    per_index_error_profile,
    perfect_reconstructions,
)
from repro.analysis.simfidelity import FidelityMetrics, fidelity_metrics
from repro.analysis.density import DensityReport, density_report
from repro.analysis.poolstats import PoolStatistics, pool_statistics
from repro.analysis.reliability import pilot_row_reliability, profile_to_row_reliability
from repro.analysis.reporting import format_series, format_table

__all__ = [
    "ErrorProfile",
    "per_index_error_profile",
    "perfect_reconstructions",
    "FidelityMetrics",
    "fidelity_metrics",
    "DensityReport",
    "density_report",
    "PoolStatistics",
    "pool_statistics",
    "pilot_row_reliability",
    "profile_to_row_reliability",
    "format_series",
    "format_table",
]
