"""Plain-text tables and series for benchmark output.

The benchmark harness regenerates the paper's tables and figures as text:
tables print aligned columns, figures print their data series (index,
value) so the shape — who wins, where the peaks sit — is inspectable
without a plotting dependency.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Render rows as an aligned monospace table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(
            len(str(headers[c])),
            max((len(str(row[c])) for row in rows), default=0),
        )
        for c in range(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    divider = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(divider)
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    values: Sequence[float],
    stride: int = 1,
    precision: int = 4,
) -> str:
    """Render a numeric series as ``name[index] = value`` lines.

    ``stride`` subsamples long series so figure output stays readable.
    """
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    lines = [
        f"{name}[{index}] = {values[index]:.{precision}f}"
        for index in range(0, len(values), stride)
    ]
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 80) -> str:
    """A coarse unicode sparkline: the figure's shape at a glance."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    if len(values) > width:
        step = len(values) / width
        sampled = [values[int(i * step)] for i in range(width)]
    else:
        sampled = list(values)
    return "".join(
        glyphs[min(len(glyphs) - 1, int((v - lo) / span * (len(glyphs) - 1)))]
        for v in sampled
    )
