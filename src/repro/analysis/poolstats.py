"""Synthesis-readiness statistics for an encoded pool.

Before sending strands to a synthesis service, practitioners screen them
for the properties that depress synthesis yield: extreme GC content, long
homopolymer runs, and accidental similarity to the PCR primers of *other*
files stored in the same pool (which would make PCR selection leak between
files).  Unconstrained coding relies on whitening to keep these
statistics healthy, and this module is how that claim is audited.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.codec.primers import PrimerPair
from repro.dna.distance import hamming_distance
from repro.dna.sequence import gc_content, max_homopolymer


@dataclass
class PoolStatistics:
    """Aggregate screen results for one pool of strands."""

    strands: int
    gc_mean: float
    gc_min: float
    gc_max: float
    #: strands with GC outside the acceptable window
    gc_violations: int
    homopolymer_max: int
    #: strands whose longest run exceeds the acceptable cap
    homopolymer_violations: int
    #: histogram of longest-run lengths: run length -> strand count
    homopolymer_histogram: Dict[int, int] = field(default_factory=dict)
    #: strands containing a window too close to a foreign primer
    primer_collisions: int = 0

    @property
    def clean(self) -> bool:
        """Whether the pool passes every screen."""
        return (
            self.gc_violations == 0
            and self.homopolymer_violations == 0
            and self.primer_collisions == 0
        )


def pool_statistics(
    strands: Sequence[str],
    gc_bounds=(0.3, 0.7),
    max_run: int = 6,
    foreign_primers: Optional[Sequence[PrimerPair]] = None,
    primer_min_distance: int = 6,
) -> PoolStatistics:
    """Screen *strands* for synthesis- and PCR-safety.

    Parameters
    ----------
    gc_bounds / max_run:
        The acceptable GC window and homopolymer cap (synthesis screens).
    foreign_primers:
        Primer pairs of *other* files in the same tube; a strand colliding
        with one (some window within ``primer_min_distance`` Hamming
        distance of the primer) could be amplified by the wrong PCR.
    """
    if not strands:
        raise ValueError("pool_statistics requires at least one strand")
    gc_values: List[float] = []
    run_lengths: List[int] = []
    gc_violations = 0
    run_violations = 0
    histogram: Dict[int, int] = {}
    for strand in strands:
        gc = gc_content(strand)
        gc_values.append(gc)
        if not gc_bounds[0] <= gc <= gc_bounds[1]:
            gc_violations += 1
        run = max_homopolymer(strand)
        run_lengths.append(run)
        histogram[run] = histogram.get(run, 0) + 1
        if run > max_run:
            run_violations += 1

    collisions = 0
    if foreign_primers:
        sites: List[str] = []
        for pair in foreign_primers:
            sites.extend((pair.forward, pair.reverse))
        for strand in strands:
            if _collides(strand, sites, primer_min_distance):
                collisions += 1

    gc_array = np.asarray(gc_values)
    return PoolStatistics(
        strands=len(strands),
        gc_mean=float(gc_array.mean()),
        gc_min=float(gc_array.min()),
        gc_max=float(gc_array.max()),
        gc_violations=gc_violations,
        homopolymer_max=max(run_lengths),
        homopolymer_violations=run_violations,
        homopolymer_histogram=dict(sorted(histogram.items())),
        primer_collisions=collisions,
    )


def _collides(strand: str, sites: Sequence[str], min_distance: int) -> bool:
    for site in sites:
        width = len(site)
        if len(strand) < width:
            continue
        for start in range(len(strand) - width + 1):
            window = strand[start : start + width]
            if hamming_distance(window, site) < min_distance:
                return True
    return False
