"""Information-density accounting.

DNA storage papers compare codecs by *net information density*: payload
bits actually stored per synthesized nucleotide, after paying for the
index, the PCR primers, the Reed-Solomon parity molecules, and (for
constrained codes) the sub-2-bit mapping itself.  Section II-D of the
paper argues unconstrained coding + ECC wins this accounting; this module
makes the numbers inspectable for any configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codec.encoder import EncodingParameters

#: Density of the unconstrained 2-bit mapping, bits per nucleotide.
UNCONSTRAINED_BITS_PER_NT = 2.0


@dataclass(frozen=True)
class DensityReport:
    """Where every synthesized nucleotide's capacity goes."""

    #: net payload bits stored per synthesized nucleotide
    net_bits_per_nt: float
    #: fraction of synthesized nucleotides spent on payload
    payload_fraction: float
    #: fraction spent on the per-molecule index
    index_fraction: float
    #: fraction spent on primer sites
    primer_fraction: float
    #: fraction of molecules that are RS parity
    parity_molecule_fraction: float
    #: total nucleotides synthesized per encoding unit
    unit_nt: int
    #: payload bits stored per encoding unit
    unit_payload_bits: int

    def as_rows(self):
        return [
            ["net density (bits/nt)", f"{self.net_bits_per_nt:.4f}"],
            ["payload fraction", f"{self.payload_fraction:.3f}"],
            ["index fraction", f"{self.index_fraction:.3f}"],
            ["primer fraction", f"{self.primer_fraction:.3f}"],
            ["parity molecules", f"{self.parity_molecule_fraction:.3f}"],
        ]


def density_report(
    parameters: EncodingParameters,
    mapping_bits_per_nt: float = UNCONSTRAINED_BITS_PER_NT,
) -> DensityReport:
    """Account for one encoding unit under *parameters*.

    ``mapping_bits_per_nt`` lets the same accounting cover constrained
    codecs (e.g. the rotating code's log2(3) bits/nt).
    """
    if mapping_bits_per_nt <= 0:
        raise ValueError("mapping_bits_per_nt must be positive")
    strand_nt = parameters.strand_nt
    molecules = parameters.total_columns
    unit_nt = strand_nt * molecules

    payload_nt_per_molecule = parameters.payload_bytes * 4
    index_nt = parameters.index_bytes * 4
    primer_nt = strand_nt - parameters.body_nt

    data_molecules = parameters.data_columns
    unit_payload_bits = int(
        payload_nt_per_molecule * mapping_bits_per_nt * data_molecules
    )

    return DensityReport(
        net_bits_per_nt=unit_payload_bits / unit_nt,
        payload_fraction=payload_nt_per_molecule * data_molecules / unit_nt,
        index_fraction=index_nt * molecules / unit_nt,
        primer_fraction=primer_nt * molecules / unit_nt,
        parity_molecule_fraction=parameters.parity_columns / molecules,
        unit_nt=unit_nt,
        unit_payload_bits=unit_payload_bits,
    )
