"""Simulator fidelity metrics (Section V-A, Table I of the paper).

A wetlab simulator is judged not by how its raw error statistics look, but
by whether the *downstream pipeline behaves the same* on simulated data as
on real data.  Concretely: reconstruct strands from clusters produced by the
simulator and by the real channel, and compare

* (ii) the average per-index reconstruction error rate,
* (iii) the mean absolute per-index deviation from the real profile,
* (iv) the number of perfectly reconstructed strands.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.error_profile import ErrorProfile


@dataclass
class FidelityMetrics:
    """Table-I row for one simulator."""

    name: str
    #: (ii) average per-index error rate after reconstruction
    mean_error_rate: float
    #: (iii) mean absolute per-index deviation from the real profile
    deviation_from_real: float
    #: (iv) number of perfectly reconstructed strands
    perfect_strands: int

    def as_row(self) -> list:
        return [
            self.name,
            f"{self.mean_error_rate * 100:.2f}%",
            f"{self.deviation_from_real * 100:.2f}%",
            str(self.perfect_strands),
        ]


def fidelity_metrics(
    name: str, simulated: ErrorProfile, real: ErrorProfile
) -> FidelityMetrics:
    """Compute the Table-I metrics for one simulator against the real profile."""
    return FidelityMetrics(
        name=name,
        mean_error_rate=simulated.mean_rate,
        deviation_from_real=simulated.deviation_from(real),
        perfect_strands=simulated.perfect,
    )
