"""Per-index reconstruction error profiles (Figures 3 and 6 of the paper).

The error rate at index ``i`` is the fraction of strands whose reconstructed
base at ``i`` differs from the reference base at ``i``.  This positional
view is what exposes BMA's propagation skew, double-sided BMA's middle peak,
and how closely a simulator reproduces real-data difficulty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass
class ErrorProfile:
    """Positional error statistics over a set of reconstructions."""

    #: error rate per strand index
    rates: np.ndarray
    #: number of (reference, reconstruction) pairs evaluated
    strands: int
    #: number of pairs that matched exactly
    perfect: int

    @property
    def mean_rate(self) -> float:
        """Average per-index error rate — metric (ii) of Table I."""
        return float(self.rates.mean()) if self.rates.size else 0.0

    def deviation_from(self, other: "ErrorProfile") -> float:
        """Mean absolute per-index deviation — metric (iii) of Table I."""
        if self.rates.shape != other.rates.shape:
            raise ValueError(
                f"profiles cover different lengths: {self.rates.size} vs "
                f"{other.rates.size}"
            )
        return float(np.abs(self.rates - other.rates).mean())


def per_index_error_profile(
    references: Sequence[str], reconstructions: Sequence[str]
) -> ErrorProfile:
    """Compare reconstructions against references position by position.

    All references must share one length; reconstructions are compared up to
    that length (shorter reconstructions count as errors at the missing
    indexes, mirroring how the decoder treats them).
    """
    if len(references) != len(reconstructions):
        raise ValueError(
            f"{len(references)} references vs {len(reconstructions)} reconstructions"
        )
    if not references:
        raise ValueError("at least one strand pair is required")
    length = len(references[0])
    if any(len(reference) != length for reference in references):
        raise ValueError("all references must have the same length")

    errors = np.zeros(length, dtype=np.int64)
    perfect = 0
    for reference, reconstruction in zip(references, reconstructions):
        if reference == reconstruction:
            perfect += 1
            continue
        for index in range(length):
            if index >= len(reconstruction) or reconstruction[index] != reference[index]:
                errors[index] += 1
    return ErrorProfile(
        rates=errors / len(references), strands=len(references), perfect=perfect
    )


def perfect_reconstructions(
    references: Sequence[str], reconstructions: Sequence[str]
) -> int:
    """Count exactly-recovered strands — metric (iv) of Table I."""
    if len(references) != len(reconstructions):
        raise ValueError("references and reconstructions must pair up")
    return sum(
        1
        for reference, reconstruction in zip(references, reconstructions)
        if reference == reconstruction
    )


def smooth_profile(rates: Sequence[float], window: int = 5) -> List[float]:
    """Centered moving average, used when printing profile series."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    values = np.asarray(rates, dtype=np.float64)
    if values.size == 0:
        return []
    half = window // 2
    smoothed = []
    for index in range(values.size):
        lo = max(0, index - half)
        hi = min(values.size, index + half + 1)
        smoothed.append(float(values[lo:hi].mean()))
    return smoothed
