"""Estimating per-row reliability profiles for DNAMapper.

DNAMapper needs to know which strand indexes (matrix rows) reconstruct
reliably.  In practice this is measured with a *pilot run*: encode known
data, push it through the channel + reconstruction, and record the
per-index error rate (exactly the paper's Figure 6 measurement).  This
module turns such a profile into the reliability scores
:class:`~repro.codec.layout.DNAMapperLayout` consumes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.analysis.error_profile import per_index_error_profile, smooth_profile
from repro.dna.alphabet import random_sequence
from repro.reconstruction.base import Reconstructor
from repro.simulation.channel import Channel


def profile_to_row_reliability(
    rates: Sequence[float],
    payload_bytes: int,
    index_nt: int,
    smoothing_window: int = 5,
) -> List[float]:
    """Convert a per-*nucleotide* error profile into per-*row* scores.

    The profile covers the whole strand body (index + payload); each
    payload byte (matrix row) spans four nucleotides, whose smoothed error
    rates are averaged.  Returned scores are ``1 - error`` (higher =
    more reliable), one per row.
    """
    if payload_bytes <= 0:
        raise ValueError("payload_bytes must be positive")
    expected = index_nt + payload_bytes * 4
    if len(rates) != expected:
        raise ValueError(
            f"profile covers {len(rates)} nt, expected {expected} "
            f"(index {index_nt} nt + {payload_bytes} payload bytes)"
        )
    smoothed = smooth_profile(rates, window=smoothing_window)
    reliability = []
    for row in range(payload_bytes):
        start = index_nt + row * 4
        window = smoothed[start : start + 4]
        reliability.append(1.0 - sum(window) / len(window))
    return reliability


def pilot_row_reliability(
    channel: Channel,
    reconstructor: Reconstructor,
    payload_bytes: int,
    index_nt: int = 12,
    pilot_strands: int = 100,
    coverage: int = 10,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Run a synthetic pilot and return per-row reliability scores.

    Random strands of the production body length are pushed through
    *channel* and *reconstructor*; the measured per-index error profile is
    collapsed to rows with :func:`profile_to_row_reliability`.
    """
    if pilot_strands <= 0 or coverage <= 0:
        raise ValueError("pilot_strands and coverage must be positive")
    rng = rng or random.Random()
    body_nt = index_nt + payload_bytes * 4
    references = [random_sequence(body_nt, rng) for _ in range(pilot_strands)]
    reconstructions = []
    for reference in references:
        cluster = [channel.transmit(reference, rng) for _ in range(coverage)]
        reconstructions.append(reconstructor.reconstruct(cluster, body_nt))
    profile = per_index_error_profile(references, reconstructions)
    return profile_to_row_reliability(
        profile.rates.tolist(), payload_bytes, index_nt
    )
