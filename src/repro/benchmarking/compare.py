"""The regression gate: diff two BENCH documents, flag what moved.

Quality metrics are deterministic for a fixed seed, so drift there means
the *code* changed behaviour; the gate compares each metric with a
direction (higher-better, lower-better, or match-the-baseline for the
channel's observed rates) and a tolerance.  Latency is machine-dependent,
so it is gated by ratio with a generous default — and can be skipped
entirely (``--quality-only``) when comparing across machines, as CI does
against the committed baseline.

Exit contract: :func:`compare_reports` returns a result whose
``regressions`` list is empty iff the new run is acceptable; the CLI maps
that to the process exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import format_table

#: (metric path under the workload row, direction, absolute slack floor).
#: Direction: "higher" = drops flag, "lower" = rises flag, "match" =
#: movement either way flags (observed channel rates must track the
#: configured channel, not improve).
_QUALITY_SPECS: Tuple[Tuple[str, str, float], ...] = (
    ("success_rate", "higher", 0.0),
    ("quality.channel.substitution_rate", "match", 0.005),
    ("quality.channel.insertion_rate", "match", 0.005),
    ("quality.channel.deletion_rate", "match", 0.005),
    ("quality.clustering.purity", "higher", 0.01),
    ("quality.clustering.fragmentation", "lower", 0.5),
    ("quality.clustering.under_merged", "lower", 0.5),
    ("quality.clustering.over_merged", "lower", 0.5),
    ("quality.reconstruction.exact_recovery_fraction", "higher", 0.02),
    ("quality.reconstruction.mean_edit_distance", "lower", 0.25),
    ("quality.decoding.failed_rows", "lower", 0.5),
    ("quality.decoding.symbols_corrected", "lower", 2.0),
    ("quality.decoding.erasures", "lower", 1.5),
    ("quality.decoding.clean_row_fraction", "higher", 0.05),
)


@dataclass
class CompareThresholds:
    """Knobs of the regression gate (CLI flags map onto these)."""

    #: flag when new total-latency p50 exceeds baseline p50 by this factor
    max_latency_ratio: float = 1.5
    #: relative tolerance applied to every quality metric
    quality_tolerance: float = 0.10
    #: skip latency comparison entirely (cross-machine compares)
    quality_only: bool = False
    #: require the quality sections to be *exactly* equal instead of
    #: within tolerance — the gate for same-machine worker-count sweeps,
    #: where any drift means the sharding leaked into the results
    identical_quality: bool = False

    def __post_init__(self) -> None:
        if self.max_latency_ratio <= 0:
            raise ValueError("max_latency_ratio must be positive")
        if self.quality_tolerance < 0:
            raise ValueError("quality_tolerance must be non-negative")


@dataclass
class MetricDelta:
    """One compared metric of one workload."""

    workload: str
    metric: str
    baseline: Optional[float]
    new: Optional[float]
    regression: bool
    note: str = ""


@dataclass
class ComparisonResult:
    """Everything ``repro bench --compare`` reports."""

    deltas: List[MetricDelta] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)
    #: non-fatal findings (machine-dependent timing drift); never gate CI
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def _lookup(row: Dict, path: str) -> Optional[float]:
    node = row
    for part in path.split("."):
        if not isinstance(node, dict) or node.get(part) is None:
            return None
        node = node[part]
    if isinstance(node, bool):
        return 1.0 if node else 0.0
    return float(node)


def _quality_regressed(
    direction: str, baseline: float, new: float, tolerance: float, slack: float
) -> bool:
    allowed = max(tolerance * abs(baseline), slack)
    if direction == "higher":
        return new < baseline - allowed
    if direction == "lower":
        return new > baseline + allowed
    return abs(new - baseline) > allowed  # "match"


def compare_reports(
    baseline: Dict, new: Dict, thresholds: Optional[CompareThresholds] = None
) -> ComparisonResult:
    """Compare two validated BENCH documents workload by workload."""
    thresholds = thresholds or CompareThresholds()
    result = ComparisonResult()
    if baseline.get("suite") != new.get("suite"):
        result.regressions.append(
            f"suite mismatch: baseline {baseline.get('suite')!r} "
            f"vs new {new.get('suite')!r}"
        )

    new_rows = {row["name"]: row for row in new["workloads"]}
    for base_row in baseline["workloads"]:
        name = base_row["name"]
        new_row = new_rows.get(name)
        if new_row is None:
            result.regressions.append(f"{name}: workload missing from new report")
            result.deltas.append(
                MetricDelta(name, "(workload)", None, None, True, "missing")
            )
            continue

        if thresholds.identical_quality:
            same = base_row.get("quality") == new_row.get("quality") and base_row.get(
                "success_rate"
            ) == new_row.get("success_rate")
            result.deltas.append(
                MetricDelta(
                    name,
                    "quality (exact)",
                    None,
                    None,
                    not same,
                    "identical" if same else "quality sections differ",
                )
            )
            if not same:
                result.regressions.append(
                    f"{name}: quality section is not byte-identical"
                )

        for path, direction, slack in _QUALITY_SPECS:
            base_value = _lookup(base_row, path)
            new_value = _lookup(new_row, path)
            if base_value is None and new_value is None:
                continue
            if base_value is None or new_value is None:
                missing = "baseline" if base_value is None else "new"
                result.deltas.append(
                    MetricDelta(
                        name, path, base_value, new_value, True,
                        f"missing in {missing}",
                    )
                )
                result.regressions.append(f"{name}: {path} missing in {missing}")
                continue
            regressed = _quality_regressed(
                direction, base_value, new_value,
                thresholds.quality_tolerance, slack,
            )
            result.deltas.append(
                MetricDelta(name, path, base_value, new_value, regressed)
            )
            if regressed:
                result.regressions.append(
                    f"{name}: {path} moved {base_value:.4g} -> {new_value:.4g} "
                    f"({direction} is better)"
                    if direction != "match"
                    else f"{name}: {path} drifted {base_value:.4g} -> {new_value:.4g}"
                )

        if not thresholds.quality_only:
            base_p50 = _lookup(base_row, "latency_s.total.p50")
            new_p50 = _lookup(new_row, "latency_s.total.p50")
            if base_p50 is not None and new_p50 is not None:
                # 10 ms absolute slack keeps sub-second workloads from
                # flagging on scheduler noise.
                regressed = new_p50 > base_p50 * thresholds.max_latency_ratio + 0.01
                result.deltas.append(
                    MetricDelta(name, "latency_s.total.p50", base_p50, new_p50, regressed)
                )
                if regressed:
                    result.regressions.append(
                        f"{name}: total p50 latency {base_p50:.3f}s -> {new_p50:.3f}s "
                        f"(> {thresholds.max_latency_ratio:g}x baseline)"
                    )
    return result


def diff_metric_maps(
    baseline: Dict[str, float],
    new: Dict[str, float],
    tolerance: float = 0.10,
    slack: float = 0.0,
    workload: str = "run",
    baseline_name: str = "baseline",
) -> ComparisonResult:
    """Diff two flat metric maps with the quality-gate tolerance rules.

    The generic core the run registry reuses (``repro runs diff/drift``):
    every shared key compares with "match" direction — movement beyond
    ``max(tolerance * |baseline|, slack)`` in *either* direction flags,
    because a same-fingerprint seeded run should reproduce its metrics
    exactly.  Keys missing from *new* that *baseline* had are regressions
    (a metric vanished); keys only *new* has warn (the schema grew — not
    a behaviour change the old history can witness).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    result = ComparisonResult()
    for key in sorted(set(baseline) | set(new)):
        base_value = baseline.get(key)
        new_value = new.get(key)
        if base_value is None:
            result.deltas.append(
                MetricDelta(
                    workload, key, None, new_value, False,
                    f"new metric (absent from {baseline_name})",
                )
            )
            result.warnings.append(
                f"{workload}: {key} has no history in {baseline_name}"
            )
            continue
        if new_value is None:
            result.deltas.append(
                MetricDelta(workload, key, base_value, None, True, "missing")
            )
            result.regressions.append(
                f"{workload}: {key} missing (present in {baseline_name})"
            )
            continue
        regressed = _quality_regressed(
            "match", base_value, new_value, tolerance, slack
        )
        result.deltas.append(
            MetricDelta(workload, key, base_value, new_value, regressed)
        )
        if regressed:
            result.regressions.append(
                f"{workload}: {key} drifted {base_value:.6g} -> "
                f"{new_value:.6g} (vs {baseline_name})"
            )
    return result


#: Boolean correctness fields of kernel-bench rows: gated exactly — a fast
#: kernel that stops agreeing with its oracle is a correctness regression,
#: however fast it got.
_KERNEL_CORRECTNESS_FIELDS = (
    "matches_oracle",
    "matches_scalar",
    "verdicts_match_reference",
    "within_tolerance",
    "workers_invariant",
)

#: Speedup fields of kernel-bench rows: machine-dependent, so drops only warn.
_KERNEL_SPEED_FIELDS = ("speedup", "speedup_vs_reference", "speedup_vs_scalar")

#: Sections of a kernel-bench document and the key naming their rows.
_KERNEL_SECTIONS = (
    ("distance", "kernels", "kernel"),
    ("signatures", "flavours", "flavour"),
    ("reed_solomon", "kernels", "kernel"),
    ("edit_verdict_batch", "kernels", "kernel"),
    ("consensus", "kernels", "kernel"),
    ("consensus_poa", "kernels", "kernel"),
)


def compare_kernel_reports(
    baseline: Dict, new: Dict, slowdown_warn_ratio: float = 1.5
) -> ComparisonResult:
    """Diff two kernel-bench documents (``kind: repro-kernel-bench``).

    Correctness fields must stay exactly true (regression otherwise);
    speedup drops beyond ``slowdown_warn_ratio`` produce warnings only,
    because kernel timings do not transfer between machines.
    """
    if slowdown_warn_ratio <= 0:
        raise ValueError("slowdown_warn_ratio must be positive")
    result = ComparisonResult()
    for section, rows_key, name_key in _KERNEL_SECTIONS:
        base_section = baseline.get(section)
        new_section = new.get(section)
        if base_section is None:
            continue
        if new_section is None:
            result.regressions.append(f"{section}: section missing from new report")
            result.deltas.append(
                MetricDelta(section, "(section)", None, None, True, "missing")
            )
            continue
        new_rows = {row[name_key]: row for row in new_section.get(rows_key, ())}
        for base_row in base_section.get(rows_key, ()):
            name = base_row[name_key]
            workload = f"{section}/{name}"
            new_row = new_rows.get(name)
            if new_row is None:
                result.regressions.append(f"{workload}: kernel missing from new report")
                result.deltas.append(
                    MetricDelta(workload, "(kernel)", None, None, True, "missing")
                )
                continue
            for field_name in _KERNEL_CORRECTNESS_FIELDS:
                if field_name not in base_row and field_name not in new_row:
                    continue
                base_value = base_row.get(field_name)
                new_value = new_row.get(field_name)
                # A field the baseline never had may appear (schema grew);
                # one the baseline had must not vanish or stop being true.
                exact = new_value is True
                result.deltas.append(
                    MetricDelta(
                        workload,
                        field_name,
                        None if base_value is None else float(bool(base_value)),
                        None if new_value is None else float(bool(new_value)),
                        not exact,
                        "exact" if exact else "correctness drift",
                    )
                )
                if not exact:
                    result.regressions.append(
                        f"{workload}: {field_name} is "
                        f"{new_value!r} (baseline {base_value!r}) — "
                        "correctness fields must stay exactly true"
                    )
            for field_name in _KERNEL_SPEED_FIELDS:
                base_value = base_row.get(field_name)
                new_value = new_row.get(field_name)
                if base_value is None or new_value is None:
                    continue
                slowed = new_value * slowdown_warn_ratio < base_value
                result.deltas.append(
                    MetricDelta(
                        workload,
                        field_name,
                        float(base_value),
                        float(new_value),
                        False,
                        "slower (warn)" if slowed else "",
                    )
                )
                if slowed:
                    result.warnings.append(
                        f"{workload}: {field_name} dropped "
                        f"{base_value:.1f}x -> {new_value:.1f}x "
                        f"(> {slowdown_warn_ratio:g}x below baseline; timing "
                        "only, not gated)"
                    )
    return result


def render_comparison(result: ComparisonResult, title: str = "bench comparison") -> str:
    """The human-readable regression table plus a one-line verdict."""

    def fmt(value: Optional[float]) -> str:
        return "-" if value is None else f"{value:.4g}"

    rows = []
    for delta in result.deltas:
        change = ""
        if delta.baseline not in (None, 0) and delta.new is not None:
            change = f"{(delta.new - delta.baseline) / abs(delta.baseline):+.1%}"
        rows.append(
            [
                delta.workload,
                delta.metric,
                fmt(delta.baseline),
                fmt(delta.new),
                change,
                delta.note or ("REGRESSION" if delta.regression else "ok"),
            ]
        )
    table = format_table(
        ["workload", "metric", "baseline", "new", "change", "verdict"],
        rows,
        title=title,
    )
    if result.ok:
        verdict = "verdict: OK (no regressions)"
    else:
        details = "\n".join(f"  - {line}" for line in result.regressions)
        verdict = f"verdict: {len(result.regressions)} regression(s)\n{details}"
    if result.warnings:
        notes = "\n".join(f"  - {line}" for line in result.warnings)
        verdict = f"{verdict}\nwarnings ({len(result.warnings)}):\n{notes}"
    return f"{table}\n\n{verdict}"
