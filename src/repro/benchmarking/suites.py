"""Named, parameterized benchmark workloads.

A :class:`Workload` is a fully seeded pipeline configuration plus a
deterministic input payload: running it twice produces identical quality
numbers (latency, of course, varies with the machine).  Suites group
workloads by what they guard:

``smoke``
    Two small end-to-end round trips (i.i.d. channel at moderate and high
    error).  Fast enough for CI on every push; this is the suite the
    committed baseline gates.
``fig3``
    Simulator-fidelity scale points: the same payload pushed through the
    i.i.d., SOLQC and reference channels, guarding the observed-error-rate
    and reconstruction-difficulty ordering of the paper's Figure 3/Table I.
``table2``
    Clustering accuracy/latency points: q-gram vs w-gram signatures at low
    and high error (the paper's Table II axis).
``fig6``
    Reconstruction scale points: the three consensus algorithms on the
    same noisy pool (Figure 6's comparison), at a larger payload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.clustering.rashtchian import ClusteringConfig
from repro.codec.encoder import EncodingParameters
from repro.pipeline.config import PipelineConfig
from repro.reconstruction import (
    BMAReconstructor,
    DoubleSidedBMAReconstructor,
    NWConsensusReconstructor,
)
from repro.simulation import (
    ConstantCoverage,
    IIDChannel,
    SOLQCChannel,
    WetlabReferenceChannel,
)


@dataclass(frozen=True)
class Workload:
    """One named, deterministic pipeline run."""

    name: str
    #: recorded verbatim in the report so baselines are self-describing
    params: Dict[str, object]
    data_bytes: int
    #: pipeline runs per workload; latency percentiles come from these
    repeats: int
    config_factory: Callable[[], PipelineConfig]
    data_seed: int = 0xDA7A

    def make_config(self) -> PipelineConfig:
        return self.config_factory()

    def make_data(self) -> bytes:
        return random.Random(self.data_seed).randbytes(self.data_bytes)


def _encoding(data_columns: int = 20, parity_columns: int = 8) -> EncodingParameters:
    return EncodingParameters(
        payload_bytes=18,
        data_columns=data_columns,
        parity_columns=parity_columns,
        index_bytes=2,
    )


def _config(
    error_rate: float = 0.04,
    coverage: int = 8,
    channel=None,
    signature: str = "qgram",
    reconstructor=None,
    data_columns: int = 20,
    parity_columns: int = 8,
    quality_sample: int = 128,
) -> PipelineConfig:
    return PipelineConfig(
        encoding=_encoding(data_columns, parity_columns),
        channel=channel or IIDChannel.from_total_rate(error_rate),
        coverage=ConstantCoverage(coverage),
        clustering=ClusteringConfig(signature=signature, rounds=16, seed=11),
        reconstructor=reconstructor or NWConsensusReconstructor(),
        quality_sample=quality_sample,
        seed=13,
    )


def _workload(name, params, data_bytes, repeats, factory) -> Workload:
    return Workload(
        name=name,
        params=params,
        data_bytes=data_bytes,
        repeats=repeats,
        config_factory=factory,
    )


def _smoke() -> List[Workload]:
    return [
        _workload(
            "smoke-e2e-err4",
            {"channel": "iid", "error_rate": 0.04, "coverage": 8},
            400,
            3,
            lambda: _config(error_rate=0.04, coverage=8),
        ),
        _workload(
            "smoke-e2e-err9",
            {"channel": "iid", "error_rate": 0.09, "coverage": 10},
            400,
            3,
            lambda: _config(error_rate=0.09, coverage=10),
        ),
    ]


def _fig3() -> List[Workload]:
    channels = {
        "iid": lambda: IIDChannel.from_total_rate(0.06),
        "solqc": SOLQCChannel,
        "reference": WetlabReferenceChannel,
    }
    return [
        _workload(
            f"fig3-{name}",
            {"channel": name, "coverage": 8},
            600,
            2,
            lambda make=make: _config(channel=make(), coverage=8),
        )
        for name, make in channels.items()
    ]


def _table2() -> List[Workload]:
    points = [(0.03, "qgram"), (0.03, "wgram"), (0.12, "qgram"), (0.12, "wgram")]
    return [
        _workload(
            f"table2-{signature}-err{int(rate * 100):02d}",
            {"channel": "iid", "error_rate": rate, "signature": signature},
            600,
            2,
            lambda rate=rate, signature=signature: _config(
                error_rate=rate, coverage=10, signature=signature
            ),
        )
        for rate, signature in points
    ]


def _fig6() -> List[Workload]:
    algorithms = {
        "bma": BMAReconstructor,
        "dbma": DoubleSidedBMAReconstructor,
        "nwa": NWConsensusReconstructor,
    }
    return [
        _workload(
            f"fig6-{name}",
            {"channel": "iid", "error_rate": 0.06, "reconstructor": name},
            1200,
            2,
            lambda make=make: _config(
                error_rate=0.06, coverage=10, reconstructor=make()
            ),
        )
        for name, make in algorithms.items()
    ]


#: Suite name -> workload-list factory.  Factories (not lists) so every
#: ``repro bench`` invocation gets fresh, unshared reconstructor objects.
SUITES: Dict[str, Callable[[], List[Workload]]] = {
    "smoke": _smoke,
    "fig3": _fig3,
    "table2": _table2,
    "fig6": _fig6,
}


def get_suite(name: str) -> List[Workload]:
    """The workloads of suite *name* (raises on unknown names)."""
    try:
        factory = SUITES[name]
    except KeyError:
        known = ", ".join(sorted(SUITES))
        raise ValueError(f"unknown suite {name!r} (known: {known})") from None
    return factory()
