"""Single-thread kernel microbenchmarks: ``repro bench --suite kernels``.

The end-to-end suites measure whole pipeline runs; this module isolates
the hot kernels PR-level optimisations target, so their speedups are
visible without the noise of the surrounding stages:

* **distance** — the clustering gray-zone edit verdict: bounded
  Levenshtein over seeded pairs of ~110 nt strands that differ by a
  realistic number of edits.  The reference O(nm) DP, the banded kernel
  and the Myers bit-parallel kernel all process the same pairs, and each
  row records its speedup over the reference.
* **signatures** — q-gram/w-gram signature construction: the scalar
  per-gram ``str`` loop vs the batched radix-encoded numpy path.
* **reed_solomon** — the outer-code plane: batched GF(256) encode,
  clean-row syndrome screen and erasure-only direct solve vs the scalar
  per-row codec (which doubles as the correctness oracle).
* **edit_verdict_batch** (schema 3) — the columnar gray-zone plane: one
  representative swept against many candidates at once, comparing the
  per-pair scalar loop against masks-built-once reuse and the
  uint64-lane :func:`~repro.dna.distance_batch.myers_levenshtein_batch`
  kernel over a :class:`~repro.dna.readpool.ReadPool`.
* **consensus** (schema 3) — matrix consensus: the scalar per-cluster
  ``Counter`` reconstructors vs the stacked
  ``reconstruct_batch``/bincount kernels for majority vote and BMA.
* **consensus_poa** (schema 4) — POA consensus: the exact full-width
  :class:`~repro.reconstruction.nw_consensus.NWConsensusReconstructor`
  vs its banded variant and the windowed, batched
  :class:`~repro.reconstruction.windowed.WindowedPOAReconstructor`, on a
  short suite (where the windowed path delegates and must match the
  scalar bytes exactly) and a kb-scale suite (where approximate kernels
  must stay within an edit-distance tolerance of the scalar oracle, and
  the windowed kernel carries the ≥5x speedup this module exists to
  witness).

Every non-reference row carries a boolean correctness field
(``matches_oracle`` / ``matches_scalar`` / ``verdicts_match_reference`` /
``within_tolerance`` / ``workers_invariant``) asserting the fast kernel
reproduced — or, for the approximate POA kernels, stayed within a quality
tolerance of — the oracle's results on the bench workload; the
``--compare`` gate requires those fields to stay exactly true while
timing drift only warns.

The output is a ``BENCH_kernels.json`` document with its own ``kind``
(``repro-kernel-bench``) — it deliberately does not pretend to be a
pipeline bench report, so ``--compare`` refuses to mix the two.
"""

from __future__ import annotations

import json
import platform
import random
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.benchmarking.report import current_git_sha
from repro.codec.reed_solomon import ReedSolomonCodec
from repro.dna.alphabet import BASES
from repro.dna.distance import (
    _pattern_masks,
    banded_levenshtein,
    levenshtein_distance,
    levenshtein_reference,
    myers_levenshtein_fixed,
)
from repro.dna.distance_batch import myers_levenshtein_batch
from repro.dna.qgram import QGramSignature, WGramSignature, sample_grams
from repro.dna.readpool import ReadPool
from repro.parallel import WorkerPool
from repro.reconstruction.bma import BMAReconstructor
from repro.reconstruction.majority import MajorityVoteReconstructor
from repro.reconstruction.nw_consensus import NWConsensusReconstructor
from repro.reconstruction.windowed import WindowedPOAReconstructor

KERNEL_BENCH_KIND = "repro-kernel-bench"
KERNEL_BENCH_SCHEMA_VERSION = 4


def _mutate(strand: str, edits: int, rng: random.Random) -> str:
    """Apply *edits* random substitutions/insertions/deletions to *strand*."""
    sequence = list(strand)
    for _ in range(edits):
        kind = rng.choice(("sub", "ins", "del"))
        if kind == "del" and sequence:
            del sequence[rng.randrange(len(sequence))]
        elif kind == "ins":
            sequence.insert(rng.randrange(len(sequence) + 1), rng.choice(BASES))
        elif sequence:
            sequence[rng.randrange(len(sequence))] = rng.choice(BASES)
    return "".join(sequence)


def _verdict_pairs(
    count: int, length: int, edits: int, rng: random.Random
) -> List[Tuple[str, str]]:
    """Seeded strand pairs mimicking the clustering gray zone.

    Half the pairs are mutated siblings (true merges), half are unrelated
    strands (true dismissals) — the mix the edit-verdict stage actually
    arbitrates.
    """
    pairs = []
    for index in range(count):
        left = "".join(rng.choice(BASES) for _ in range(length))
        if index % 2 == 0:
            right = _mutate(left, edits, rng)
        else:
            right = "".join(rng.choice(BASES) for _ in range(length))
        pairs.append((left, right))
    return pairs


def _timed(fn: Callable[[], object]) -> Tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _distance_section(pairs: int, length: int, edits: int, seed: int) -> Dict:
    rng = random.Random(seed)
    workload = _verdict_pairs(pairs, length, edits, rng)
    bound = max(4, int(0.33 * length))  # the clusterer's default threshold

    kernels: List[Tuple[str, Callable[[], List[int]]]] = [
        (
            "reference_dp",
            lambda: [levenshtein_reference(a, b) for a, b in workload],
        ),
        (
            "banded",
            lambda: [banded_levenshtein(a, b, bound) for a, b in workload],
        ),
        (
            "myers",
            lambda: [levenshtein_distance(a, b, bound=bound) for a, b in workload],
        ),
    ]
    rows = []
    reference_seconds = None
    reference_verdicts: Optional[List[int]] = None
    for name, fn in kernels:
        seconds, distances = _timed(fn)
        if reference_seconds is None:
            reference_seconds = seconds
            # The bounded kernels saturate at bound + 1; the reference DP
            # reports the true distance, so compare saturated verdicts.
            reference_verdicts = [min(d, bound + 1) for d in distances]
            matches = True
        else:
            matches = list(distances) == reference_verdicts
        rows.append(
            {
                "kernel": name,
                "seconds": seconds,
                "pairs_per_s": pairs / seconds if seconds > 0 else 0.0,
                "speedup_vs_reference": (
                    reference_seconds / seconds if seconds > 0 else 0.0
                ),
                "verdicts_match_reference": matches,
            }
        )
    return {
        "workload": {
            "pairs": pairs,
            "strand_nt": length,
            "edits": edits,
            "bound": bound,
            "seed": seed,
        },
        "kernels": rows,
    }


def _signature_section(reads: int, length: int, num_grams: int, seed: int) -> Dict:
    rng = random.Random(seed)
    grams = sample_grams(num_grams, 4, rng)
    pool = ["".join(rng.choice(BASES) for _ in range(length)) for _ in range(reads)]

    def scalar_qgram() -> List[np.ndarray]:
        return [
            np.fromiter(
                (1 if gram in read else 0 for gram in grams),
                dtype=np.uint8,
                count=len(grams),
            )
            for read in pool
        ]

    def scalar_wgram() -> List[np.ndarray]:
        signatures = []
        for read in pool:
            positions = np.empty(len(grams), dtype=np.int32)
            for index, gram in enumerate(grams):
                found = read.find(gram)
                positions[index] = len(read) if found < 0 else found
            signatures.append(positions)
        return signatures

    rows = []
    for flavour, scalar, scheme in (
        ("qgram", scalar_qgram, QGramSignature(grams)),
        ("wgram", scalar_wgram, WGramSignature(grams)),
    ):
        scalar_seconds, scalar_signatures = _timed(scalar)
        batched_seconds, batched_signatures = _timed(
            lambda: scheme.compute_batch(pool)
        )
        rows.append(
            {
                "flavour": flavour,
                "scalar_seconds": scalar_seconds,
                "batched_seconds": batched_seconds,
                "speedup": (
                    scalar_seconds / batched_seconds if batched_seconds > 0 else 0.0
                ),
                "matches_scalar": bool(
                    np.array_equal(
                        np.stack(scalar_signatures), np.stack(batched_signatures)
                    )
                ),
            }
        )
    return {
        "workload": {
            "reads": reads,
            "read_nt": length,
            "num_grams": num_grams,
            "gram_length": 4,
            "seed": seed,
        },
        "flavours": rows,
    }


def _reed_solomon_section(
    rows: int, data_columns: int, nsym: int, erasure_count: int, seed: int
) -> Dict:
    """Batched vs scalar RS encode / syndrome screen / erasure solve.

    The workload mirrors one large batch of encoding-unit rows at the
    paper's default geometry.  The decode screen runs on clean codewords —
    the common case after good consensus, which is exactly the case the
    batched screen lets skip Berlekamp-Massey entirely.  The erasure solve
    runs on a smaller slice because its scalar oracle (full errata
    decoding per row) is the slowest kernel here.
    """
    rng = random.Random(seed)
    codec = ReedSolomonCodec(nsym=nsym)
    messages = [
        [rng.randrange(256) for _ in range(data_columns)] for _ in range(rows)
    ]
    messages_np = np.array(messages, dtype=np.uint8)

    encode_scalar_s, scalar_codewords = _timed(
        lambda: [codec.encode(message) for message in messages]
    )
    encode_batched_s, codewords = _timed(lambda: codec.encode_batch(messages_np))
    encode_matches = bool(
        np.array_equal(np.array(scalar_codewords, dtype=np.uint8), codewords)
    )

    screen_scalar_s, scalar_clean = _timed(
        lambda: [codec.check(codeword) for codeword in scalar_codewords]
    )
    screen_batched_s, batched_clean = _timed(lambda: codec.check_batch(codewords))
    screen_matches = bool(
        np.array_equal(np.array(scalar_clean, dtype=bool), batched_clean)
    )

    erasure_rows = max(1, rows // 4)
    erasures = sorted(rng.sample(range(data_columns + nsym), erasure_count))
    erased = codewords[:erasure_rows].copy()
    erased[:, erasures] = 0

    def scalar_erasure_decode() -> List[List[int]]:
        return [
            codec.decode([int(symbol) for symbol in row], erasures=erasures)
            for row in erased
        ]

    erasure_scalar_s, scalar_messages = _timed(scalar_erasure_decode)
    erasure_batched_s, (candidates, solved) = _timed(
        lambda: codec.erasure_solve_batch(erased, erasures)
    )
    erasure_matches = bool(solved.all()) and bool(
        np.array_equal(
            np.array(scalar_messages, dtype=np.uint8),
            candidates[:, :data_columns],
        )
    )

    def row(name, scalar_s, batched_s, units, matches):
        return {
            "kernel": name,
            "scalar_seconds": scalar_s,
            "batched_seconds": batched_s,
            "rows": units,
            "speedup": scalar_s / batched_s if batched_s > 0 else 0.0,
            "matches_oracle": matches,
        }

    return {
        "workload": {
            "rows": rows,
            "data_columns": data_columns,
            "nsym": nsym,
            "erasure_rows": erasure_rows,
            "erasures": erasure_count,
            "seed": seed,
        },
        "kernels": [
            row("encode", encode_scalar_s, encode_batched_s, rows, encode_matches),
            row(
                "syndrome_screen",
                screen_scalar_s,
                screen_batched_s,
                rows,
                screen_matches,
            ),
            row(
                "erasure_solve",
                erasure_scalar_s,
                erasure_batched_s,
                erasure_rows,
                erasure_matches,
            ),
        ],
    }


def _edit_verdict_batch_section(
    lanes: int, length: int, edits: int, seed: int
) -> Dict:
    """Columnar gray-zone verdicts: one representative vs many candidates.

    The clustering hot loop groups gray-zone pairs by representative, so
    the realistic workload is one pattern swept against a block of
    candidate texts.  The scalar baseline is the per-pair
    :func:`~repro.dna.distance.levenshtein_distance` call the clusterer
    used to make; ``masks_reuse`` builds the pattern's Myers masks once
    per block, and ``uint64_lanes`` is the packed numpy kernel over a
    :class:`~repro.dna.readpool.ReadPool`.
    """
    rng = random.Random(seed)
    pattern = "".join(rng.choice(BASES) for _ in range(length))
    texts = []
    for index in range(lanes):
        if index % 2 == 0:
            texts.append(_mutate(pattern, edits, rng))
        else:
            texts.append("".join(rng.choice(BASES) for _ in range(length)))
    text_pool = ReadPool.from_strings(texts)
    bound = max(4, int(0.33 * length))  # the clusterer's default threshold

    scalar_seconds, scalar_distances = _timed(
        lambda: [levenshtein_distance(pattern, text, bound=bound) for text in texts]
    )

    def masks_reuse() -> List[int]:
        masks = _pattern_masks(pattern)
        return [
            myers_levenshtein_fixed(pattern, text, bound=bound, masks=masks)
            for text in texts
        ]

    def uint64_lanes() -> List[int]:
        return myers_levenshtein_batch(pattern, text_pool, bound=bound).tolist()

    rows = []
    for name, fn in (("masks_reuse", masks_reuse), ("uint64_lanes", uint64_lanes)):
        batched_seconds, distances = _timed(fn)
        rows.append(
            {
                "kernel": name,
                "scalar_seconds": scalar_seconds,
                "batched_seconds": batched_seconds,
                "lanes": lanes,
                "speedup": (
                    scalar_seconds / batched_seconds if batched_seconds > 0 else 0.0
                ),
                "matches_scalar": list(distances) == scalar_distances,
            }
        )
    return {
        "workload": {
            "lanes": lanes,
            "strand_nt": length,
            "edits": edits,
            "bound": bound,
            "seed": seed,
        },
        "kernels": rows,
    }


def _consensus_section(
    clusters: int, reads_per_cluster: int, length: int, edits: int, seed: int
) -> Dict:
    """Matrix consensus vs the scalar per-cluster reconstructors.

    The workload is a pool of noisy clusters stacked as
    :class:`~repro.dna.readpool.ReadPoolView` rows — the exact shape the
    pipeline hands ``reconstruct_batch``.  The scalar loop over
    ``reconstruct`` is both the baseline timing and the oracle.
    """
    rng = random.Random(seed)
    reads: List[str] = []
    boundaries = [0]
    for _ in range(clusters):
        reference = "".join(rng.choice(BASES) for _ in range(length))
        reads.extend(
            _mutate(reference, edits, rng) for _ in range(reads_per_cluster)
        )
        boundaries.append(len(reads))
    read_pool = ReadPool.from_strings(reads)
    views = [
        read_pool.view(range(boundaries[index], boundaries[index + 1]))
        for index in range(clusters)
    ]

    rows = []
    for name, maker in (
        ("majority", MajorityVoteReconstructor),
        ("bma", lambda: BMAReconstructor(lookahead=2)),
    ):
        scalar_rec = maker()
        scalar_seconds, scalar_consensus = _timed(
            lambda: [scalar_rec.reconstruct(view, length) for view in views]
        )
        batched_rec = maker()
        batched_seconds, batched_consensus = _timed(
            lambda: batched_rec.reconstruct_batch(views, length)
        )
        rows.append(
            {
                "kernel": name,
                "scalar_seconds": scalar_seconds,
                "batched_seconds": batched_seconds,
                "clusters": clusters,
                "speedup": (
                    scalar_seconds / batched_seconds if batched_seconds > 0 else 0.0
                ),
                "matches_scalar": list(batched_consensus) == list(scalar_consensus),
            }
        )
    return {
        "workload": {
            "clusters": clusters,
            "reads_per_cluster": reads_per_cluster,
            "strand_nt": length,
            "edits": edits,
            "seed": seed,
        },
        "kernels": rows,
    }


def _consensus_poa_section(
    short_clusters: int,
    long_clusters: int,
    reads_per_cluster: int,
    short_nt: int,
    long_nt: int,
    seed: int,
    poa_workers: int = 0,
) -> Dict:
    """Scalar vs banded vs windowed POA consensus, short and kb-scale.

    The scalar full-width :class:`NWConsensusReconstructor` is both the
    baseline timing and the quality oracle.  The short suite sits inside
    one window, so the windowed reconstructor delegates to the scalar
    path and must reproduce its bytes exactly (``matches_scalar``).  The
    kb-scale suite is where banding and windowing change the alignment:
    those kernels are approximate, so their gate is ``within_tolerance``
    — mean edit distance to the true reference strand no worse than the
    scalar oracle's by more than a small slack.  With ``poa_workers >= 2``
    the kb windowed run is repeated through a process pool and
    ``workers_invariant`` asserts the fanned-out bytes equal the serial
    ones.
    """
    rng = random.Random(seed)
    rows: List[Dict] = []
    suites = (
        ("short", short_clusters, short_nt),
        ("kb", long_clusters, long_nt),
    )
    for suite, count, length in suites:
        edits = max(2, round(0.02 * length))
        references: List[str] = []
        clusters: List[List[str]] = []
        for _ in range(count):
            reference = "".join(rng.choice(BASES) for _ in range(length))
            references.append(reference)
            clusters.append(
                [_mutate(reference, edits, rng) for _ in range(reads_per_cluster)]
            )

        def mean_edit(consensus: List[str]) -> float:
            return sum(
                levenshtein_distance(estimate, reference, bound=length)
                for estimate, reference in zip(consensus, references)
            ) / len(references)

        scalar = NWConsensusReconstructor(max_cluster=64)
        scalar_seconds, scalar_consensus = _timed(
            lambda: [scalar.reconstruct(cluster, length) for cluster in clusters]
        )
        scalar_ed = mean_edit(scalar_consensus)
        tolerance = max(2.0, 0.005 * length)

        band = max(24, length // 32)
        banded = NWConsensusReconstructor(max_cluster=64, band=band)
        banded_seconds, banded_consensus = _timed(
            lambda: [banded.reconstruct(cluster, length) for cluster in clusters]
        )
        banded_ed = mean_edit(banded_consensus)
        rows.append(
            {
                "kernel": f"banded_{suite}",
                "scalar_seconds": scalar_seconds,
                "batched_seconds": banded_seconds,
                "clusters": count,
                "speedup_vs_scalar": (
                    scalar_seconds / banded_seconds if banded_seconds > 0 else 0.0
                ),
                "mean_edit_distance": banded_ed,
                "scalar_mean_edit_distance": scalar_ed,
                "within_tolerance": banded_ed <= scalar_ed + tolerance,
            }
        )

        windowed = WindowedPOAReconstructor()
        windowed_seconds, windowed_consensus = _timed(
            lambda: [windowed.reconstruct(cluster, length) for cluster in clusters]
        )
        windowed_ed = mean_edit(windowed_consensus)
        row = {
            "kernel": f"windowed_{suite}",
            "scalar_seconds": scalar_seconds,
            "batched_seconds": windowed_seconds,
            "clusters": count,
            "speedup_vs_scalar": (
                scalar_seconds / windowed_seconds if windowed_seconds > 0 else 0.0
            ),
            "mean_edit_distance": windowed_ed,
            "scalar_mean_edit_distance": scalar_ed,
        }
        if suite == "short":
            # Short strands delegate to the scalar path: exact bytes.
            row["matches_scalar"] = list(windowed_consensus) == list(
                scalar_consensus
            )
        else:
            row["within_tolerance"] = windowed_ed <= scalar_ed + tolerance
            if poa_workers >= 2:
                with WorkerPool(poa_workers) as pool:
                    fanned = WindowedPOAReconstructor().reconstruct_all(
                        clusters, length, pool=pool
                    )
                row["workers_invariant"] = fanned == windowed_consensus
        rows.append(row)
    return {
        "workload": {
            "short_clusters": short_clusters,
            "long_clusters": long_clusters,
            "reads_per_cluster": reads_per_cluster,
            "short_nt": short_nt,
            "long_nt": long_nt,
            "poa_workers": poa_workers,
            "seed": seed,
        },
        "kernels": rows,
    }


def run_kernel_bench(
    git_sha: Optional[str] = None,
    pairs: int = 300,
    strand_nt: int = 110,
    edits: int = 12,
    reads: int = 3000,
    rs_rows: int = 1024,
    verdict_lanes: int = 1024,
    consensus_clusters: int = 200,
    poa_short_clusters: int = 8,
    poa_long_clusters: int = 3,
    poa_long_nt: int = 2000,
    poa_workers: int = 2,
    seed: int = 29,
) -> Dict:
    """Run the kernel microbenchmarks; returns the report document."""
    return {
        "schema_version": KERNEL_BENCH_SCHEMA_VERSION,
        "kind": KERNEL_BENCH_KIND,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "distance": _distance_section(pairs, strand_nt, edits, seed),
        "signatures": _signature_section(reads, strand_nt, 96, seed),
        "reed_solomon": _reed_solomon_section(rs_rows, 60, 20, 8, seed),
        "edit_verdict_batch": _edit_verdict_batch_section(
            verdict_lanes, strand_nt, edits, seed
        ),
        "consensus": _consensus_section(consensus_clusters, 12, strand_nt, 8, seed),
        "consensus_poa": _consensus_poa_section(
            poa_short_clusters,
            poa_long_clusters,
            8,
            strand_nt,
            poa_long_nt,
            seed,
            poa_workers=poa_workers,
        ),
    }


def validate_kernel_bench(report: Dict) -> None:
    """Raise ``ValueError`` unless *report* is a well-formed kernel-bench doc."""
    if not isinstance(report, dict):
        raise ValueError("kernel bench report must be a JSON object")
    if report.get("kind") != KERNEL_BENCH_KIND:
        raise ValueError(
            f"not a kernel bench report (kind={report.get('kind')!r})"
        )
    version = report.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad schema_version {version!r}")
    if version > KERNEL_BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"kernel bench schema {version} is newer than supported "
            f"({KERNEL_BENCH_SCHEMA_VERSION})"
        )
    required = ["distance", "signatures"]
    if version >= 3:
        required += ["edit_verdict_batch", "consensus"]
    if version >= 4:
        required += ["consensus_poa"]
    for section in required:
        if section not in report:
            raise ValueError(f"kernel bench report is missing {section!r}")


def load_kernel_bench(path: Union[str, Path]) -> Dict:
    """Read and validate a kernel-bench document."""
    report = json.loads(Path(path).read_text())
    validate_kernel_bench(report)
    return report


def render_kernel_bench(report: Dict) -> str:
    """A short human-readable summary of a kernel-bench document."""
    lines = []
    distance = report["distance"]
    workload = distance["workload"]
    lines.append(
        f"edit-verdict microbenchmark: {workload['pairs']} pairs of "
        f"~{workload['strand_nt']} nt, bound {workload['bound']}"
    )
    for row in distance["kernels"]:
        lines.append(
            f"  {row['kernel']:<13} {row['seconds']:7.3f}s  "
            f"{row['pairs_per_s']:9.0f} pairs/s  "
            f"{row['speedup_vs_reference']:5.1f}x vs reference"
        )
    signatures = report["signatures"]
    workload = signatures["workload"]
    lines.append(
        f"signature construction: {workload['reads']} reads x "
        f"{workload['num_grams']} grams"
    )
    for row in signatures["flavours"]:
        lines.append(
            f"  {row['flavour']:<13} scalar {row['scalar_seconds']:6.3f}s  "
            f"batched {row['batched_seconds']:6.3f}s  {row['speedup']:4.1f}x"
        )
    reed_solomon = report.get("reed_solomon")
    if reed_solomon is not None:
        workload = reed_solomon["workload"]
        lines.append(
            f"reed-solomon RS({workload['data_columns'] + workload['nsym']},"
            f"{workload['data_columns']}) over {workload['rows']} codeword rows"
        )
        for row in reed_solomon["kernels"]:
            oracle = "ok" if row.get("matches_oracle") else "MISMATCH"
            lines.append(
                f"  {row['kernel']:<15} scalar {row['scalar_seconds']:6.3f}s  "
                f"batched {row['batched_seconds']:7.4f}s  "
                f"{row['speedup']:6.1f}x  oracle {oracle}"
            )
    verdict_batch = report.get("edit_verdict_batch")
    if verdict_batch is not None:
        workload = verdict_batch["workload"]
        lines.append(
            f"batched edit verdicts: 1 representative x {workload['lanes']} "
            f"candidates of ~{workload['strand_nt']} nt, bound {workload['bound']}"
        )
        for row in verdict_batch["kernels"]:
            oracle = "ok" if row.get("matches_scalar") else "MISMATCH"
            lines.append(
                f"  {row['kernel']:<15} scalar {row['scalar_seconds']:6.3f}s  "
                f"batched {row['batched_seconds']:7.4f}s  "
                f"{row['speedup']:6.1f}x  oracle {oracle}"
            )
    consensus = report.get("consensus")
    if consensus is not None:
        workload = consensus["workload"]
        lines.append(
            f"matrix consensus: {workload['clusters']} clusters x "
            f"{workload['reads_per_cluster']} reads of ~{workload['strand_nt']} nt"
        )
        for row in consensus["kernels"]:
            oracle = "ok" if row.get("matches_scalar") else "MISMATCH"
            lines.append(
                f"  {row['kernel']:<15} scalar {row['scalar_seconds']:6.3f}s  "
                f"batched {row['batched_seconds']:7.4f}s  "
                f"{row['speedup']:6.1f}x  oracle {oracle}"
            )
    consensus_poa = report.get("consensus_poa")
    if consensus_poa is not None:
        workload = consensus_poa["workload"]
        lines.append(
            f"POA consensus: short {workload['short_clusters']} clusters x "
            f"{workload['short_nt']} nt, kb {workload['long_clusters']} "
            f"clusters x {workload['long_nt']} nt"
        )
        for row in consensus_poa["kernels"]:
            if "matches_scalar" in row:
                oracle = "exact ok" if row["matches_scalar"] else "MISMATCH"
            else:
                oracle = (
                    f"ed {row['mean_edit_distance']:.1f} vs "
                    f"{row['scalar_mean_edit_distance']:.1f}"
                    if row.get("within_tolerance")
                    else "TOLERANCE EXCEEDED"
                )
            lines.append(
                f"  {row['kernel']:<15} scalar {row['scalar_seconds']:6.3f}s  "
                f"kernel {row['batched_seconds']:7.4f}s  "
                f"{row['speedup_vs_scalar']:6.1f}x  {oracle}"
            )
    return "\n".join(lines)
