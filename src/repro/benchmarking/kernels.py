"""Single-thread kernel microbenchmarks: ``repro bench --suite kernels``.

The end-to-end suites measure whole pipeline runs; this module isolates
the two hot kernels PR-level optimisations target, so their speedups are
visible without the noise of the surrounding stages:

* **distance** — the clustering gray-zone edit verdict: bounded
  Levenshtein over seeded pairs of ~110 nt strands that differ by a
  realistic number of edits.  The reference O(nm) DP, the banded kernel
  and the Myers bit-parallel kernel all process the same pairs, and each
  row records its speedup over the reference.
* **signatures** — q-gram/w-gram signature construction: the scalar
  per-gram ``str`` loop vs the batched radix-encoded numpy path.

The output is a ``BENCH_kernels.json`` document with its own ``kind``
(``repro-kernel-bench``) — it deliberately does not pretend to be a
pipeline bench report, so ``--compare`` refuses to mix the two.
"""

from __future__ import annotations

import platform
import random
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.benchmarking.report import current_git_sha
from repro.dna.alphabet import BASES
from repro.dna.distance import (
    banded_levenshtein,
    levenshtein_distance,
    levenshtein_reference,
)
from repro.dna.qgram import QGramSignature, WGramSignature, sample_grams

KERNEL_BENCH_KIND = "repro-kernel-bench"
KERNEL_BENCH_SCHEMA_VERSION = 1


def _mutate(strand: str, edits: int, rng: random.Random) -> str:
    """Apply *edits* random substitutions/insertions/deletions to *strand*."""
    sequence = list(strand)
    for _ in range(edits):
        kind = rng.choice(("sub", "ins", "del"))
        if kind == "del" and sequence:
            del sequence[rng.randrange(len(sequence))]
        elif kind == "ins":
            sequence.insert(rng.randrange(len(sequence) + 1), rng.choice(BASES))
        elif sequence:
            sequence[rng.randrange(len(sequence))] = rng.choice(BASES)
    return "".join(sequence)


def _verdict_pairs(
    count: int, length: int, edits: int, rng: random.Random
) -> List[Tuple[str, str]]:
    """Seeded strand pairs mimicking the clustering gray zone.

    Half the pairs are mutated siblings (true merges), half are unrelated
    strands (true dismissals) — the mix the edit-verdict stage actually
    arbitrates.
    """
    pairs = []
    for index in range(count):
        left = "".join(rng.choice(BASES) for _ in range(length))
        if index % 2 == 0:
            right = _mutate(left, edits, rng)
        else:
            right = "".join(rng.choice(BASES) for _ in range(length))
        pairs.append((left, right))
    return pairs


def _timed(fn: Callable[[], object]) -> Tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _distance_section(pairs: int, length: int, edits: int, seed: int) -> Dict:
    rng = random.Random(seed)
    workload = _verdict_pairs(pairs, length, edits, rng)
    bound = max(4, int(0.33 * length))  # the clusterer's default threshold

    kernels: List[Tuple[str, Callable[[], List[int]]]] = [
        (
            "reference_dp",
            lambda: [levenshtein_reference(a, b) for a, b in workload],
        ),
        (
            "banded",
            lambda: [banded_levenshtein(a, b, bound) for a, b in workload],
        ),
        (
            "myers",
            lambda: [levenshtein_distance(a, b, bound=bound) for a, b in workload],
        ),
    ]
    rows = []
    reference_seconds = None
    for name, fn in kernels:
        seconds, _ = _timed(fn)
        if reference_seconds is None:
            reference_seconds = seconds
        rows.append(
            {
                "kernel": name,
                "seconds": seconds,
                "pairs_per_s": pairs / seconds if seconds > 0 else 0.0,
                "speedup_vs_reference": (
                    reference_seconds / seconds if seconds > 0 else 0.0
                ),
            }
        )
    return {
        "workload": {
            "pairs": pairs,
            "strand_nt": length,
            "edits": edits,
            "bound": bound,
            "seed": seed,
        },
        "kernels": rows,
    }


def _signature_section(reads: int, length: int, num_grams: int, seed: int) -> Dict:
    rng = random.Random(seed)
    grams = sample_grams(num_grams, 4, rng)
    pool = ["".join(rng.choice(BASES) for _ in range(length)) for _ in range(reads)]

    def scalar_qgram() -> List[np.ndarray]:
        return [
            np.fromiter(
                (1 if gram in read else 0 for gram in grams),
                dtype=np.uint8,
                count=len(grams),
            )
            for read in pool
        ]

    def scalar_wgram() -> List[np.ndarray]:
        signatures = []
        for read in pool:
            positions = np.empty(len(grams), dtype=np.int32)
            for index, gram in enumerate(grams):
                found = read.find(gram)
                positions[index] = len(read) if found < 0 else found
            signatures.append(positions)
        return signatures

    rows = []
    for flavour, scalar, scheme in (
        ("qgram", scalar_qgram, QGramSignature(grams)),
        ("wgram", scalar_wgram, WGramSignature(grams)),
    ):
        scalar_seconds, _ = _timed(scalar)
        batched_seconds, _ = _timed(lambda: scheme.compute_batch(pool))
        rows.append(
            {
                "flavour": flavour,
                "scalar_seconds": scalar_seconds,
                "batched_seconds": batched_seconds,
                "speedup": (
                    scalar_seconds / batched_seconds if batched_seconds > 0 else 0.0
                ),
            }
        )
    return {
        "workload": {
            "reads": reads,
            "read_nt": length,
            "num_grams": num_grams,
            "gram_length": 4,
            "seed": seed,
        },
        "flavours": rows,
    }


def run_kernel_bench(
    git_sha: Optional[str] = None,
    pairs: int = 300,
    strand_nt: int = 110,
    edits: int = 12,
    reads: int = 3000,
    seed: int = 29,
) -> Dict:
    """Run the kernel microbenchmarks; returns the report document."""
    return {
        "schema_version": KERNEL_BENCH_SCHEMA_VERSION,
        "kind": KERNEL_BENCH_KIND,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "distance": _distance_section(pairs, strand_nt, edits, seed),
        "signatures": _signature_section(reads, strand_nt, 96, seed),
    }


def render_kernel_bench(report: Dict) -> str:
    """A short human-readable summary of a kernel-bench document."""
    lines = []
    distance = report["distance"]
    workload = distance["workload"]
    lines.append(
        f"edit-verdict microbenchmark: {workload['pairs']} pairs of "
        f"~{workload['strand_nt']} nt, bound {workload['bound']}"
    )
    for row in distance["kernels"]:
        lines.append(
            f"  {row['kernel']:<13} {row['seconds']:7.3f}s  "
            f"{row['pairs_per_s']:9.0f} pairs/s  "
            f"{row['speedup_vs_reference']:5.1f}x vs reference"
        )
    signatures = report["signatures"]
    workload = signatures["workload"]
    lines.append(
        f"signature construction: {workload['reads']} reads x "
        f"{workload['num_grams']} grams"
    )
    for row in signatures["flavours"]:
        lines.append(
            f"  {row['flavour']:<13} scalar {row['scalar_seconds']:6.3f}s  "
            f"batched {row['batched_seconds']:6.3f}s  {row['speedup']:4.1f}x"
        )
    return "\n".join(lines)
