"""The ``BENCH_<suite>.json`` artifact: build, validate, read, write.

One bench run produces one self-describing JSON document::

    {
      "schema_version": 1,
      "kind": "repro-bench",
      "suite": "smoke",
      "git_sha": "<commit or 'unknown'>",
      "created_unix": 1754000000,
      "python": "3.12.3",
      "workloads": [
        {
          "name": "smoke-e2e-err4",
          "params": {...},                 # the workload's knobs, verbatim
          "data_bytes": 400,
          "repeats": 3,
          "success_rate": 1.0,
          "latency_s": {                   # per stage, over the repeats
            "encoding": {"p50": ..., "p99": ..., "mean": ..., "min": ..., "max": ...},
            ...,
            "total": {...}
          },
          "throughput_bytes_per_s": ...,   # data_bytes / median total
          "load_imbalance": {              # worst max/mean chunk duration per
            "pipeline.simulation": 1.18,   # fan-out site over the repeats
            ...                            # (1.0 = perfectly balanced)
          },
          "quality": {...}                 # QualityReport.as_dict()
        }
      ]
    }

The schema is versioned so ``--compare`` can refuse artifacts it does not
understand instead of silently comparing apples to oranges.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Version of the BENCH document shape (bumped on breaking change).
BENCH_SCHEMA_VERSION = 1

_REQUIRED_TOP_LEVEL = ("schema_version", "kind", "suite", "git_sha", "workloads")
_REQUIRED_WORKLOAD = ("name", "params", "repeats", "latency_s", "quality")
_LATENCY_KEYS = ("p50", "p99", "mean", "min", "max")


def current_git_sha(repo_root: Optional[Path] = None) -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else "unknown"


def build_bench_report(
    suite: str, workload_rows: List[Dict], git_sha: Optional[str] = None
) -> Dict:
    """Assemble the top-level document around per-workload rows."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "repro-bench",
        "suite": suite,
        "git_sha": git_sha if git_sha is not None else current_git_sha(),
        "created_unix": int(time.time()),
        "python": platform.python_version(),
        "workloads": workload_rows,
    }


def validate_bench_report(report: Dict) -> None:
    """Raise ``ValueError`` unless *report* is a well-formed BENCH document."""
    if not isinstance(report, dict):
        raise ValueError("bench report must be a JSON object")
    for key in _REQUIRED_TOP_LEVEL:
        if key not in report:
            raise ValueError(f"bench report is missing {key!r}")
    if report["kind"] != "repro-bench":
        raise ValueError(f"not a bench report (kind={report['kind']!r})")
    version = report["schema_version"]
    if not isinstance(version, int) or version < 1:
        raise ValueError(f"bad schema_version {version!r}")
    if version > BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"bench schema {version} is newer than supported ({BENCH_SCHEMA_VERSION})"
        )
    workloads = report["workloads"]
    if not isinstance(workloads, list) or not workloads:
        raise ValueError("bench report has no workloads")
    for row in workloads:
        for key in _REQUIRED_WORKLOAD:
            if key not in row:
                raise ValueError(
                    f"workload {row.get('name', '?')!r} is missing {key!r}"
                )
        latency = row["latency_s"]
        if "total" not in latency:
            raise ValueError(f"workload {row['name']!r} lacks total latency")
        for stage, summary in latency.items():
            missing = [key for key in _LATENCY_KEYS if key not in summary]
            if missing:
                raise ValueError(
                    f"workload {row['name']!r} stage {stage!r} lacks {missing}"
                )
        quality = row["quality"]
        if not isinstance(quality, dict) or "schema_version" not in quality:
            raise ValueError(f"workload {row['name']!r} has a malformed quality report")


def default_output_path(suite: str) -> Path:
    return Path(f"BENCH_{suite}.json")


def write_bench_report(report: Dict, path: Union[str, Path]) -> Path:
    """Validate then write *report* as pretty-printed JSON."""
    validate_bench_report(report)
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def load_bench_report(path: Union[str, Path]) -> Dict:
    """Read and validate a BENCH document."""
    report = json.loads(Path(path).read_text())
    validate_bench_report(report)
    return report
