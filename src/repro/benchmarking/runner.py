"""Runs benchmark suites and folds the results into report rows.

Each workload is repeated ``workload.repeats`` times under its own
:class:`~repro.observability.Tracer`; stage latencies come from the span
rollups (the same numbers ``StageTimings`` reports), quality from the
pipeline's :class:`~repro.observability.quality.QualityReport`, and the
per-fan-out ``worker_load_imbalance`` gauges roll up into each row's
``load_imbalance`` section so lopsided sharding is visible (and
regression-checkable) in the ``BENCH_*.json`` artifact.  Workloads
are fully seeded, so the quality section is identical across repeats and
across machines — which is what lets CI gate on a committed baseline with
``--compare --quality-only`` while latency floats with the hardware.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.benchmarking.report import build_bench_report

if TYPE_CHECKING:
    from repro.observability.runs import RunRegistry
from repro.benchmarking.suites import Workload, get_suite
from repro.observability.metrics import percentile
from repro.observability.trace import Tracer
from repro.pipeline.pipeline import Pipeline

#: Stage keys reported under ``latency_s`` (StageTimings.as_dict order).
STAGES = (
    "encoding",
    "simulation",
    "preprocessing",
    "clustering",
    "reconstruction",
    "decoding",
    "total",
)


def _summary(samples: List[float]) -> Dict[str, float]:
    return {
        "p50": percentile(samples, 50),
        "p99": percentile(samples, 99),
        "mean": sum(samples) / len(samples),
        "min": min(samples),
        "max": max(samples),
    }


def run_workload(workload: Workload, workers: int = 1) -> Dict:
    """Run one workload and return its report row.

    *workers* overrides the workload configuration's worker count; the
    quality section is worker-count independent (the parallel stages use
    per-item derived RNG streams), so only latency moves.
    """
    data = workload.make_data()
    per_stage: Dict[str, List[float]] = {stage: [] for stage in STAGES}
    successes = 0
    quality = None
    imbalance: Dict[str, float] = {}
    for _ in range(workload.repeats):
        tracer = Tracer()
        config = workload.make_config()
        if workers > 1:
            config.workers = workers
        pipeline = Pipeline(config)
        result = pipeline.run(data, tracer=tracer)
        timings = result.timings.as_dict()
        for stage in STAGES:
            per_stage[stage].append(timings[stage])
        successes += 1 if (result.success and result.data == data) else 0
        quality = result.quality
        # Worst (max) load imbalance per fan-out site over the repeats:
        # the pipeline's worker pool records one gauge per calling span,
        # so imbalance regressions surface in the BENCH artifact.
        for name, labels, gauge in tracer.metrics.gauges():
            if name == "worker_load_imbalance":
                key = labels.get("span", "-")
                imbalance[key] = max(imbalance.get(key, 0.0), gauge.value)
    totals = per_stage["total"]
    return {
        "name": workload.name,
        "params": dict(workload.params),
        "data_bytes": workload.data_bytes,
        "repeats": workload.repeats,
        "workers": max(workers, 1),
        "success_rate": successes / workload.repeats,
        "latency_s": {stage: _summary(per_stage[stage]) for stage in STAGES},
        "throughput_bytes_per_s": (
            workload.data_bytes / percentile(totals, 50) if max(totals) > 0 else 0.0
        ),
        "load_imbalance": {
            span: round(value, 4) for span, value in sorted(imbalance.items())
        },
        "quality": quality.as_dict() if quality is not None else None,
    }


def run_suite(
    suite: str,
    git_sha: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
    registry: Optional["RunRegistry"] = None,
) -> Dict:
    """Run every workload of *suite*; returns the BENCH report document.

    *progress* (when given) receives one line per workload as it finishes —
    the CLI uses it so long suites show life.  Pass a
    :class:`~repro.observability.runs.RunRegistry` to also append one
    ``kind="bench"`` :class:`~repro.observability.runs.RunRecord` for the
    whole invocation (suite-params fingerprint, per-workload quality
    metrics and p50 latencies) — the raw material of ``repro runs drift``.
    """
    rows = []
    for workload in get_suite(suite):
        row = run_workload(workload, workers=workers)
        if progress is not None:
            total = row["latency_s"]["total"]
            progress(
                f"{workload.name}: p50 {total['p50']:.3f}s over "
                f"{workload.repeats} repeat(s), success {row['success_rate']:.0%}"
            )
        rows.append(row)
    report = build_bench_report(suite, rows, git_sha=git_sha)
    if registry is not None:
        from repro.observability.runs import bench_run_record

        registry.append(bench_run_record(report))
    return report
