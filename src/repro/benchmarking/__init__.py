"""The benchmark regression harness behind ``repro bench``.

The legacy ``benchmarks/`` directory regenerates the paper's tables and
figures as rendered text; this package is the machine-readable counterpart
the ROADMAP's "fast *and* measurable" goal needs:

* :mod:`repro.benchmarking.suites` — named, parameterized workloads
  (``smoke`` / ``fig3`` / ``table2`` / ``fig6``), each a seeded pipeline
  configuration small enough to run in CI;
* :mod:`repro.benchmarking.runner` — runs a suite under a
  :class:`~repro.observability.Tracer`, collecting per-stage latency
  percentiles, throughput and the full
  :class:`~repro.observability.quality.QualityReport`;
* :mod:`repro.benchmarking.report` — the schema-versioned
  ``BENCH_<suite>.json`` artifact (load/validate/write);
* :mod:`repro.benchmarking.compare` — the regression gate:
  ``repro bench --compare baseline.json new.json`` renders a table of
  latency and quality deltas and exits non-zero past the thresholds.

Every PR appends to the same artifact trajectory: run a suite, commit the
JSON as the new baseline when a change is intentional, and let CI fail
when quality drifts unintentionally.
"""

from repro.benchmarking.compare import (
    CompareThresholds,
    compare_kernel_reports,
    compare_reports,
    diff_metric_maps,
    render_comparison,
)
from repro.benchmarking.kernels import (
    KERNEL_BENCH_KIND,
    load_kernel_bench,
    render_kernel_bench,
    run_kernel_bench,
    validate_kernel_bench,
)
from repro.benchmarking.report import (
    BENCH_SCHEMA_VERSION,
    build_bench_report,
    current_git_sha,
    default_output_path,
    load_bench_report,
    validate_bench_report,
    write_bench_report,
)
from repro.benchmarking.runner import run_suite, run_workload
from repro.benchmarking.suites import SUITES, Workload, get_suite

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "CompareThresholds",
    "KERNEL_BENCH_KIND",
    "SUITES",
    "Workload",
    "build_bench_report",
    "compare_kernel_reports",
    "compare_reports",
    "current_git_sha",
    "diff_metric_maps",
    "default_output_path",
    "get_suite",
    "load_bench_report",
    "load_kernel_bench",
    "render_comparison",
    "render_kernel_bench",
    "run_kernel_bench",
    "run_suite",
    "run_workload",
    "validate_bench_report",
    "write_bench_report",
]
