"""Command-line interface: ``python -m repro <command>``.

Each pipeline stage is exposed as a subcommand operating on plain text
files (one strand/read per line), so stages can be chained, inspected and
swapped from the shell exactly as the library allows from Python:

    python -m repro encode  photo.jpg strands.txt
    python -m repro simulate strands.txt reads.txt --channel nanopore --coverage 10
    python -m repro cluster  reads.txt clusters.txt
    python -m repro reconstruct reads.txt clusters.txt consensus.txt
    python -m repro decode   consensus.txt recovered.jpg --params strands.txt.params.json
    python -m repro pipeline photo.jpg recovered.jpg        # all of the above
    python -m repro density  --payload-bytes 30 --parity-columns 20

``encode`` writes a ``<output>.params.json`` sidecar capturing the encoding
parameters; ``decode`` reads it back so the two ends always agree.

Every subcommand accepts ``--trace PATH`` to record an observability trace
(nested spans + counters, JSONL); ``python -m repro trace PATH`` renders a
saved trace as a per-stage latency/counter report.  ``--trace-out PATH``
writes the same run as Chrome Trace Event JSON (one lane per worker
process — open in Perfetto or ``chrome://tracing``), ``repro trace PATH
--chrome OUT`` converts a saved JSONL trace, and ``--profile`` adds
tracemalloc memory / GC attributes to the top-level stage spans.
``pipeline`` also accepts ``--provenance PATH`` to record the per-strand
lineage ledger; ``python -m repro why PATH`` renders its root-cause
forensics (add ``--strand ID`` for one strand's full timeline).

``pipeline`` and ``bench --suite`` runs append a
:class:`~repro.observability.runs.RunRecord` to the persistent run
registry (default ``.repro/runs/``; redirect with ``--runs-dir`` or
``$REPRO_RUNS_DIR``, disable with ``--no-record``).  ``python -m repro
runs`` works the registry: ``list``/``show`` browse history, ``diff``
compares two runs, ``drift`` gates the newest run against its trailing
same-fingerprint window (exit 4 — distinct from ``bench --compare``'s
exit 3 — so CI can tell the two gates apart), ``gc`` prunes by age/count.
``pipeline --sample-interval S`` additionally runs a background telemetry
sampler whose counter/gauge/RSS time-series lands in the RunRecord.

Diagnostics go through the structured ``repro.*`` loggers; the global
``--log-level/-v`` and ``--log-format`` flags control their verbosity and
shape (compact human lines or JSONL).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import density_report, format_table
from repro.clustering import ClusteringConfig, RashtchianClusterer
from repro.codec import DNADecoder, DNAEncoder, EncodingParameters
from repro.codec.layout import make_layout
from repro.observability import (
    ProvenanceLedger,
    RunRegistry,
    TelemetrySampler,
    Tracer,
    as_tracer,
    configure_logging,
    default_runs_dir,
    detect_drift,
    diff_runs,
    get_logger,
    load_ledger,
    load_trace,
    pipeline_run_record,
    render_report,
    render_strand_timeline,
    render_tracer_report,
    render_why_summary,
    resolve_level,
    write_chrome_trace,
    write_ledger,
    write_trace,
)
from repro.parallel import WorkerPool
from repro.pipeline import Pipeline, PipelineConfig
from repro.reconstruction import (
    BMAReconstructor,
    DoubleSidedBMAReconstructor,
    NWConsensusReconstructor,
    WindowedPOAReconstructor,
)
from repro.simulation import (
    ConstantCoverage,
    IIDChannel,
    SOLQCChannel,
    WetlabReferenceChannel,
    sequence_pool,
)

_RECONSTRUCTORS = {
    "bma": BMAReconstructor,
    "dbma": DoubleSidedBMAReconstructor,
    "nwa": NWConsensusReconstructor,
    # Windowed/banded/batched POA: the kb-scale variant of "nwa".  Short
    # strands delegate to the scalar path, so it is byte-identical to
    # "nwa" at the paper's default lengths and only diverges (for a >5x
    # speedup) on strands longer than one window.
    "nww": WindowedPOAReconstructor,
}

# Exit-code contract (documented in the --help epilog).  The two
# regression gates use distinct codes so CI scripts can tell "the bench
# baseline regressed" apart from "the run registry drifted".
EXIT_OK = 0
#: operation failed (decode/round-trip failure, screen violations)
EXIT_FAILURE = 1
#: usage or unreadable-input error
EXIT_USAGE = 2
#: ``repro bench --compare`` found a regression against the baseline
EXIT_BENCH_REGRESSION = 3
#: ``repro runs drift``/``repro runs diff`` found metric drift
EXIT_DRIFT = 4

_EXIT_CODE_EPILOG = """\
exit codes:
  0  success
  1  operation failure (decode/round-trip failure, screen violations)
  2  usage or input error
  3  bench regression (`repro bench --compare`)
  4  run-registry drift (`repro runs drift`, `repro runs diff`)
"""

#: Diagnostics (file-written notices, bench progress) go through the
#: structured logger; primary command output stays on plain ``print``.
_log = get_logger("cli")


def _channel_from_args(args) -> object:
    if args.channel == "iid":
        return IIDChannel.from_total_rate(args.error_rate)
    if args.channel == "solqc":
        return SOLQCChannel()
    if args.channel == "illumina":
        return WetlabReferenceChannel.illumina()
    if args.channel == "nanopore":
        return WetlabReferenceChannel.nanopore()
    raise ValueError(f"unknown channel {args.channel!r}")


def _encoding_from_args(args) -> EncodingParameters:
    return EncodingParameters(
        payload_bytes=args.payload_bytes,
        data_columns=args.data_columns,
        parity_columns=args.parity_columns,
        index_bytes=args.index_bytes,
        layout=make_layout(args.layout),
    )


def _params_path(strands_path: str) -> Path:
    return Path(f"{strands_path}.params.json")


def _save_params(strands_path: str, parameters: EncodingParameters, num_units: int) -> None:
    payload = {
        "payload_bytes": parameters.payload_bytes,
        "data_columns": parameters.data_columns,
        "parity_columns": parameters.parity_columns,
        "index_bytes": parameters.index_bytes,
        "layout": parameters.layout.name,
        "randomize": parameters.randomize,
        "randomizer_seed": parameters.randomizer_seed,
        "num_units": num_units,
    }
    _params_path(strands_path).write_text(json.dumps(payload, indent=2))


def _load_params(path: str):
    data = json.loads(Path(path).read_text())
    num_units = data.pop("num_units", None)
    layout = make_layout(data.pop("layout", "baseline"))
    return EncodingParameters(layout=layout, **data), num_units


def _read_lines(path: str) -> List[str]:
    return [
        line.strip()
        for line in Path(path).read_text().splitlines()
        if line.strip() and not line.startswith("#")
    ]


def _write_lines(path: str, lines) -> None:
    Path(path).write_text("\n".join(lines) + "\n")


def _start_trace(args) -> Optional[Tracer]:
    """A recording tracer when ``--trace``/``--trace-out``/``--profile``
    asked for one, else None."""
    wants_trace = (
        getattr(args, "trace", None)
        or getattr(args, "trace_out", None)
        or getattr(args, "profile", False)
    )
    if not wants_trace:
        return None
    return Tracer(profile=bool(getattr(args, "profile", False)))


def _finish_trace(args, tracer: Optional[Tracer]) -> None:
    if tracer is None:
        return
    if getattr(args, "trace", None):
        path = write_trace(tracer, args.trace)
        _log.info("trace written to %s", path)
    if getattr(args, "trace_out", None):
        path = write_chrome_trace(tracer, args.trace_out)
        _log.info(
            "chrome trace written to %s (open in Perfetto or chrome://tracing)",
            path,
        )
    if getattr(args, "profile", False) and not getattr(args, "trace", None):
        # --profile without --trace still deserves its numbers: render the
        # live tracer (stage table + fan-out balance + gauges) to stdout.
        print(render_tracer_report(tracer, title="profile report"))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_encode(args) -> int:
    tracer = _start_trace(args)
    parameters = _encoding_from_args(args)
    data = Path(args.input).read_bytes()
    with as_tracer(tracer).span("pipeline.encoding", input_bytes=len(data)) as span:
        pool = DNAEncoder(parameters).encode(data)
        span.set("strands", len(pool.references))
    _write_lines(args.output, pool.references)
    _save_params(args.output, parameters, pool.num_units)
    print(
        f"encoded {len(data)} B into {len(pool.references)} strands "
        f"({pool.num_units} unit(s)); parameters -> {_params_path(args.output)}"
    )
    _finish_trace(args, tracer)
    return 0


def cmd_decode(args) -> int:
    tracer = _start_trace(args)
    parameters, num_units = _load_params(args.params)
    strands = _read_lines(args.input)
    with as_tracer(tracer).span("pipeline.decoding", strands=len(strands)):
        data, report = DNADecoder(parameters).decode(
            strands, expected_units=num_units, tracer=tracer
        )
    Path(args.output).write_bytes(data)
    _finish_trace(args, tracer)
    status = "OK" if report.success else "FAILED (best effort written)"
    print(
        f"decoded {len(data)} B [{status}] — rows: {report.clean_rows} clean, "
        f"{report.corrected_rows} corrected, {report.failed_rows} failed; "
        f"{report.missing_columns} molecules missing"
    )
    return 0 if report.success else 1


def cmd_simulate(args) -> int:
    tracer = _start_trace(args)
    strands = _read_lines(args.input)
    channel = _channel_from_args(args)
    with as_tracer(tracer).span(
        "pipeline.simulation", strands=len(strands), coverage=args.coverage
    ) as span, WorkerPool(args.workers, tracer=tracer) as pool:
        run = sequence_pool(
            strands,
            channel,
            ConstantCoverage(args.coverage),
            seed=args.seed,
            pool=pool,
        )
        span.set("reads", len(run.reads))
        span.set("dropouts", len(run.dropouts))
        span.set("shards", pool.last_shards)
    _write_lines(args.output, run.reads)
    print(
        f"sequenced {len(strands)} strands at coverage {args.coverage} "
        f"through {args.channel}: {len(run.reads)} reads "
        f"({len(run.dropouts)} dropouts)"
    )
    _finish_trace(args, tracer)
    return 0


def cmd_cluster(args) -> int:
    tracer = _start_trace(args)
    reads = _read_lines(args.input)
    config = ClusteringConfig(
        signature=args.signature, seed=args.seed, workers=args.workers
    )
    with as_tracer(tracer).span("pipeline.clustering", reads=len(reads)):
        result = RashtchianClusterer(config).cluster(reads, tracer=tracer)
    _write_lines(
        args.output,
        (" ".join(str(i) for i in cluster) for cluster in result.clusters),
    )
    print(
        f"clustered {len(reads)} reads into {len(result.clusters)} clusters "
        f"in {result.total_seconds:.1f}s "
        f"({result.edit_comparisons} edit-distance calls; "
        f"theta=({result.theta_low:.1f}, {result.theta_high:.1f}))"
    )
    _finish_trace(args, tracer)
    return 0


def cmd_reconstruct(args) -> int:
    tracer = _start_trace(args)
    reads = _read_lines(args.reads)
    clusters = [
        [int(token) for token in line.split()] for line in _read_lines(args.clusters)
    ]
    reconstructor = _RECONSTRUCTORS[args.algorithm]()
    kept = [
        [reads[i] for i in cluster]
        for cluster in clusters
        if len(cluster) >= args.min_cluster_size
    ]
    with as_tracer(tracer).span(
        "pipeline.reconstruction", clusters=len(kept)
    ), WorkerPool(args.workers, tracer=tracer) as pool:
        consensus = reconstructor.reconstruct_all(
            kept, args.length, tracer=tracer, pool=pool
        )
    _write_lines(args.output, consensus)
    print(
        f"reconstructed {len(consensus)} strands with {args.algorithm} "
        f"(expected length {args.length})"
    )
    _finish_trace(args, tracer)
    return 0


def cmd_pipeline(args) -> int:
    tracer = _start_trace(args)
    data = Path(args.input).read_bytes()
    config = PipelineConfig(
        encoding=_encoding_from_args(args),
        channel=_channel_from_args(args),
        coverage=ConstantCoverage(args.coverage),
        clustering=ClusteringConfig(signature=args.signature, seed=args.seed),
        reconstructor=_RECONSTRUCTORS[args.algorithm](),
        seed=args.seed,
        workers=args.workers,
        quality_sample=args.quality_sample,
    )
    ledger = ProvenanceLedger() if args.provenance else None
    recording = not args.no_record
    # Recording and sampling need a live metrics registry even when no
    # --trace was requested; a private tracer changes no output.
    run_tracer = tracer
    if run_tracer is None and (recording or args.sample_interval):
        run_tracer = Tracer()
    sampler = (
        TelemetrySampler(run_tracer.metrics, interval=args.sample_interval)
        if args.sample_interval
        else None
    )
    result = Pipeline(config).run(
        data, tracer=run_tracer, ledger=ledger, sampler=sampler
    )
    Path(args.output).write_bytes(result.data)
    if recording:
        registry = RunRegistry(args.runs_dir)
        record = registry.append(
            pipeline_run_record(
                config,
                result,
                data_bytes=len(data),
                label=str(args.input),
                samples=sampler.samples if sampler is not None else (),
                tracer=run_tracer,
            )
        )
        # Debug level: the default (no-flag) stdout must stay identical
        # to the unrecorded output.
        _log.debug("run %s recorded to %s", record.run_id, registry.root)
    if ledger is not None and result.provenance is not None:
        path = write_ledger(result.provenance, args.provenance)
        _log.info("provenance ledger written to %s (render with `repro why`)", path)
    rows = [
        [stage, f"{seconds:.2f}"]
        for stage, seconds in result.timings.as_dict().items()
    ]
    print(format_table(["stage", "seconds"], rows, title="pipeline latency"))
    match = result.data == data
    print(f"round trip: {'exact recovery' if match else 'MISMATCH'}")
    _finish_trace(args, tracer)
    return 0 if match else 1


def cmd_density(args) -> int:
    tracer = _start_trace(args)
    with as_tracer(tracer).span("analysis.density"):
        report = density_report(_encoding_from_args(args))
    print(format_table(["quantity", "value"], report.as_rows(), title="density"))
    _finish_trace(args, tracer)
    return 0


def cmd_trace(args) -> int:
    source = args.input or args.from_file
    if source is None or (args.input and args.from_file):
        print(
            "error: provide exactly one saved trace "
            "(positional PATH or --from PATH)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    try:
        trace = load_trace(source)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    print(render_report(trace, title=f"trace report ({source})"))
    if args.chrome:
        path = write_chrome_trace(trace, args.chrome)
        _log.info(
            "chrome trace written to %s (open in Perfetto or chrome://tracing)",
            path,
        )
    return 0


def cmd_why(args) -> int:
    try:
        report = load_ledger(args.input)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.strand is not None:
        record = report.strand(args.strand)
        if record is None:
            print(
                f"error: strand {args.strand} not in ledger "
                f"({len(report.strands)} strands recorded)",
                file=sys.stderr,
            )
            return 2
        if args.json:
            print(json.dumps(record.as_dict(), indent=2))
        else:
            unit = next(
                (u for u in report.units if u.unit == record.unit), None
            )
            print(render_strand_timeline(record, unit))
        return 0
    if args.json:
        print(json.dumps(report.summary.as_dict(), indent=2))
    else:
        print(render_why_summary(report, title=f"decode forensics ({args.input})"))
    return 0


def cmd_bench(args) -> int:
    from repro.benchmarking import (
        CompareThresholds,
        SUITES,
        compare_reports,
        load_bench_report,
        render_comparison,
        run_suite,
        write_bench_report,
    )
    from repro.benchmarking.report import default_output_path

    if args.list:
        from repro.benchmarking import get_suite

        for name in sorted(SUITES):
            workloads = get_suite(name)
            print(f"{name}: {', '.join(w.name for w in workloads)}")
        print("kernels: distance + signature kernel microbenchmarks (single thread)")
        return 0

    if args.compare:
        from repro.benchmarking import (
            KERNEL_BENCH_KIND,
            compare_kernel_reports,
            load_kernel_bench,
        )

        baseline_path, new_path = args.compare
        try:
            raw_baseline = json.loads(Path(baseline_path).read_text())
            raw_new = json.loads(Path(new_path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        kernel_kinds = [
            report.get("kind") == KERNEL_BENCH_KIND
            for report in (raw_baseline, raw_new)
        ]
        try:
            if any(kernel_kinds):
                if not all(kernel_kinds):
                    raise ValueError(
                        "cannot compare a kernel-bench report against a "
                        "pipeline bench report"
                    )
                # Kernel docs gate correctness exactly; timing only warns
                # (kernel timings do not transfer between machines).
                result = compare_kernel_reports(
                    load_kernel_bench(baseline_path), load_kernel_bench(new_path)
                )
            else:
                baseline = load_bench_report(baseline_path)
                new = load_bench_report(new_path)
                thresholds = CompareThresholds(
                    max_latency_ratio=args.max_latency_ratio,
                    quality_tolerance=args.quality_tolerance,
                    quality_only=args.quality_only,
                    identical_quality=args.identical_quality,
                )
                result = compare_reports(baseline, new, thresholds)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            render_comparison(
                result, title=f"bench comparison ({baseline_path} -> {new_path})"
            )
        )
        return EXIT_OK if result.ok else EXIT_BENCH_REGRESSION

    if not args.suite:
        print("error: provide --suite NAME, --compare BASE NEW, or --list",
              file=sys.stderr)
        return 2
    if args.suite == "kernels":
        # Kernel microbenchmarks produce their own document kind; they
        # measure the distance/signature kernels in isolation, single
        # threaded, so --workers does not apply.
        from repro.benchmarking.kernels import render_kernel_bench, run_kernel_bench

        report = run_kernel_bench()
        print(render_kernel_bench(report))
        path = Path(args.out or default_output_path("kernels"))
        path.write_text(json.dumps(report, indent=2) + "\n")
        _log.info("kernel bench report written to %s", path)
        return 0
    registry = None if args.no_record else RunRegistry(args.runs_dir)
    report = run_suite(
        args.suite, progress=_log.info, workers=args.workers, registry=registry
    )
    path = write_bench_report(report, args.out or default_output_path(args.suite))
    _log.info("bench report written to %s", path)
    if registry is not None:
        _log.debug("bench run recorded to %s", registry.root)
    return 0


def _run_summary_row(record) -> List[str]:
    return [
        record.run_id,
        record.kind,
        record.created_iso,
        record.fingerprint[:12],
        "-" if record.seed is None else str(record.seed),
        str(record.workers),
        f"{record.total_seconds:.2f}",
        record.label or "-",
    ]


def cmd_runs(args) -> int:
    from repro.benchmarking import render_comparison

    registry = RunRegistry(args.dir)
    action = args.runs_command

    if action == "list":
        records = registry.records()
        if args.limit and args.limit > 0:
            records = records[-args.limit :]
        records = list(reversed(records))  # newest first
        if args.json:
            print(json.dumps([record.as_dict() for record in records], indent=2))
            return EXIT_OK
        if not records:
            print(f"no runs recorded in {registry.root}")
            return EXIT_OK
        print(
            format_table(
                ["run id", "kind", "created (UTC)", "fingerprint", "seed",
                 "workers", "total s", "label"],
                [_run_summary_row(record) for record in records],
                title=f"run registry ({registry.root}, newest first)",
            )
        )
        return EXIT_OK

    if action == "show":
        try:
            record = registry.get(args.run_id)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return EXIT_USAGE
        if args.json:
            print(json.dumps(record.as_dict(), indent=2))
            return EXIT_OK
        rows = [
            ["run id", record.run_id],
            ["kind", record.kind],
            ["created (UTC)", record.created_iso],
            ["git sha", record.git_sha],
            ["fingerprint", record.fingerprint],
            ["label", record.label or "-"],
            ["seed", "-" if record.seed is None else str(record.seed)],
            ["workers", str(record.workers)],
            ["total seconds", f"{record.total_seconds:.3f}"],
            ["peak RSS", f"{record.peak_rss_bytes / 1e6:.1f} MB"],
            ["telemetry samples", str(len(record.samples))],
        ]
        print(format_table(["field", "value"], rows, title=f"run {record.run_id}"))
        if record.timings:
            print()
            print(
                format_table(
                    ["stage", "seconds"],
                    [[k, f"{v:.3f}"] for k, v in record.timings.items()],
                    title="timings (informational, never drift-gated)",
                )
            )
        if record.metrics:
            print()
            print(
                format_table(
                    ["metric", "value"],
                    [[k, f"{v:g}"] for k, v in sorted(record.metrics.items())],
                    title="metrics (drift-gated)",
                )
            )
        if record.load_imbalance:
            print()
            print(
                format_table(
                    ["fan-out site", "max/mean"],
                    [[k, f"{v:.3f}"] for k, v in sorted(record.load_imbalance.items())],
                    title="load imbalance",
                )
            )
        return EXIT_OK

    if action == "diff":
        try:
            run_a = registry.get(args.run_a)
            run_b = registry.get(args.run_b)
        except KeyError as error:
            print(f"error: {error.args[0]}", file=sys.stderr)
            return EXIT_USAGE
        result = diff_runs(run_a, run_b, tolerance=args.tolerance)
        print(
            render_comparison(
                result, title=f"run diff ({run_a.run_id} -> {run_b.run_id})"
            )
        )
        return EXIT_OK if result.ok else EXIT_DRIFT

    if action == "drift":
        run = None
        if args.run_id is not None:
            try:
                run = registry.get(args.run_id)
            except KeyError as error:
                print(f"error: {error.args[0]}", file=sys.stderr)
                return EXIT_USAGE
        result = detect_drift(
            registry, run=run, window=args.window, tolerance=args.tolerance
        )
        print(render_comparison(result, title=f"drift check ({registry.root})"))
        return EXIT_OK if result.ok else EXIT_DRIFT

    if action == "gc":
        if args.max_age_days is None and args.max_count is None:
            print(
                "error: provide --max-age-days and/or --max-count",
                file=sys.stderr,
            )
            return EXIT_USAGE
        kept, removed = registry.gc(
            max_age_days=args.max_age_days, max_count=args.max_count
        )
        print(f"runs gc: kept {kept}, removed {removed} ({registry.root})")
        return EXIT_OK

    raise AssertionError(f"unhandled runs action {action!r}")


def cmd_stats(args) -> int:
    from repro.analysis.poolstats import pool_statistics

    tracer = _start_trace(args)
    strands = _read_lines(args.input)
    with as_tracer(tracer).span("analysis.poolstats", strands=len(strands)):
        stats = pool_statistics(strands, max_run=args.max_run)
    rows = [
        ["strands", str(stats.strands)],
        ["GC mean / min / max", f"{stats.gc_mean:.3f} / {stats.gc_min:.3f} / {stats.gc_max:.3f}"],
        ["GC violations", str(stats.gc_violations)],
        ["longest homopolymer", str(stats.homopolymer_max)],
        [f"runs > {args.max_run}", str(stats.homopolymer_violations)],
        ["verdict", "clean" if stats.clean else "screen violations present"],
    ]
    print(format_table(["quantity", "value"], rows, title="pool statistics"))
    _finish_trace(args, tracer)
    return 0 if stats.clean else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def _add_encoding_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--payload-bytes", type=int, default=30)
    parser.add_argument("--data-columns", type=int, default=60)
    parser.add_argument("--parity-columns", type=int, default=20)
    parser.add_argument("--index-bytes", type=int, default=3)
    parser.add_argument(
        "--layout", choices=("baseline", "gini", "dnamapper"), default="baseline"
    )


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the parallel stages (default 1: in-process; "
        "outputs are identical at any worker count)",
    )


def _add_channel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--channel",
        choices=("iid", "solqc", "illumina", "nanopore"),
        default="iid",
    )
    parser.add_argument("--error-rate", type=float, default=0.06)
    parser.add_argument("--coverage", type=int, default=10)


def _add_record_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-record",
        action="store_true",
        help="skip appending this run to the run registry",
    )
    parser.add_argument(
        "--runs-dir",
        metavar="DIR",
        default=None,
        help="run registry location (default $REPRO_RUNS_DIR or .repro/runs)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DNA Storage Toolkit command line",
        epilog=_EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    encode = commands.add_parser("encode", help="file -> strands")
    encode.add_argument("input")
    encode.add_argument("output")
    _add_encoding_arguments(encode)
    encode.set_defaults(handler=cmd_encode)

    decode = commands.add_parser("decode", help="strands -> file")
    decode.add_argument("input")
    decode.add_argument("output")
    decode.add_argument(
        "--params",
        required=True,
        help="params sidecar written by `encode` (…/strands.txt.params.json)",
    )
    decode.set_defaults(handler=cmd_decode)

    simulate = commands.add_parser("simulate", help="strands -> noisy reads")
    simulate.add_argument("input")
    simulate.add_argument("output")
    _add_channel_arguments(simulate)
    simulate.add_argument("--seed", type=int, default=0)
    _add_workers_argument(simulate)
    simulate.set_defaults(handler=cmd_simulate)

    cluster = commands.add_parser("cluster", help="reads -> clusters")
    cluster.add_argument("input")
    cluster.add_argument("output")
    cluster.add_argument("--signature", choices=("qgram", "wgram"), default="qgram")
    cluster.add_argument("--seed", type=int, default=0)
    _add_workers_argument(cluster)
    cluster.set_defaults(handler=cmd_cluster)

    reconstruct = commands.add_parser(
        "reconstruct", help="reads + clusters -> consensus strands"
    )
    reconstruct.add_argument("reads")
    reconstruct.add_argument("clusters")
    reconstruct.add_argument("output")
    reconstruct.add_argument("--algorithm", choices=sorted(_RECONSTRUCTORS), default="nwa")
    reconstruct.add_argument("--length", type=int, required=True)
    reconstruct.add_argument("--min-cluster-size", type=int, default=2)
    _add_workers_argument(reconstruct)
    reconstruct.set_defaults(handler=cmd_reconstruct)

    pipeline = commands.add_parser("pipeline", help="full round trip")
    pipeline.add_argument("input")
    pipeline.add_argument("output")
    _add_encoding_arguments(pipeline)
    _add_channel_arguments(pipeline)
    pipeline.add_argument("--signature", choices=("qgram", "wgram"), default="qgram")
    pipeline.add_argument("--algorithm", choices=sorted(_RECONSTRUCTORS), default="nwa")
    pipeline.add_argument("--seed", type=int, default=0)
    pipeline.add_argument(
        "--quality-sample",
        type=int,
        default=64,
        metavar="READS",
        help="reads aligned against their origin strands for the channel "
        "quality section (quadratic in strand length; 0 skips it — "
        "recommended for kb-scale strands)",
    )
    pipeline.add_argument(
        "--provenance",
        metavar="PATH",
        default=None,
        help="record the per-strand provenance ledger to PATH as JSONL "
        "(render with `repro why PATH`)",
    )
    _add_workers_argument(pipeline)
    _add_record_arguments(pipeline)
    pipeline.add_argument(
        "--sample-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sample counters/gauges/RSS every SECONDS in a background "
        "thread; the time-series lands in the recorded RunRecord",
    )
    pipeline.set_defaults(handler=cmd_pipeline)

    density = commands.add_parser("density", help="information-density report")
    _add_encoding_arguments(density)
    density.set_defaults(handler=cmd_density)

    stats = commands.add_parser(
        "stats", help="synthesis-screen statistics for a strands file"
    )
    stats.add_argument("input")
    stats.add_argument("--max-run", type=int, default=6)
    stats.set_defaults(handler=cmd_stats)

    trace = commands.add_parser(
        "trace", help="render a saved trace (latency + counters report)"
    )
    trace.add_argument(
        "input", nargs="?", default=None, help="JSONL trace written by --trace"
    )
    trace.add_argument(
        "--from",
        dest="from_file",
        metavar="FILE",
        default=None,
        help="render the saved JSONL trace at FILE (alias for the "
        "positional PATH; provide exactly one)",
    )
    trace.add_argument(
        "--chrome",
        metavar="PATH",
        default=None,
        help="also convert the trace to Chrome Trace Event JSON at PATH "
        "(open in Perfetto or chrome://tracing)",
    )
    trace.set_defaults(handler=cmd_trace)

    why = commands.add_parser(
        "why",
        help="decode-failure forensics from a saved provenance ledger",
    )
    why.add_argument(
        "input", help="JSONL ledger written by `pipeline --provenance`"
    )
    why.add_argument(
        "--strand",
        type=int,
        default=None,
        metavar="ID",
        help="show one strand's full lineage timeline instead of the summary",
    )
    why.add_argument(
        "--json",
        action="store_true",
        help="emit the summary (or strand record) as JSON for scripting",
    )
    why.set_defaults(handler=cmd_why)

    bench = commands.add_parser(
        "bench",
        help="run a benchmark suite (BENCH_<suite>.json) or compare two runs",
    )
    bench.add_argument(
        "--suite", default=None, help="suite to run (see --list)"
    )
    bench.add_argument(
        "--out",
        default=None,
        help="output path for the bench report (default BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--compare",
        nargs=2,
        metavar=("BASELINE", "NEW"),
        default=None,
        help="compare two bench reports; exits 3 on regression",
    )
    bench.add_argument(
        "--max-latency-ratio",
        type=float,
        default=1.5,
        help="flag when new total p50 latency exceeds baseline by this factor",
    )
    bench.add_argument(
        "--quality-tolerance",
        type=float,
        default=0.10,
        help="relative tolerance applied to every quality metric",
    )
    bench.add_argument(
        "--quality-only",
        action="store_true",
        help="skip latency comparison (for cross-machine baselines, e.g. CI)",
    )
    bench.add_argument(
        "--identical-quality",
        action="store_true",
        help="require byte-identical quality sections (worker-count sweeps)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list suites and their workloads"
    )
    _add_workers_argument(bench)
    _add_record_arguments(bench)
    bench.set_defaults(handler=cmd_bench)

    runs = commands.add_parser(
        "runs",
        help="browse the run registry, diff runs, gate on drift, prune",
        epilog=_EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    runs_commands = runs.add_subparsers(dest="runs_command", required=True)

    runs_list = runs_commands.add_parser(
        "list", help="recorded runs, newest first"
    )
    runs_list.add_argument(
        "--limit",
        type=int,
        default=0,
        metavar="N",
        help="show only the newest N runs (default: all)",
    )
    runs_list.add_argument(
        "--json", action="store_true", help="emit the records as JSON"
    )

    runs_show = runs_commands.add_parser(
        "show", help="one record in full (accepts a unique id prefix)"
    )
    runs_show.add_argument("run_id", help="run id or unique prefix")
    runs_show.add_argument(
        "--json", action="store_true", help="emit the record as JSON"
    )

    runs_diff = runs_commands.add_parser(
        "diff", help="diff two runs' metric maps (exits 4 past tolerance)"
    )
    runs_diff.add_argument("run_a", help="baseline run id (or unique prefix)")
    runs_diff.add_argument("run_b", help="new run id (or unique prefix)")
    runs_diff.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative tolerance applied to every metric (default 0.10)",
    )

    runs_drift = runs_commands.add_parser(
        "drift",
        help="gate the newest run against its trailing same-fingerprint "
        "window (exits 4 on drift; OK with a warning when no history)",
    )
    runs_drift.add_argument(
        "--run",
        dest="run_id",
        default=None,
        metavar="RUN_ID",
        help="check this run instead of the newest record",
    )
    runs_drift.add_argument(
        "--window",
        type=int,
        default=8,
        metavar="N",
        help="trailing same-fingerprint runs to average (default 8)",
    )
    runs_drift.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="relative tolerance applied to every metric (default 0.10)",
    )

    runs_gc = runs_commands.add_parser(
        "gc", help="prune old records by age and/or count"
    )
    runs_gc.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="drop records older than DAYS",
    )
    runs_gc.add_argument(
        "--max-count",
        type=int,
        default=None,
        metavar="N",
        help="keep only the newest N records",
    )

    for runs_sub in (runs_list, runs_show, runs_diff, runs_drift, runs_gc):
        runs_sub.add_argument(
            "--dir",
            metavar="DIR",
            default=None,
            help="registry location (default $REPRO_RUNS_DIR or .repro/runs)",
        )
    runs.set_defaults(handler=cmd_runs)

    # Global observability flags: every subcommand (except the renderers
    # and the bench harness, which manage their own tracers) can record
    # its run as a JSONL trace and/or a Chrome (Perfetto) timeline, and
    # opt into per-stage resource profiling.
    for name, subparser in commands.choices.items():
        if name not in ("trace", "why", "bench", "runs"):
            subparser.add_argument(
                "--trace",
                metavar="PATH",
                default=None,
                help="record spans + counters to PATH as JSONL "
                "(render with `repro trace PATH`)",
            )
            subparser.add_argument(
                "--trace-out",
                metavar="PATH",
                default=None,
                help="record the run as Chrome Trace Event JSON at PATH — "
                "one lane per worker process; open in Perfetto or "
                "chrome://tracing",
            )
            subparser.add_argument(
                "--profile",
                action="store_true",
                help="profile top-level stages (tracemalloc current/peak "
                "memory + GC counts as span attributes); implies tracing",
            )

    # Global logging flags: the CLI defaults to info-level diagnostics;
    # -v raises to debug, --log-level overrides outright.  The `runs`
    # sub-subcommands get their own copies so the flags work after the
    # action word too (`repro runs list -v`).
    logging_parsers = list(commands.choices.values()) + [
        runs_list, runs_show, runs_diff, runs_drift, runs_gc
    ]
    for subparser in logging_parsers:
        subparser.add_argument(
            "--log-level",
            choices=("debug", "info", "warning", "error"),
            default=None,
            help="diagnostic verbosity (default info)",
        )
        subparser.add_argument(
            "-v",
            "--verbose",
            action="count",
            default=0,
            help="raise diagnostic verbosity (-v = debug)",
        )
        subparser.add_argument(
            "--log-format",
            choices=("human", "json"),
            default="human",
            help="diagnostic format: compact lines or JSONL records",
        )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    # The CLI runs one verbosity step above the library default (info,
    # not warning) so file-written notices are visible; diagnostics go to
    # stdout so they interleave with the primary output they annotate.
    configure_logging(
        resolve_level(args.log_level, args.verbose + 1),
        fmt=args.log_format,
        stream=sys.stdout,
    )
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
