"""Command-line interface: ``python -m repro <command>``.

Each pipeline stage is exposed as a subcommand operating on plain text
files (one strand/read per line), so stages can be chained, inspected and
swapped from the shell exactly as the library allows from Python:

    python -m repro encode  photo.jpg strands.txt
    python -m repro simulate strands.txt reads.txt --channel nanopore --coverage 10
    python -m repro cluster  reads.txt clusters.txt
    python -m repro reconstruct reads.txt clusters.txt consensus.txt
    python -m repro decode   consensus.txt recovered.jpg --params strands.txt.params.json
    python -m repro pipeline photo.jpg recovered.jpg        # all of the above
    python -m repro density  --payload-bytes 30 --parity-columns 20

``encode`` writes a ``<output>.params.json`` sidecar capturing the encoding
parameters; ``decode`` reads it back so the two ends always agree.

Every subcommand accepts ``--trace PATH`` to record an observability trace
(nested spans + counters, JSONL); ``python -m repro trace PATH`` renders a
saved trace as a per-stage latency/counter report.  ``--trace-out PATH``
writes the same run as Chrome Trace Event JSON (one lane per worker
process — open in Perfetto or ``chrome://tracing``), ``repro trace PATH
--chrome OUT`` converts a saved JSONL trace, and ``--profile`` adds
tracemalloc memory / GC attributes to the top-level stage spans.
``pipeline`` also accepts ``--provenance PATH`` to record the per-strand
lineage ledger; ``python -m repro why PATH`` renders its root-cause
forensics (add ``--strand ID`` for one strand's full timeline).

Diagnostics go through the structured ``repro.*`` loggers; the global
``--log-level/-v`` and ``--log-format`` flags control their verbosity and
shape (compact human lines or JSONL).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import density_report, format_table
from repro.clustering import ClusteringConfig, RashtchianClusterer
from repro.codec import DNADecoder, DNAEncoder, EncodingParameters
from repro.codec.layout import make_layout
from repro.observability import (
    ProvenanceLedger,
    Tracer,
    as_tracer,
    configure_logging,
    get_logger,
    load_ledger,
    load_trace,
    render_report,
    render_strand_timeline,
    render_tracer_report,
    render_why_summary,
    resolve_level,
    write_chrome_trace,
    write_ledger,
    write_trace,
)
from repro.parallel import WorkerPool
from repro.pipeline import Pipeline, PipelineConfig
from repro.reconstruction import (
    BMAReconstructor,
    DoubleSidedBMAReconstructor,
    NWConsensusReconstructor,
)
from repro.simulation import (
    ConstantCoverage,
    IIDChannel,
    SOLQCChannel,
    WetlabReferenceChannel,
    sequence_pool,
)

_RECONSTRUCTORS = {
    "bma": BMAReconstructor,
    "dbma": DoubleSidedBMAReconstructor,
    "nwa": NWConsensusReconstructor,
}

#: Diagnostics (file-written notices, bench progress) go through the
#: structured logger; primary command output stays on plain ``print``.
_log = get_logger("cli")


def _channel_from_args(args) -> object:
    if args.channel == "iid":
        return IIDChannel.from_total_rate(args.error_rate)
    if args.channel == "solqc":
        return SOLQCChannel()
    if args.channel == "illumina":
        return WetlabReferenceChannel.illumina()
    if args.channel == "nanopore":
        return WetlabReferenceChannel.nanopore()
    raise ValueError(f"unknown channel {args.channel!r}")


def _encoding_from_args(args) -> EncodingParameters:
    return EncodingParameters(
        payload_bytes=args.payload_bytes,
        data_columns=args.data_columns,
        parity_columns=args.parity_columns,
        index_bytes=args.index_bytes,
        layout=make_layout(args.layout),
    )


def _params_path(strands_path: str) -> Path:
    return Path(f"{strands_path}.params.json")


def _save_params(strands_path: str, parameters: EncodingParameters, num_units: int) -> None:
    payload = {
        "payload_bytes": parameters.payload_bytes,
        "data_columns": parameters.data_columns,
        "parity_columns": parameters.parity_columns,
        "index_bytes": parameters.index_bytes,
        "layout": parameters.layout.name,
        "randomize": parameters.randomize,
        "randomizer_seed": parameters.randomizer_seed,
        "num_units": num_units,
    }
    _params_path(strands_path).write_text(json.dumps(payload, indent=2))


def _load_params(path: str):
    data = json.loads(Path(path).read_text())
    num_units = data.pop("num_units", None)
    layout = make_layout(data.pop("layout", "baseline"))
    return EncodingParameters(layout=layout, **data), num_units


def _read_lines(path: str) -> List[str]:
    return [
        line.strip()
        for line in Path(path).read_text().splitlines()
        if line.strip() and not line.startswith("#")
    ]


def _write_lines(path: str, lines) -> None:
    Path(path).write_text("\n".join(lines) + "\n")


def _start_trace(args) -> Optional[Tracer]:
    """A recording tracer when ``--trace``/``--trace-out``/``--profile``
    asked for one, else None."""
    wants_trace = (
        getattr(args, "trace", None)
        or getattr(args, "trace_out", None)
        or getattr(args, "profile", False)
    )
    if not wants_trace:
        return None
    return Tracer(profile=bool(getattr(args, "profile", False)))


def _finish_trace(args, tracer: Optional[Tracer]) -> None:
    if tracer is None:
        return
    if getattr(args, "trace", None):
        path = write_trace(tracer, args.trace)
        _log.info("trace written to %s", path)
    if getattr(args, "trace_out", None):
        path = write_chrome_trace(tracer, args.trace_out)
        _log.info(
            "chrome trace written to %s (open in Perfetto or chrome://tracing)",
            path,
        )
    if getattr(args, "profile", False) and not getattr(args, "trace", None):
        # --profile without --trace still deserves its numbers: render the
        # live tracer (stage table + fan-out balance + gauges) to stdout.
        print(render_tracer_report(tracer, title="profile report"))


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_encode(args) -> int:
    tracer = _start_trace(args)
    parameters = _encoding_from_args(args)
    data = Path(args.input).read_bytes()
    with as_tracer(tracer).span("pipeline.encoding", input_bytes=len(data)) as span:
        pool = DNAEncoder(parameters).encode(data)
        span.set("strands", len(pool.references))
    _write_lines(args.output, pool.references)
    _save_params(args.output, parameters, pool.num_units)
    print(
        f"encoded {len(data)} B into {len(pool.references)} strands "
        f"({pool.num_units} unit(s)); parameters -> {_params_path(args.output)}"
    )
    _finish_trace(args, tracer)
    return 0


def cmd_decode(args) -> int:
    tracer = _start_trace(args)
    parameters, num_units = _load_params(args.params)
    strands = _read_lines(args.input)
    with as_tracer(tracer).span("pipeline.decoding", strands=len(strands)):
        data, report = DNADecoder(parameters).decode(
            strands, expected_units=num_units, tracer=tracer
        )
    Path(args.output).write_bytes(data)
    _finish_trace(args, tracer)
    status = "OK" if report.success else "FAILED (best effort written)"
    print(
        f"decoded {len(data)} B [{status}] — rows: {report.clean_rows} clean, "
        f"{report.corrected_rows} corrected, {report.failed_rows} failed; "
        f"{report.missing_columns} molecules missing"
    )
    return 0 if report.success else 1


def cmd_simulate(args) -> int:
    tracer = _start_trace(args)
    strands = _read_lines(args.input)
    channel = _channel_from_args(args)
    with as_tracer(tracer).span(
        "pipeline.simulation", strands=len(strands), coverage=args.coverage
    ) as span, WorkerPool(args.workers, tracer=tracer) as pool:
        run = sequence_pool(
            strands,
            channel,
            ConstantCoverage(args.coverage),
            seed=args.seed,
            pool=pool,
        )
        span.set("reads", len(run.reads))
        span.set("dropouts", len(run.dropouts))
        span.set("shards", pool.last_shards)
    _write_lines(args.output, run.reads)
    print(
        f"sequenced {len(strands)} strands at coverage {args.coverage} "
        f"through {args.channel}: {len(run.reads)} reads "
        f"({len(run.dropouts)} dropouts)"
    )
    _finish_trace(args, tracer)
    return 0


def cmd_cluster(args) -> int:
    tracer = _start_trace(args)
    reads = _read_lines(args.input)
    config = ClusteringConfig(
        signature=args.signature, seed=args.seed, workers=args.workers
    )
    with as_tracer(tracer).span("pipeline.clustering", reads=len(reads)):
        result = RashtchianClusterer(config).cluster(reads, tracer=tracer)
    _write_lines(
        args.output,
        (" ".join(str(i) for i in cluster) for cluster in result.clusters),
    )
    print(
        f"clustered {len(reads)} reads into {len(result.clusters)} clusters "
        f"in {result.total_seconds:.1f}s "
        f"({result.edit_comparisons} edit-distance calls; "
        f"theta=({result.theta_low:.1f}, {result.theta_high:.1f}))"
    )
    _finish_trace(args, tracer)
    return 0


def cmd_reconstruct(args) -> int:
    tracer = _start_trace(args)
    reads = _read_lines(args.reads)
    clusters = [
        [int(token) for token in line.split()] for line in _read_lines(args.clusters)
    ]
    reconstructor = _RECONSTRUCTORS[args.algorithm]()
    kept = [
        [reads[i] for i in cluster]
        for cluster in clusters
        if len(cluster) >= args.min_cluster_size
    ]
    with as_tracer(tracer).span(
        "pipeline.reconstruction", clusters=len(kept)
    ), WorkerPool(args.workers, tracer=tracer) as pool:
        consensus = reconstructor.reconstruct_all(
            kept, args.length, tracer=tracer, pool=pool
        )
    _write_lines(args.output, consensus)
    print(
        f"reconstructed {len(consensus)} strands with {args.algorithm} "
        f"(expected length {args.length})"
    )
    _finish_trace(args, tracer)
    return 0


def cmd_pipeline(args) -> int:
    tracer = _start_trace(args)
    data = Path(args.input).read_bytes()
    config = PipelineConfig(
        encoding=_encoding_from_args(args),
        channel=_channel_from_args(args),
        coverage=ConstantCoverage(args.coverage),
        clustering=ClusteringConfig(signature=args.signature, seed=args.seed),
        reconstructor=_RECONSTRUCTORS[args.algorithm](),
        seed=args.seed,
        workers=args.workers,
    )
    ledger = ProvenanceLedger() if args.provenance else None
    result = Pipeline(config).run(data, tracer=tracer, ledger=ledger)
    Path(args.output).write_bytes(result.data)
    if ledger is not None and result.provenance is not None:
        path = write_ledger(result.provenance, args.provenance)
        _log.info("provenance ledger written to %s (render with `repro why`)", path)
    rows = [
        [stage, f"{seconds:.2f}"]
        for stage, seconds in result.timings.as_dict().items()
    ]
    print(format_table(["stage", "seconds"], rows, title="pipeline latency"))
    match = result.data == data
    print(f"round trip: {'exact recovery' if match else 'MISMATCH'}")
    _finish_trace(args, tracer)
    return 0 if match else 1


def cmd_density(args) -> int:
    tracer = _start_trace(args)
    with as_tracer(tracer).span("analysis.density"):
        report = density_report(_encoding_from_args(args))
    print(format_table(["quantity", "value"], report.as_rows(), title="density"))
    _finish_trace(args, tracer)
    return 0


def cmd_trace(args) -> int:
    trace = load_trace(args.input)
    print(render_report(trace, title=f"trace report ({args.input})"))
    if args.chrome:
        path = write_chrome_trace(trace, args.chrome)
        _log.info(
            "chrome trace written to %s (open in Perfetto or chrome://tracing)",
            path,
        )
    return 0


def cmd_why(args) -> int:
    try:
        report = load_ledger(args.input)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.strand is not None:
        record = report.strand(args.strand)
        if record is None:
            print(
                f"error: strand {args.strand} not in ledger "
                f"({len(report.strands)} strands recorded)",
                file=sys.stderr,
            )
            return 2
        if args.json:
            print(json.dumps(record.as_dict(), indent=2))
        else:
            unit = next(
                (u for u in report.units if u.unit == record.unit), None
            )
            print(render_strand_timeline(record, unit))
        return 0
    if args.json:
        print(json.dumps(report.summary.as_dict(), indent=2))
    else:
        print(render_why_summary(report, title=f"decode forensics ({args.input})"))
    return 0


def cmd_bench(args) -> int:
    from repro.benchmarking import (
        CompareThresholds,
        SUITES,
        compare_reports,
        load_bench_report,
        render_comparison,
        run_suite,
        write_bench_report,
    )
    from repro.benchmarking.report import default_output_path

    if args.list:
        from repro.benchmarking import get_suite

        for name in sorted(SUITES):
            workloads = get_suite(name)
            print(f"{name}: {', '.join(w.name for w in workloads)}")
        print("kernels: distance + signature kernel microbenchmarks (single thread)")
        return 0

    if args.compare:
        from repro.benchmarking import (
            KERNEL_BENCH_KIND,
            compare_kernel_reports,
            load_kernel_bench,
        )

        baseline_path, new_path = args.compare
        try:
            raw_baseline = json.loads(Path(baseline_path).read_text())
            raw_new = json.loads(Path(new_path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        kernel_kinds = [
            report.get("kind") == KERNEL_BENCH_KIND
            for report in (raw_baseline, raw_new)
        ]
        try:
            if any(kernel_kinds):
                if not all(kernel_kinds):
                    raise ValueError(
                        "cannot compare a kernel-bench report against a "
                        "pipeline bench report"
                    )
                # Kernel docs gate correctness exactly; timing only warns
                # (kernel timings do not transfer between machines).
                result = compare_kernel_reports(
                    load_kernel_bench(baseline_path), load_kernel_bench(new_path)
                )
            else:
                baseline = load_bench_report(baseline_path)
                new = load_bench_report(new_path)
                thresholds = CompareThresholds(
                    max_latency_ratio=args.max_latency_ratio,
                    quality_tolerance=args.quality_tolerance,
                    quality_only=args.quality_only,
                    identical_quality=args.identical_quality,
                )
                result = compare_reports(baseline, new, thresholds)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            render_comparison(
                result, title=f"bench comparison ({baseline_path} -> {new_path})"
            )
        )
        return 0 if result.ok else 1

    if not args.suite:
        print("error: provide --suite NAME, --compare BASE NEW, or --list",
              file=sys.stderr)
        return 2
    if args.suite == "kernels":
        # Kernel microbenchmarks produce their own document kind; they
        # measure the distance/signature kernels in isolation, single
        # threaded, so --workers does not apply.
        from repro.benchmarking.kernels import render_kernel_bench, run_kernel_bench

        report = run_kernel_bench()
        print(render_kernel_bench(report))
        path = Path(args.out or default_output_path("kernels"))
        path.write_text(json.dumps(report, indent=2) + "\n")
        _log.info("kernel bench report written to %s", path)
        return 0
    report = run_suite(args.suite, progress=_log.info, workers=args.workers)
    path = write_bench_report(report, args.out or default_output_path(args.suite))
    _log.info("bench report written to %s", path)
    return 0


def cmd_stats(args) -> int:
    from repro.analysis.poolstats import pool_statistics

    tracer = _start_trace(args)
    strands = _read_lines(args.input)
    with as_tracer(tracer).span("analysis.poolstats", strands=len(strands)):
        stats = pool_statistics(strands, max_run=args.max_run)
    rows = [
        ["strands", str(stats.strands)],
        ["GC mean / min / max", f"{stats.gc_mean:.3f} / {stats.gc_min:.3f} / {stats.gc_max:.3f}"],
        ["GC violations", str(stats.gc_violations)],
        ["longest homopolymer", str(stats.homopolymer_max)],
        [f"runs > {args.max_run}", str(stats.homopolymer_violations)],
        ["verdict", "clean" if stats.clean else "screen violations present"],
    ]
    print(format_table(["quantity", "value"], rows, title="pool statistics"))
    _finish_trace(args, tracer)
    return 0 if stats.clean else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def _add_encoding_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--payload-bytes", type=int, default=30)
    parser.add_argument("--data-columns", type=int, default=60)
    parser.add_argument("--parity-columns", type=int, default=20)
    parser.add_argument("--index-bytes", type=int, default=3)
    parser.add_argument(
        "--layout", choices=("baseline", "gini", "dnamapper"), default="baseline"
    )


def _add_workers_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the parallel stages (default 1: in-process; "
        "outputs are identical at any worker count)",
    )


def _add_channel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--channel",
        choices=("iid", "solqc", "illumina", "nanopore"),
        default="iid",
    )
    parser.add_argument("--error-rate", type=float, default=0.06)
    parser.add_argument("--coverage", type=int, default=10)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DNA Storage Toolkit command line"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    encode = commands.add_parser("encode", help="file -> strands")
    encode.add_argument("input")
    encode.add_argument("output")
    _add_encoding_arguments(encode)
    encode.set_defaults(handler=cmd_encode)

    decode = commands.add_parser("decode", help="strands -> file")
    decode.add_argument("input")
    decode.add_argument("output")
    decode.add_argument(
        "--params",
        required=True,
        help="params sidecar written by `encode` (…/strands.txt.params.json)",
    )
    decode.set_defaults(handler=cmd_decode)

    simulate = commands.add_parser("simulate", help="strands -> noisy reads")
    simulate.add_argument("input")
    simulate.add_argument("output")
    _add_channel_arguments(simulate)
    simulate.add_argument("--seed", type=int, default=0)
    _add_workers_argument(simulate)
    simulate.set_defaults(handler=cmd_simulate)

    cluster = commands.add_parser("cluster", help="reads -> clusters")
    cluster.add_argument("input")
    cluster.add_argument("output")
    cluster.add_argument("--signature", choices=("qgram", "wgram"), default="qgram")
    cluster.add_argument("--seed", type=int, default=0)
    _add_workers_argument(cluster)
    cluster.set_defaults(handler=cmd_cluster)

    reconstruct = commands.add_parser(
        "reconstruct", help="reads + clusters -> consensus strands"
    )
    reconstruct.add_argument("reads")
    reconstruct.add_argument("clusters")
    reconstruct.add_argument("output")
    reconstruct.add_argument("--algorithm", choices=sorted(_RECONSTRUCTORS), default="nwa")
    reconstruct.add_argument("--length", type=int, required=True)
    reconstruct.add_argument("--min-cluster-size", type=int, default=2)
    _add_workers_argument(reconstruct)
    reconstruct.set_defaults(handler=cmd_reconstruct)

    pipeline = commands.add_parser("pipeline", help="full round trip")
    pipeline.add_argument("input")
    pipeline.add_argument("output")
    _add_encoding_arguments(pipeline)
    _add_channel_arguments(pipeline)
    pipeline.add_argument("--signature", choices=("qgram", "wgram"), default="qgram")
    pipeline.add_argument("--algorithm", choices=sorted(_RECONSTRUCTORS), default="nwa")
    pipeline.add_argument("--seed", type=int, default=0)
    pipeline.add_argument(
        "--provenance",
        metavar="PATH",
        default=None,
        help="record the per-strand provenance ledger to PATH as JSONL "
        "(render with `repro why PATH`)",
    )
    _add_workers_argument(pipeline)
    pipeline.set_defaults(handler=cmd_pipeline)

    density = commands.add_parser("density", help="information-density report")
    _add_encoding_arguments(density)
    density.set_defaults(handler=cmd_density)

    stats = commands.add_parser(
        "stats", help="synthesis-screen statistics for a strands file"
    )
    stats.add_argument("input")
    stats.add_argument("--max-run", type=int, default=6)
    stats.set_defaults(handler=cmd_stats)

    trace = commands.add_parser(
        "trace", help="render a saved trace (latency + counters report)"
    )
    trace.add_argument("input", help="JSONL trace written by --trace")
    trace.add_argument(
        "--chrome",
        metavar="PATH",
        default=None,
        help="also convert the trace to Chrome Trace Event JSON at PATH "
        "(open in Perfetto or chrome://tracing)",
    )
    trace.set_defaults(handler=cmd_trace)

    why = commands.add_parser(
        "why",
        help="decode-failure forensics from a saved provenance ledger",
    )
    why.add_argument(
        "input", help="JSONL ledger written by `pipeline --provenance`"
    )
    why.add_argument(
        "--strand",
        type=int,
        default=None,
        metavar="ID",
        help="show one strand's full lineage timeline instead of the summary",
    )
    why.add_argument(
        "--json",
        action="store_true",
        help="emit the summary (or strand record) as JSON for scripting",
    )
    why.set_defaults(handler=cmd_why)

    bench = commands.add_parser(
        "bench",
        help="run a benchmark suite (BENCH_<suite>.json) or compare two runs",
    )
    bench.add_argument(
        "--suite", default=None, help="suite to run (see --list)"
    )
    bench.add_argument(
        "--out",
        default=None,
        help="output path for the bench report (default BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--compare",
        nargs=2,
        metavar=("BASELINE", "NEW"),
        default=None,
        help="compare two bench reports; exits 1 on regression",
    )
    bench.add_argument(
        "--max-latency-ratio",
        type=float,
        default=1.5,
        help="flag when new total p50 latency exceeds baseline by this factor",
    )
    bench.add_argument(
        "--quality-tolerance",
        type=float,
        default=0.10,
        help="relative tolerance applied to every quality metric",
    )
    bench.add_argument(
        "--quality-only",
        action="store_true",
        help="skip latency comparison (for cross-machine baselines, e.g. CI)",
    )
    bench.add_argument(
        "--identical-quality",
        action="store_true",
        help="require byte-identical quality sections (worker-count sweeps)",
    )
    bench.add_argument(
        "--list", action="store_true", help="list suites and their workloads"
    )
    _add_workers_argument(bench)
    bench.set_defaults(handler=cmd_bench)

    # Global observability flags: every subcommand (except the renderers
    # and the bench harness, which manage their own tracers) can record
    # its run as a JSONL trace and/or a Chrome (Perfetto) timeline, and
    # opt into per-stage resource profiling.
    for name, subparser in commands.choices.items():
        if name not in ("trace", "why", "bench"):
            subparser.add_argument(
                "--trace",
                metavar="PATH",
                default=None,
                help="record spans + counters to PATH as JSONL "
                "(render with `repro trace PATH`)",
            )
            subparser.add_argument(
                "--trace-out",
                metavar="PATH",
                default=None,
                help="record the run as Chrome Trace Event JSON at PATH — "
                "one lane per worker process; open in Perfetto or "
                "chrome://tracing",
            )
            subparser.add_argument(
                "--profile",
                action="store_true",
                help="profile top-level stages (tracemalloc current/peak "
                "memory + GC counts as span attributes); implies tracing",
            )

    # Global logging flags: the CLI defaults to info-level diagnostics;
    # -v raises to debug, --log-level overrides outright.
    for subparser in commands.choices.values():
        subparser.add_argument(
            "--log-level",
            choices=("debug", "info", "warning", "error"),
            default=None,
            help="diagnostic verbosity (default info)",
        )
        subparser.add_argument(
            "-v",
            "--verbose",
            action="count",
            default=0,
            help="raise diagnostic verbosity (-v = debug)",
        )
        subparser.add_argument(
            "--log-format",
            choices=("human", "json"),
            default="human",
            help="diagnostic format: compact lines or JSONL records",
        )

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    # The CLI runs one verbosity step above the library default (info,
    # not warning) so file-written notices are visible; diagnostics go to
    # stdout so they interleave with the primary output they annotate.
    configure_logging(
        resolve_level(args.log_level, args.verbose + 1),
        fmt=args.log_format,
        stream=sys.stdout,
    )
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
