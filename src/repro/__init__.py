"""DNA Storage Toolkit - a modular end-to-end DNA data storage codec and simulator.

A reproduction of Sharma et al., ISPASS 2024.  The pipeline has five
swappable stages (Section III of the paper):

1. **Encoding** (:mod:`repro.codec`) - file -> DNA strands, with an outer
   Reed-Solomon code over a molecule matrix and the Baseline / Gini /
   DNAMapper layouts.
2. **Simulation** (:mod:`repro.simulation`, :mod:`repro.seq2seq`) - wetlab
   noise channels: the naive i.i.d. model, a SOLQC-style nucleotide-
   conditioned model, an alignment-fitted positional model, and a trainable
   GRU+attention sequence-to-sequence model.
3. **Clustering** (:mod:`repro.clustering`) - the Rashtchian et al.
   algorithm with q-gram and w-gram signatures and automatic threshold
   configuration.
4. **Trace reconstruction** (:mod:`repro.reconstruction`) - BMA-lookahead,
   double-sided BMA and Needleman-Wunsch/POA consensus.
5. **Decoding** (:mod:`repro.codec`) - matrix reassembly, RS errata
   decoding, file recovery.

Quick start::

    from repro import Pipeline, PipelineConfig

    result = Pipeline(PipelineConfig()).run(b"hello, dna")
    assert result.success and result.data == b"hello, dna"
"""

from repro.codec import (
    DNADecoder,
    DNAEncoder,
    EncodingParameters,
    BaselineLayout,
    GiniLayout,
    DNAMapperLayout,
    PrimerPair,
    design_primer_library,
)
from repro.simulation import (
    IIDChannel,
    SOLQCChannel,
    WetlabReferenceChannel,
    LearnedProfileChannel,
    ConstantCoverage,
    PoissonCoverage,
    NegativeBinomialCoverage,
    sequence_pool,
)
from repro.clustering import ClusteringConfig, RashtchianClusterer
from repro.reconstruction import (
    BMAReconstructor,
    DoubleSidedBMAReconstructor,
    NWConsensusReconstructor,
)
from repro.pipeline import DNAPool, PCRParameters, Pipeline, PipelineConfig

__version__ = "1.0.0"

__all__ = [
    "DNAEncoder",
    "DNADecoder",
    "EncodingParameters",
    "BaselineLayout",
    "GiniLayout",
    "DNAMapperLayout",
    "PrimerPair",
    "design_primer_library",
    "IIDChannel",
    "SOLQCChannel",
    "WetlabReferenceChannel",
    "LearnedProfileChannel",
    "ConstantCoverage",
    "PoissonCoverage",
    "NegativeBinomialCoverage",
    "sequence_pool",
    "ClusteringConfig",
    "RashtchianClusterer",
    "BMAReconstructor",
    "DoubleSidedBMAReconstructor",
    "NWConsensusReconstructor",
    "Pipeline",
    "PipelineConfig",
    "DNAPool",
    "PCRParameters",
    "__version__",
]
