"""The Tensor type: a numpy array plus a backward tape.

Gradients are accumulated by topologically-sorted reverse traversal of the
computation graph.  Broadcasting is handled by summing gradients back over
broadcast dimensions, so layers can use numpy-style shapes freely.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Tuple

import numpy as np

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def _unbroadcast(gradient: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum *gradient* down to *shape* (inverse of numpy broadcasting)."""
    if gradient.shape == shape:
        return gradient
    # Remove leading broadcast axes.
    while gradient.ndim > len(shape):
        gradient = gradient.sum(axis=0)
    # Collapse axes that were broadcast from 1.
    for axis, size in enumerate(shape):
        if size == 1 and gradient.shape[axis] != 1:
            gradient = gradient.sum(axis=axis, keepdims=True)
    return gradient


class Tensor:
    """A differentiable numpy array.

    Parameters
    ----------
    data:
        Array (or array-like) payload; floats are stored as float64 for
        numerically stable gradient checking.
    requires_grad:
        Whether gradients should be accumulated into ``.grad``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad and _grad_enabled
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()

    # ------------------------------------------------------------------
    # Graph bookkeeping
    # ------------------------------------------------------------------

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        result = Tensor(data, requires_grad=requires)
        if requires:
            result._parents = parents
            result._backward = backward
        return result

    def _accumulate(self, gradient: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += gradient

    def backward(self, gradient: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor (default seed: ones)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that requires no grad")
        if gradient is None:
            gradient = np.ones_like(self.data)
        ordering: List[Tensor] = []
        seen = set()

        def visit(node: "Tensor") -> None:
            if id(node) in seen or not node.requires_grad:
                return
            seen.add(id(node))
            for parent in node._parents:
                visit(parent)
            ordering.append(node)

        visit(self)
        grads = {id(self): np.asarray(gradient, dtype=np.float64)}
        for node in reversed(ordering):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            node._accumulate(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if not parent.requires_grad or parent_grad is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"

    # ------------------------------------------------------------------
    # Arithmetic (each op returns a new Tensor wired into the tape)
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(gradient):
            return (
                _unbroadcast(gradient, self.data.shape),
                _unbroadcast(gradient, other.data.shape),
            )

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(gradient):
            return (
                _unbroadcast(gradient * other.data, self.data.shape),
                _unbroadcast(gradient * self.data, other.data.shape),
            )

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(gradient):
            return (
                _unbroadcast(gradient / other.data, self.data.shape),
                _unbroadcast(
                    -gradient * self.data / (other.data**2), other.data.shape
                ),
            )

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("Tensor exponents are not supported; use exp/log")

        def backward(gradient):
            return (gradient * exponent * self.data ** (exponent - 1),)

        return Tensor._make(self.data**exponent, (self,), backward)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)

        def backward(gradient):
            grad_self = gradient @ other.data.swapaxes(-1, -2)
            grad_other = self.data.swapaxes(-1, -2) @ gradient
            return (
                _unbroadcast(grad_self, self.data.shape),
                _unbroadcast(grad_other, other.data.shape),
            )

        return Tensor._make(self.data @ other.data, (self, other), backward)

    __matmul__ = matmul

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(gradient):
            grad = gradient
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
            return (np.broadcast_to(grad, self.data.shape).copy(),)

        return Tensor._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        total = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / total)

    def reshape(self, *shape) -> "Tensor":
        original = self.data.shape
        return Tensor._make(
            self.data.reshape(*shape), (self,), lambda g: (g.reshape(original),)
        )

    def transpose(self, *axes) -> "Tensor":
        axes = axes or tuple(reversed(range(self.data.ndim)))
        inverse = np.argsort(axes)
        return Tensor._make(
            self.data.transpose(axes), (self,), lambda g: (g.transpose(inverse),)
        )

    def __getitem__(self, key) -> "Tensor":
        def backward(gradient):
            grad = np.zeros_like(self.data)
            np.add.at(grad, key, gradient)
            return (grad,)

        return Tensor._make(self.data[key], (self,), backward)
