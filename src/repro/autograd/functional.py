"""Differentiable functions beyond Tensor's operators."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic sigmoid."""
    out = 1.0 / (1.0 + np.exp(-x.data))

    def backward(gradient):
        return (gradient * out * (1.0 - out),)

    return Tensor._make(out, (x,), backward)


def tanh(x: Tensor) -> Tensor:
    """Elementwise hyperbolic tangent."""
    out = np.tanh(x.data)

    def backward(gradient):
        return (gradient * (1.0 - out**2),)

    return Tensor._make(out, (x,), backward)


def relu(x: Tensor) -> Tensor:
    """Elementwise rectifier."""
    mask = x.data > 0

    def backward(gradient):
        return (gradient * mask,)

    return Tensor._make(x.data * mask, (x,), backward)


def exp(x: Tensor) -> Tensor:
    """Elementwise exponential."""
    out = np.exp(x.data)

    def backward(gradient):
        return (gradient * out,)

    return Tensor._make(out, (x,), backward)


def log(x: Tensor) -> Tensor:
    """Elementwise natural logarithm."""

    def backward(gradient):
        return (gradient / x.data,)

    return Tensor._make(np.log(x.data), (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along *axis*."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out = exps / exps.sum(axis=axis, keepdims=True)

    def backward(gradient):
        dot = (gradient * out).sum(axis=axis, keepdims=True)
        return (out * (gradient - dot),)

    return Tensor._make(out, (x,), backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along *axis*."""
    tensors = list(tensors)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def backward(gradient):
        return tuple(np.split(gradient, splits, axis=axis))

    return Tensor._make(
        np.concatenate([t.data for t in tensors], axis=axis), tuple(tensors), backward
    )


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new *axis*."""
    tensors = list(tensors)

    def backward(gradient):
        moved = np.moveaxis(gradient, axis, 0)
        return tuple(moved[i] for i in range(len(tensors)))

    return Tensor._make(
        np.stack([t.data for t in tensors], axis=axis), tuple(tensors), backward
    )


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of *weight* by integer *indices*."""
    indices = np.asarray(indices)

    def backward(gradient):
        grad = np.zeros_like(weight.data)
        np.add.at(grad, indices.reshape(-1), gradient.reshape(-1, weight.data.shape[1]))
        return (grad,)

    return Tensor._make(weight.data[indices], (weight,), backward)


def cross_entropy_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy between *logits* and integer *targets*.

    ``logits`` has shape ``(batch, classes)``; ``targets`` is ``(batch,)``.
    The fused formulation keeps the backward pass stable and cheap.
    """
    targets = np.asarray(targets)
    if logits.data.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.data.shape}")
    batch = logits.data.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    probabilities = exps / exps.sum(axis=1, keepdims=True)
    losses = -np.log(probabilities[np.arange(batch), targets] + 1e-12)

    def backward(gradient):
        grad = probabilities.copy()
        grad[np.arange(batch), targets] -= 1.0
        return (grad * (gradient / batch),)

    return Tensor._make(losses.mean(), (logits,), backward)


def dropout(x: Tensor, rate: float, rng: np.random.Generator) -> Tensor:
    """Inverted dropout; pass ``rate=0`` (or use no_grad) at inference."""
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"rate must be in [0, 1), got {rate}")
    if rate == 0.0:
        return x
    mask = (rng.random(x.data.shape) >= rate) / (1.0 - rate)

    def backward(gradient):
        return (gradient * mask,)

    return Tensor._make(x.data * mask, (x,), backward)
