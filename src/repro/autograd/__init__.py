"""A minimal reverse-mode automatic differentiation engine on numpy.

PyTorch is not a dependency of this toolkit, so the GRU+attention channel
simulator (Figure 4 of the paper) is built on this small autograd: a
:class:`~repro.autograd.tensor.Tensor` wrapping a numpy array, a tape of
differentiable operations, and an Adam optimiser.  The engine supports the
ops a recurrent encoder-decoder needs — matmul, broadcasting arithmetic,
sigmoid/tanh, softmax cross-entropy, concatenation, embedding lookup — and
nothing more.
"""

from repro.autograd.tensor import Tensor, no_grad
from repro.autograd import functional
from repro.autograd.optim import SGD, Adam

__all__ = ["Tensor", "no_grad", "functional", "SGD", "Adam"]
