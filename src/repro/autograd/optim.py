"""Gradient-descent optimisers for the autograd engine."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.autograd.tensor import Tensor


class Optimizer:
    """Base class holding the parameter list."""

    def __init__(self, parameters: Iterable[Tensor]):
        self.parameters: List[Tensor] = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def clip_gradients(self, max_norm: float) -> float:
        """Scale gradients so their global L2 norm is at most *max_norm*."""
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float((parameter.grad**2).sum())
        norm = total**0.5
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale
        return norm

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            velocity *= self.momentum
            velocity -= self.lr * parameter.grad
            parameter.data += velocity


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        correction1 = 1.0 - self.beta1**self._step
        correction2 = 1.0 - self.beta2**self._step
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / correction1
            v_hat = v / correction2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
