"""A SOLQC-style channel: error rates conditioned on the nucleotide.

SOLQC (Sabary et al., *Bioinformatics* 2021) characterises synthetic oligo
libraries with per-nucleotide error statistics.  Following the description
in Section V-A of the paper, this channel draws insertion, deletion and
substitution events with probabilities that depend on the *current base*,
and models **pre-insertions only** (a base may be inserted before the
current base, never after it).  The paper notes this asymmetry makes forward
trace reconstruction harder than reverse reconstruction — an effect visible
in the per-index error profiles this toolkit reproduces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dna.alphabet import BASES
from repro.simulation.channel import Channel


def _uniform_substitutes(base: str) -> Dict[str, float]:
    others = [b for b in BASES if b != base]
    return {b: 1.0 / len(others) for b in others}


@dataclass
class SOLQCRates:
    """Error statistics for one nucleotide.

    ``substitution_distribution`` gives the conditional probability of each
    replacement base given that a substitution happened; it defaults to
    uniform over the other three bases.
    """

    pre_insertion: float = 0.008
    deletion: float = 0.01
    substitution: float = 0.008
    substitution_distribution: Optional[Dict[str, float]] = field(default=None)

    def __post_init__(self) -> None:
        for name in ("pre_insertion", "deletion", "substitution"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.deletion + self.substitution > 1.0:
            raise ValueError("deletion + substitution must not exceed 1")


#: A default profile loosely patterned on published Illumina/Twist
#: statistics: G and T are more error-prone than A and C, deletions dominate.
DEFAULT_PROFILE: Dict[str, SOLQCRates] = {
    "A": SOLQCRates(pre_insertion=0.006, deletion=0.008, substitution=0.006),
    "C": SOLQCRates(pre_insertion=0.006, deletion=0.009, substitution=0.007),
    "G": SOLQCRates(pre_insertion=0.009, deletion=0.013, substitution=0.010),
    "T": SOLQCRates(pre_insertion=0.008, deletion=0.012, substitution=0.009),
}


class SOLQCChannel(Channel):
    """Nucleotide-conditioned channel with pre-insertions only."""

    def __init__(self, profile: Optional[Dict[str, SOLQCRates]] = None):
        profile = dict(profile or DEFAULT_PROFILE)
        missing = set(BASES) - set(profile)
        if missing:
            raise ValueError(f"profile missing rates for bases: {sorted(missing)}")
        self.profile = profile
        self._sub_tables = {}
        for base, rates in profile.items():
            distribution = rates.substitution_distribution or _uniform_substitutes(base)
            if base in distribution:
                raise ValueError(
                    f"substitution distribution for {base} must not include itself"
                )
            total = sum(distribution.values())
            if total <= 0:
                raise ValueError(f"substitution distribution for {base} sums to 0")
            bases = sorted(distribution)
            weights = [distribution[b] / total for b in bases]
            self._sub_tables[base] = (bases, weights)

    @classmethod
    def scaled(cls, factor: float) -> "SOLQCChannel":
        """Return a channel with the default profile scaled by *factor*."""
        profile = {
            base: SOLQCRates(
                pre_insertion=min(1.0, rates.pre_insertion * factor),
                deletion=min(1.0, rates.deletion * factor),
                substitution=min(1.0, rates.substitution * factor),
            )
            for base, rates in DEFAULT_PROFILE.items()
        }
        return cls(profile)

    def transmit(self, strand: str, rng: random.Random) -> str:
        output = []
        for base in strand:
            rates = self.profile[base]
            if rng.random() < rates.pre_insertion:
                output.append(rng.choice(BASES))
            draw = rng.random()
            if draw < rates.deletion:
                continue
            if draw < rates.deletion + rates.substitution:
                bases, weights = self._sub_tables[base]
                output.append(rng.choices(bases, weights=weights)[0])
            else:
                output.append(base)
        return "".join(output)
