"""Wetlab simulation: synthesis, storage and sequencing noise (Section V).

The channels in this subpackage turn clean encoded strands into noisy
*reads*.  Three families are provided, mirroring the paper:

* :class:`~repro.simulation.iid.IIDChannel` — the naive baseline following
  Rashtchian et al.: independent insertion/deletion/substitution trials with
  identical probabilities at every index.
* :class:`~repro.simulation.solqc.SOLQCChannel` — a probabilistic model with
  error probabilities conditioned on the nucleotide, including
  pre-insertions (but not post-insertions).
* data-driven models — :class:`~repro.simulation.learned_profile.LearnedProfileChannel`
  (alignment-fitted positional statistics) and the GRU+attention seq2seq
  model in :mod:`repro.seq2seq`, both trained on paired clean/noisy strands.

:class:`~repro.simulation.wetlab_reference.WetlabReferenceChannel` plays the
role of the *real wetlab*: a position-dependent, bursty channel whose
internals are hidden from the models under evaluation (see DESIGN.md §4).
"""

from repro.simulation.channel import Channel, ComposedChannel, IdentityChannel
from repro.simulation.iid import IIDChannel
from repro.simulation.solqc import SOLQCChannel, SOLQCRates
from repro.simulation.wetlab_reference import WetlabReferenceChannel
from repro.simulation.learned_profile import LearnedProfileChannel
from repro.simulation.coverage import (
    ConstantCoverage,
    CoverageModel,
    InjectedDropoutCoverage,
    NegativeBinomialCoverage,
    PoissonCoverage,
    SequencingRun,
    sequence_pool,
)
from repro.simulation.dataset import PairedDataset, make_paired_dataset

__all__ = [
    "Channel",
    "ComposedChannel",
    "IdentityChannel",
    "IIDChannel",
    "SOLQCChannel",
    "SOLQCRates",
    "WetlabReferenceChannel",
    "LearnedProfileChannel",
    "CoverageModel",
    "ConstantCoverage",
    "InjectedDropoutCoverage",
    "PoissonCoverage",
    "NegativeBinomialCoverage",
    "SequencingRun",
    "sequence_pool",
    "PairedDataset",
    "make_paired_dataset",
]
