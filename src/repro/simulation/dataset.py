"""Paired clean/noisy datasets for training data-driven simulators.

The paper trains its RNN on ~10K clusters of paired strands with a
7988:998:998 train/validation/test split.  These helpers produce the same
structure from any channel: random clean strands, a configurable number of
noisy reads per strand, and a deterministic cluster-level split.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dna.alphabet import random_sequence
from repro.simulation.channel import Channel


@dataclass
class PairedDataset:
    """Clusters of (clean strand, noisy reads) with a train/val/test split.

    ``clusters[i]`` is ``(clean, [reads...])``.  Split index lists refer to
    cluster positions, so all reads of one strand land in the same split —
    leaking reads of a training strand into the test set would inflate the
    fidelity numbers.
    """

    clusters: List[Tuple[str, List[str]]]
    train_indices: List[int]
    val_indices: List[int]
    test_indices: List[int]

    def _pairs(self, indices: List[int]) -> List[Tuple[str, str]]:
        pairs = []
        for index in indices:
            clean, reads = self.clusters[index]
            pairs.extend((clean, read) for read in reads)
        return pairs

    @property
    def train_pairs(self) -> List[Tuple[str, str]]:
        return self._pairs(self.train_indices)

    @property
    def val_pairs(self) -> List[Tuple[str, str]]:
        return self._pairs(self.val_indices)

    @property
    def test_pairs(self) -> List[Tuple[str, str]]:
        return self._pairs(self.test_indices)

    def test_clusters(self) -> List[Tuple[str, List[str]]]:
        return [self.clusters[index] for index in self.test_indices]


def make_paired_dataset(
    channel: Channel,
    num_clusters: int,
    strand_length: int,
    reads_per_cluster: int,
    split: Tuple[float, float, float] = (0.8, 0.1, 0.1),
    rng: Optional[random.Random] = None,
) -> PairedDataset:
    """Generate a clustered paired dataset through *channel*.

    Parameters
    ----------
    split:
        Fractions for train/validation/test; must sum to 1 (±1e-6).
    """
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    if reads_per_cluster <= 0:
        raise ValueError("reads_per_cluster must be positive")
    if abs(sum(split) - 1.0) > 1e-6:
        raise ValueError(f"split fractions must sum to 1, got {split}")
    rng = rng or random.Random()
    clusters: List[Tuple[str, List[str]]] = []
    for _ in range(num_clusters):
        clean = random_sequence(strand_length, rng)
        reads = [channel.transmit(clean, rng) for _ in range(reads_per_cluster)]
        clusters.append((clean, reads))

    order = list(range(num_clusters))
    rng.shuffle(order)
    train_end = int(round(split[0] * num_clusters))
    val_end = train_end + int(round(split[1] * num_clusters))
    return PairedDataset(
        clusters=clusters,
        train_indices=order[:train_end],
        val_indices=order[train_end:val_end],
        test_indices=order[val_end:],
    )
