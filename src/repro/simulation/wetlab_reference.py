"""A position-dependent, bursty channel standing in for real wetlab data.

The paper evaluates its simulators against 270K real Nanopore reads.  That
dataset is not redistributable, so this module provides the substitution
described in DESIGN.md §4: a channel whose error process has the properties
the paper attributes to real wetlab data —

* error probability depends on the index (elevated at the 5' start, rising
  sharply toward the 3' end);
* deletions come in *bursts* whose lengths follow a geometric distribution;
* substitutions are base-dependent and biased (not uniform over the three
  alternatives);
* reads are occasionally truncated.

It is used as the **held-out ground truth**: the simulators under evaluation
(Rashtchian i.i.d., SOLQC, and the learned models) never see these
parameters — learned models are fitted only on (clean, noisy) pairs sampled
from it, exactly as the paper's models are fitted on wetlab pairs.
"""

from __future__ import annotations

import math
import random
from typing import Dict

from repro.dna.alphabet import BASES
from repro.simulation.channel import Channel

#: Biased substitution preferences (row: true base, columns: read base).
_SUBSTITUTION_BIAS: Dict[str, Dict[str, float]] = {
    "A": {"G": 0.5, "T": 0.3, "C": 0.2},
    "C": {"T": 0.5, "A": 0.3, "G": 0.2},
    "G": {"A": 0.5, "T": 0.35, "C": 0.15},
    "T": {"C": 0.5, "G": 0.3, "A": 0.2},
}


class WetlabReferenceChannel(Channel):
    """The toolkit's stand-in for a real synthesis+sequencing channel.

    Parameters
    ----------
    p_ins, p_del, p_sub:
        Baseline per-index event probabilities, modulated by position.
    start_boost, start_decay:
        Multiplicative error elevation at the 5' start and its decay length
        in bases (synthesis initiation artefacts).
    end_ramp:
        Strength of the quadratic error ramp toward the 3' end
        (sequencing signal degradation).
    burst_prob, burst_continue:
        Probability that a deletion starts a burst, and the geometric
        continuation probability of the burst.
    p_truncate, truncate_window:
        Probability that a read is truncated, and the trailing fraction of
        the strand within which the cut point falls.
    """

    def __init__(
        self,
        p_ins: float = 0.012,
        p_del: float = 0.02,
        p_sub: float = 0.018,
        start_boost: float = 1.2,
        start_decay: float = 8.0,
        end_ramp: float = 2.2,
        burst_prob: float = 0.25,
        burst_continue: float = 0.45,
        p_truncate: float = 0.02,
        truncate_window: float = 0.2,
    ):
        for name, value in (("p_ins", p_ins), ("p_del", p_del), ("p_sub", p_sub)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 <= burst_continue < 1.0:
            raise ValueError("burst_continue must be in [0, 1)")
        self.p_ins = p_ins
        self.p_del = p_del
        self.p_sub = p_sub
        self.start_boost = start_boost
        self.start_decay = start_decay
        self.end_ramp = end_ramp
        self.burst_prob = burst_prob
        self.burst_continue = burst_continue
        self.p_truncate = p_truncate
        self.truncate_window = truncate_window
        self._sub_tables = {
            base: (sorted(prefs), [prefs[b] for b in sorted(prefs)])
            for base, prefs in _SUBSTITUTION_BIAS.items()
        }

    @classmethod
    def illumina(cls) -> "WetlabReferenceChannel":
        """A short-read profile: low rates, substitution-dominated, flat.

        Illumina sequencing-by-synthesis has per-base error around 0.1-1%,
        dominated by substitutions, with a mild quality decay along the
        read and essentially no bursts.
        """
        return cls(
            p_ins=0.0005,
            p_del=0.001,
            p_sub=0.004,
            start_boost=0.2,
            start_decay=5.0,
            end_ramp=0.8,
            burst_prob=0.02,
            burst_continue=0.2,
            p_truncate=0.002,
            truncate_window=0.1,
        )

    @classmethod
    def nanopore(cls) -> "WetlabReferenceChannel":
        """A long-read profile: high rates, indel-heavy, bursty.

        Nanopore basecalls run at several percent error with
        deletion-dominated bursts (homopolymer compression) and more
        frequent truncations — the regime the paper's wetlab experiment
        (Section IX) sequenced in.
        """
        return cls(
            p_ins=0.02,
            p_del=0.035,
            p_sub=0.025,
            start_boost=1.5,
            start_decay=10.0,
            end_ramp=2.5,
            burst_prob=0.35,
            burst_continue=0.5,
            p_truncate=0.04,
            truncate_window=0.25,
        )

    def position_multiplier(self, position: int, length: int) -> float:
        """The positional error-rate multiplier at *position* of *length*."""
        if length <= 1:
            return 1.0
        relative = position / (length - 1)
        start_term = self.start_boost * math.exp(-position / self.start_decay)
        end_term = self.end_ramp * relative * relative
        return 1.0 + start_term + end_term

    def transmit(self, strand: str, rng: random.Random) -> str:
        length = len(strand)
        output = []
        position = 0
        while position < length:
            base = strand[position]
            multiplier = self.position_multiplier(position, length)
            p_ins = min(0.9, self.p_ins * multiplier)
            p_del = min(0.9, self.p_del * multiplier)
            p_sub = min(0.9, self.p_sub * multiplier)
            if rng.random() < p_ins:
                output.append(rng.choice(BASES))
            draw = rng.random()
            if draw < p_del:
                position += 1
                if rng.random() < self.burst_prob:
                    while position < length and rng.random() < self.burst_continue:
                        position += 1
                continue
            if draw < p_del + p_sub:
                bases, weights = self._sub_tables[base]
                output.append(rng.choices(bases, weights=weights)[0])
            else:
                output.append(base)
            position += 1
        read = "".join(output)
        if read and rng.random() < self.p_truncate:
            window = max(1, int(len(read) * self.truncate_window))
            cut = len(read) - rng.randrange(1, window + 1)
            read = read[:max(1, cut)]
        return read
