"""An alignment-fitted, data-driven channel model.

This is the statistical counterpart of the paper's RNN simulator: instead of
assuming identical, independent error rates at every index (Section V-A's
baseline), it *learns* the channel from paired (clean, noisy) strands —

* per-position-bin insertion, deletion and substitution rates,
* an empirical deletion/insertion **run-length** distribution (errors come
  in batches in real data; Section V-A),
* a base-conditioned substitution matrix and insertion base distribution.

Fitting aligns each pair with Needleman-Wunsch and tallies the implied edit
script.  The model never sees the generating channel's parameters, only its
outputs — mirroring how the paper's models are trained on wetlab reads.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.dna.alphabet import BASES
from repro.dna.alignment import edit_operations
from repro.simulation.channel import Channel

_MAX_RUN = 30


class LearnedProfileChannel(Channel):
    """Channel with positional rates estimated from paired data.

    Use :meth:`fit` (or the :func:`fit_learned_profile` convenience) before
    transmitting; an unfitted channel raises :class:`RuntimeError`.

    Parameters
    ----------
    bins:
        Number of relative-position bins the strand is divided into when
        estimating and replaying positional rates.
    """

    def __init__(self, bins: int = 25):
        if bins <= 0:
            raise ValueError(f"bins must be positive, got {bins}")
        self.bins = bins
        self._fitted = False
        self.p_ins: List[float] = []
        self.p_del: List[float] = []
        self.p_sub: List[float] = []
        self.del_run_lengths: List[int] = []
        self.del_run_weights: List[float] = []
        self.ins_run_lengths: List[int] = []
        self.ins_run_weights: List[float] = []
        self.sub_tables: Dict[str, Tuple[List[str], List[float]]] = {}
        self.ins_bases: Tuple[List[str], List[float]] = (list(BASES), [0.25] * 4)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, pairs: Sequence[Tuple[str, str]]) -> "LearnedProfileChannel":
        """Estimate the channel from ``(clean, noisy)`` strand pairs."""
        if not pairs:
            raise ValueError("fit requires at least one (clean, noisy) pair")
        bin_positions = [0] * self.bins
        bin_ins_runs = [0] * self.bins
        bin_del_runs = [0] * self.bins
        bin_subs = [0] * self.bins
        del_runs: Dict[int, int] = {}
        ins_runs: Dict[int, int] = {}
        sub_counts: Dict[str, Dict[str, int]] = {
            base: {b: 0 for b in BASES if b != base} for base in BASES
        }
        ins_base_counts = {base: 0 for base in BASES}

        for clean, noisy in pairs:
            if not clean:
                raise ValueError("clean strands must be non-empty")
            length = len(clean)
            ops = edit_operations(clean, noisy)
            index = 0
            while index < len(ops):
                op = ops[index]
                bin_index = self._bin(op.ref_pos, length)
                if op.kind in ("match", "sub"):
                    bin_positions[bin_index] += 1
                    if op.kind == "sub":
                        bin_subs[bin_index] += 1
                        sub_counts[op.ref_base][op.query_base] += 1
                    index += 1
                    continue
                run = 1
                while index + run < len(ops) and ops[index + run].kind == op.kind:
                    run += 1
                run_capped = min(run, _MAX_RUN)
                if op.kind == "del":
                    bin_del_runs[bin_index] += 1
                    for offset in range(run):
                        pos_bin = self._bin(op.ref_pos + offset, length)
                        bin_positions[pos_bin] += 1
                    del_runs[run_capped] = del_runs.get(run_capped, 0) + 1
                else:  # insertion run
                    bin_ins_runs[bin_index] += 1
                    ins_runs[run_capped] = ins_runs.get(run_capped, 0) + 1
                    for offset in range(run):
                        ins_base_counts[ops[index + offset].query_base] += 1
                index += run

        self.p_ins = []
        self.p_del = []
        self.p_sub = []
        for b in range(self.bins):
            positions = max(1, bin_positions[b])
            self.p_ins.append(min(0.95, bin_ins_runs[b] / positions))
            self.p_del.append(min(0.95, bin_del_runs[b] / positions))
            self.p_sub.append(min(0.95, bin_subs[b] / positions))

        self.del_run_lengths, self.del_run_weights = _distribution(del_runs)
        self.ins_run_lengths, self.ins_run_weights = _distribution(ins_runs)
        self.sub_tables = {}
        for base, counts in sub_counts.items():
            total = sum(counts.values())
            alternatives = sorted(counts)
            if total == 0:
                weights = [1.0 / len(alternatives)] * len(alternatives)
            else:
                weights = [counts[b] / total for b in alternatives]
            self.sub_tables[base] = (alternatives, weights)
        total_ins = sum(ins_base_counts.values())
        if total_ins:
            bases = sorted(ins_base_counts)
            self.ins_bases = (bases, [ins_base_counts[b] / total_ins for b in bases])
        self._fitted = True
        return self

    def _bin(self, position: int, length: int) -> int:
        if length <= 1:
            return 0
        relative = min(position, length - 1) / (length - 1)
        return min(self.bins - 1, int(relative * self.bins))

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def transmit(self, strand: str, rng: random.Random) -> str:
        if not self._fitted:
            raise RuntimeError("LearnedProfileChannel must be fitted before use")
        length = len(strand)
        output = []
        position = 0
        while position < length:
            bin_index = self._bin(position, length)
            if rng.random() < self.p_ins[bin_index]:
                run = rng.choices(self.ins_run_lengths, weights=self.ins_run_weights)[0]
                bases, weights = self.ins_bases
                output.extend(rng.choices(bases, weights=weights, k=run))
            draw = rng.random()
            if draw < self.p_del[bin_index]:
                run = rng.choices(self.del_run_lengths, weights=self.del_run_weights)[0]
                position += run
                continue
            base = strand[position]
            if draw < self.p_del[bin_index] + self.p_sub[bin_index]:
                alternatives, weights = self.sub_tables[base]
                output.append(rng.choices(alternatives, weights=weights)[0])
            else:
                output.append(base)
            position += 1
        return "".join(output)


def _distribution(counts: Dict[int, int]) -> Tuple[List[int], List[float]]:
    if not counts:
        return [1], [1.0]
    lengths = sorted(counts)
    total = sum(counts.values())
    return lengths, [counts[length] / total for length in lengths]


def fit_learned_profile(
    pairs: Sequence[Tuple[str, str]], bins: int = 25
) -> LearnedProfileChannel:
    """Convenience: construct and fit a :class:`LearnedProfileChannel`."""
    return LearnedProfileChannel(bins=bins).fit(pairs)
