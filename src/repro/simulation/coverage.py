"""Sequencing coverage models and whole-pool sequencing.

Synthesis produces millions of physical copies of each designed strand; PCR
and sampling then determine how many *reads* of each strand the sequencer
reports.  The average reads-per-strand is the *sequencing coverage*
(Section II-E).  Real coverage is overdispersed — some strands are read far
more often than others and a few drop out entirely — which the
negative-binomial model captures.
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dna.readpool import ReadPool, as_read_pool
from repro.observability.trace import worker_span
from repro.parallel import WorkerPool, derive_seed
from repro.simulation.channel import Channel


class CoverageModel(ABC):
    """Distribution of the number of reads obtained per designed strand."""

    @abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Draw a read count for one strand."""

    def sample_for(self, strand_index: int, rng: random.Random) -> int:
        """Draw a read count for the strand at *strand_index*.

        The default ignores the index and delegates to :meth:`sample`
        (consuming the RNG identically, so existing seeds reproduce).
        Index-aware models — :class:`InjectedDropoutCoverage` — override
        this to target specific strands.
        """
        return self.sample(rng)


class ConstantCoverage(CoverageModel):
    """Exactly *coverage* reads per strand (the paper's Table II/III setup)."""

    def __init__(self, coverage: int):
        if coverage < 0:
            raise ValueError(f"coverage must be non-negative, got {coverage}")
        self.coverage = coverage

    def sample(self, rng: random.Random) -> int:
        return self.coverage


class PoissonCoverage(CoverageModel):
    """Poisson-distributed read counts (ideal random sampling)."""

    def __init__(self, mean: float):
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        self.mean = mean

    def sample(self, rng: random.Random) -> int:
        # Knuth's algorithm is fine for the means used here (< ~100).
        threshold = math.exp(-self.mean)
        count, product = 0, rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count


class NegativeBinomialCoverage(CoverageModel):
    """Overdispersed read counts (gamma-mixed Poisson).

    ``dispersion`` is the gamma shape; smaller values mean more skewed
    coverage.  As ``dispersion -> inf`` this converges to Poisson.
    """

    def __init__(self, mean: float, dispersion: float = 4.0):
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        if dispersion <= 0:
            raise ValueError(f"dispersion must be positive, got {dispersion}")
        self.mean = mean
        self.dispersion = dispersion

    def sample(self, rng: random.Random) -> int:
        rate = rng.gammavariate(self.dispersion, self.mean / self.dispersion)
        return PoissonCoverage(rate).sample(rng)


class InjectedDropoutCoverage(CoverageModel):
    """Wrap a coverage model and force chosen strands to zero reads.

    A fault-injection harness for the provenance forensics: the wrapped
    model decides every other strand's count (drawing from the RNG even
    for dropped strands, so the rest of the run is bit-for-bit identical
    to the uninjected baseline).
    """

    def __init__(self, base: CoverageModel, drop: List[int]):
        self.base = base
        self.drop = frozenset(drop)

    def sample(self, rng: random.Random) -> int:
        return self.base.sample(rng)

    def sample_for(self, strand_index: int, rng: random.Random) -> int:
        count = self.base.sample_for(strand_index, rng)
        return 0 if strand_index in self.drop else count


@dataclass
class SequencingRun:
    """The output of sequencing a pool: noisy reads plus ground truth.

    ``origins[i]`` is the index (into ``references``) of the strand that
    produced ``reads[i]`` — the label clustering is evaluated against.
    ``dropouts`` lists reference indices that received zero reads.
    """

    reads: List[str]
    origins: List[int]
    references: List[str]
    dropouts: List[int] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Mean reads per reference strand."""
        if not self.references:
            return 0.0
        return len(self.reads) / len(self.references)

    def true_clusters(self) -> Dict[int, List[int]]:
        """Ground-truth clustering: reference index -> read indices."""
        clusters: Dict[int, List[int]] = {}
        for read_index, origin in enumerate(self.origins):
            clusters.setdefault(origin, []).append(read_index)
        return clusters

    def read_pool(self) -> Optional[ReadPool]:
        """Columnar :class:`~repro.dna.readpool.ReadPool` over ``reads``.

        Built lazily and cached against the identity of the current read
        list, so the batched consumers (per-read edit distances, quality
        estimation) share one encoding pass.  ``None`` when the reads
        cannot be pooled (non-latin-1 payloads).
        """
        cached = getattr(self, "_read_pool_cache", None)
        if cached is None or cached[0] is not self.reads:
            cached = (self.reads, as_read_pool(self.reads))
            self._read_pool_cache = cached
        return cached[1]


def _sequence_chunk(indexed_references, extra):
    """Worker entry point: sequence a contiguous slice of the pool.

    Every strand runs under its own RNG derived from the pool seed and
    its index, so the result depends only on ``(seed, index)`` — not on
    which worker or chunk the strand landed in.
    """
    channel, coverage, base_seed = extra
    per_strand = []
    with worker_span(
        "simulation.sequence_strands", strands=len(indexed_references)
    ) as span:
        for reference_index, reference in indexed_references:
            strand_rng = random.Random(
                derive_seed(base_seed, "strand", reference_index)
            )
            count = coverage.sample_for(reference_index, strand_rng)
            reads = [
                read
                for read in channel.transmit_many(reference, count, strand_rng)
                if read
            ]
            per_strand.append((reference_index, count, reads))
        span.set("reads", sum(len(reads) for _, _, reads in per_strand))
    return per_strand


def sequence_pool(
    references: List[str],
    channel: Channel,
    coverage: CoverageModel,
    rng: Optional[random.Random] = None,
    shuffle: bool = True,
    seed: Optional[int] = None,
    pool: Optional[WorkerPool] = None,
) -> SequencingRun:
    """Simulate sequencing a pool of strands.

    Each reference strand receives a read count drawn from *coverage*; each
    read is an independent transmission through *channel*.  Reads are
    shuffled by default, because a sequencer does not report reads grouped
    by molecule — clustering has to undo exactly this mixing.

    Randomness is governed by *seed* (falling back to one drawn from *rng*):
    every strand gets its own derived RNG stream and the shuffle its own,
    so the run can be sharded across a
    :class:`~repro.parallel.WorkerPool` and still produce byte-identical
    output at any worker count.
    """
    if seed is None:
        seed = (rng or random.Random()).getrandbits(64)
    extra = (channel, coverage, seed)
    indexed = list(enumerate(references))
    if pool is None:
        chunks = [_sequence_chunk(indexed, extra)]
    else:
        chunks = pool.run_chunks(_sequence_chunk, indexed, extra)

    reads: List[str] = []
    origins: List[int] = []
    dropouts: List[int] = []
    for per_strand in chunks:
        for reference_index, count, strand_reads in per_strand:
            if count == 0:
                dropouts.append(reference_index)
                continue
            reads.extend(strand_reads)
            origins.extend(reference_index for _ in strand_reads)
    if shuffle:
        shuffle_rng = random.Random(derive_seed(seed, "shuffle"))
        order = list(range(len(reads)))
        shuffle_rng.shuffle(order)
        reads = [reads[i] for i in order]
        origins = [origins[i] for i in order]
    return SequencingRun(
        reads=reads, origins=origins, references=list(references), dropouts=dropouts
    )
