"""The noisy-channel interface every wetlab simulator implements."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence


class Channel(ABC):
    """A stochastic transformation from a clean strand to one noisy read.

    Channels are stateless with respect to the strands they transmit; all
    randomness flows through the caller-supplied generator so that whole
    experiments are reproducible from a single seed.
    """

    @abstractmethod
    def transmit(self, strand: str, rng: random.Random) -> str:
        """Return one noisy read of *strand*."""

    def expected_rates(self) -> Optional[Dict[str, float]]:
        """Configured per-base ``{"sub", "ins", "del"}`` rates, when known.

        Channels with explicit rate knobs override this so the quality
        observatory can report observed-vs-configured drift; data-driven
        and positional channels return ``None``.
        """
        return None

    def transmit_many(self, strand: str, copies: int, rng: random.Random) -> list:
        """Return *copies* independent noisy reads of *strand*."""
        if copies < 0:
            raise ValueError(f"copies must be non-negative, got {copies}")
        return [self.transmit(strand, rng) for _ in range(copies)]


class IdentityChannel(Channel):
    """A noiseless channel; useful for pipeline plumbing tests."""

    def transmit(self, strand: str, rng: random.Random) -> str:
        return strand


class ComposedChannel(Channel):
    """Apply several channels in sequence (e.g. synthesis then sequencing).

    Real pipelines accumulate noise across stages — synthesis, storage decay,
    and sequencing — each with its own profile; composing per-stage channels
    models that layering directly.
    """

    def __init__(self, stages: Sequence[Channel]):
        if not stages:
            raise ValueError("ComposedChannel requires at least one stage")
        self.stages = list(stages)

    def transmit(self, strand: str, rng: random.Random) -> str:
        for stage in self.stages:
            strand = stage.transmit(strand, rng)
        return strand

    def expected_rates(self):
        """First-order sum of the stage rates (valid while rates are small)."""
        per_stage = [stage.expected_rates() for stage in self.stages]
        if any(rates is None for rates in per_stage):
            return None
        return {
            kind: sum(rates[kind] for rates in per_stage)
            for kind in ("sub", "ins", "del")
        }
