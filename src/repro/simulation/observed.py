"""Observed channel-quality estimation.

A simulation channel is configured with nominal error rates, but what the
rest of the pipeline experiences is the *realised* noise in the reads it
emitted.  This module measures that directly: a sample of reads is
globally aligned against the strands that produced them (the same
Needleman-Wunsch attribution the learned channel models use when fitting)
and the implied substitution / insertion / deletion counts are normalised
per reference base.

The result is the :class:`~repro.observability.quality.ChannelQuality`
section of the pipeline's quality report — the live counterpart of
Table I's simulator-fidelity metrics, and the number ``repro bench``
gates on so a channel refactor cannot silently drift from its configured
rates.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.dna.alignment import edit_operations
from repro.dna.distance import levenshtein_distance
from repro.dna.distance_batch import myers_levenshtein_batch
from repro.observability.quality import ChannelQuality
from repro.parallel import WorkerPool
from repro.simulation.coverage import SequencingRun

#: Default cap on reads aligned per run; alignment is O(len^2) per read,
#: and a few hundred reads pin the rate estimates to well under a percent.
DEFAULT_SAMPLE = 200


def _read_edit_chunk(pairs, _extra) -> List[int]:
    """Worker entry point: edit distance for (read, reference) pairs."""
    return [levenshtein_distance(read, reference) for read, reference in pairs]


def _origin_edit_chunk(groups, _extra) -> List[List[int]]:
    """Worker entry point: batched edit distances for (reference, reads) groups.

    Each group shares one reference, so its Myers bitvector masks are
    packed once and every read of that origin is swept in uint64 lanes.
    ``myers_levenshtein_batch`` is exact (identical to
    :func:`~repro.dna.distance.levenshtein_distance` per pair), so the
    merged result matches the scalar pair loop byte for byte.
    """
    return [
        myers_levenshtein_batch(reference, reads).tolist()
        for reference, reads in groups
    ]


def per_read_edit_distances(
    run: SequencingRun, pool: Optional[WorkerPool] = None
) -> List[int]:
    """Edit distance of *every* read to its origin reference, in read order.

    Where :func:`observe_channel_quality` samples reads to estimate rates,
    this aligns the full run — it feeds the provenance ledger, which needs
    a per-read number, not an aggregate.  Reads are grouped by origin so
    each reference's Myers masks are built once and its reads are compared
    in one batched uint64-lane sweep; groups shard over *pool*
    (:meth:`~repro.parallel.WorkerPool.map_chunks` preserves item order)
    and results scatter back to read order, so the output is identical at
    any worker count.
    """
    positions_by_origin: "dict[int, List[int]]" = {}
    for position, origin in enumerate(run.origins):
        positions_by_origin.setdefault(origin, []).append(position)
    read_pool = run.read_pool()
    groups = []
    for origin, positions in positions_by_origin.items():
        if read_pool is not None:
            reads: Sequence[str] = read_pool.view(positions)
        else:
            reads = [run.reads[position] for position in positions]
        groups.append((run.references[origin], reads))
    if pool is None:
        per_group = _origin_edit_chunk(groups, None)
    else:
        per_group = pool.map_chunks(_origin_edit_chunk, groups, None)
    distances = [0] * len(run.reads)
    for (_, positions), group_distances in zip(
        positions_by_origin.items(), per_group
    ):
        for position, distance in zip(positions, group_distances):
            distances[position] = distance
    return distances


def observe_channel_quality(
    run: SequencingRun,
    channel: Optional[object] = None,
    sample: int = DEFAULT_SAMPLE,
    seed: int = 0,
) -> Optional[ChannelQuality]:
    """Estimate realised error rates for one sequencing run.

    Parameters
    ----------
    run:
        The simulated run; ``origins`` pairs every read with its
        reference strand.
    channel:
        The channel that produced the run.  When it implements
        ``expected_rates()`` (e.g. :class:`~repro.simulation.iid.IIDChannel`),
        the configured rates are recorded next to the observed ones.
    sample:
        Maximum reads to align (0 disables observation entirely).
    seed:
        Sampling seed; sampling is deterministic for a given run.

    Returns ``None`` when observation is disabled or the run is empty.
    """
    if sample <= 0 or not run.reads:
        return None
    indices = list(range(len(run.reads)))
    if len(indices) > sample:
        indices = random.Random(seed).sample(indices, sample)

    substitutions = insertions = deletions = 0
    bases = 0
    length_delta_sum = 0
    max_length_delta = 0
    for index in indices:
        read = run.reads[index]
        reference = run.references[run.origins[index]]
        for op in edit_operations(reference, read):
            if op.kind == "sub":
                substitutions += 1
            elif op.kind == "ins":
                insertions += 1
            elif op.kind == "del":
                deletions += 1
        bases += len(reference)
        delta = len(read) - len(reference)
        length_delta_sum += delta
        max_length_delta = max(max_length_delta, abs(delta))

    expected = getattr(channel, "expected_rates", None)
    expected_rates = expected() if callable(expected) else None

    return ChannelQuality(
        reads_sampled=len(indices),
        bases_compared=bases,
        substitution_rate=substitutions / bases if bases else 0.0,
        insertion_rate=insertions / bases if bases else 0.0,
        deletion_rate=deletions / bases if bases else 0.0,
        mean_length_delta=length_delta_sum / len(indices),
        max_length_delta=max_length_delta,
        expected_substitution_rate=(
            expected_rates.get("sub") if expected_rates else None
        ),
        expected_insertion_rate=(
            expected_rates.get("ins") if expected_rates else None
        ),
        expected_deletion_rate=(
            expected_rates.get("del") if expected_rates else None
        ),
    )
