"""The naive i.i.d. edit channel of Rashtchian et al. (Section V-A).

At every index of the input strand exactly one of insertion, deletion or
substitution is trialled with user-specified probabilities ``p_ins``,
``p_del``, ``p_sub``; every index of every strand is independent and
identically distributed.  This is the "generalized data model" most DNA
storage research simulates with — and, as the paper shows, it produces reads
that are unrealistically easy to reconstruct.
"""

from __future__ import annotations

import random

from repro.dna.alphabet import BASES
from repro.simulation.channel import Channel

_SUBSTITUTES = {base: BASES.replace(base, "") for base in BASES}


class IIDChannel(Channel):
    """Independent insertion/deletion/substitution trials per index."""

    def __init__(self, p_ins: float = 0.01, p_del: float = 0.01, p_sub: float = 0.01):
        for name, value in (("p_ins", p_ins), ("p_del", p_del), ("p_sub", p_sub)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if p_ins + p_del + p_sub > 1.0:
            raise ValueError("p_ins + p_del + p_sub must not exceed 1")
        self.p_ins = p_ins
        self.p_del = p_del
        self.p_sub = p_sub

    @classmethod
    def from_total_rate(cls, total: float) -> "IIDChannel":
        """Split a total per-base error rate evenly across the three types.

        This matches the convention of the paper's clustering experiments
        (Table II), where a single "error rate" knob is swept.
        """
        share = total / 3.0
        return cls(p_ins=share, p_del=share, p_sub=share)

    @property
    def total_rate(self) -> float:
        """The per-index probability that *some* error occurs."""
        return self.p_ins + self.p_del + self.p_sub

    def expected_rates(self):
        """The configured rates, for observed-vs-configured quality checks."""
        return {"sub": self.p_sub, "ins": self.p_ins, "del": self.p_del}

    def transmit(self, strand: str, rng: random.Random) -> str:
        output = []
        ins_cutoff = self.p_ins
        del_cutoff = self.p_ins + self.p_del
        sub_cutoff = self.p_ins + self.p_del + self.p_sub
        for base in strand:
            draw = rng.random()
            if draw < ins_cutoff:
                output.append(rng.choice(BASES))
                output.append(base)
            elif draw < del_cutoff:
                continue
            elif draw < sub_cutoff:
                output.append(rng.choice(_SUBSTITUTES[base]))
            else:
                output.append(base)
        return "".join(output)
