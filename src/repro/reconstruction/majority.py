"""Naive per-position majority vote, with no realignment at all.

Included as the weakest baseline: it is exact when the channel produces
substitutions only, and collapses as soon as indels shift reads out of
phase.  Useful in tests and as a contrast in the reconstruction benchmarks.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

from repro.reconstruction.base import Reconstructor
from repro.reconstruction.matrix import majority_consensus_batch, stack_clusters


class MajorityVoteReconstructor(Reconstructor):
    """Column-wise plurality over unaligned reads."""

    def reconstruct_batch(
        self, clusters: Sequence[Sequence[str]], expected_length: int
    ) -> List[str]:
        """Batched column votes over one stacked code matrix.

        Byte-identical to looping :meth:`reconstruct` (the scalar oracle);
        clusters off the ACGT alphabet fall back to that loop.
        """
        stacked = stack_clusters(clusters)
        if stacked is None:
            return super().reconstruct_batch(clusters, expected_length)
        matrix, lengths, starts = stacked
        return majority_consensus_batch(matrix, lengths, starts, expected_length)

    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        reads = self._validate(cluster)
        consensus: List[str] = []
        for position in range(expected_length):
            votes = Counter(
                read[position] for read in reads if position < len(read)
            )
            if votes:
                top = max(votes.values())
                winners = sorted(
                    base for base, count in votes.items() if count == top
                )
                consensus.append(winners[0])
            else:
                consensus.append("A")
        return "".join(consensus)
