"""Naive per-position majority vote, with no realignment at all.

Included as the weakest baseline: it is exact when the channel produces
substitutions only, and collapses as soon as indels shift reads out of
phase.  Useful in tests and as a contrast in the reconstruction benchmarks.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Sequence

from repro.reconstruction.base import Reconstructor


class MajorityVoteReconstructor(Reconstructor):
    """Column-wise plurality over unaligned reads."""

    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        reads = self._validate(cluster)
        consensus: List[str] = []
        for position in range(expected_length):
            votes = Counter(
                read[position] for read in reads if position < len(read)
            )
            if votes:
                top = max(votes.values())
                winners = sorted(
                    base for base, count in votes.items() if count == top
                )
                consensus.append(winners[0])
            else:
                consensus.append("A")
        return "".join(consensus)
