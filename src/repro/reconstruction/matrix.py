"""Matrix consensus kernels: whole-batch column votes over stacked clusters.

The scalar reconstructors walk every cluster position-by-position with a
``Counter`` per column; for a pool of clusters that is thousands of tiny
Python loops.  This module stacks *all* clusters of a batch into one padded
``uint8`` code matrix (rows = reads, ``starts`` delimiting clusters, pad
code 4) and advances every cluster's vote in lockstep:

* :func:`majority_consensus_batch` — per-column base counts via one
  ``bincount`` over ``cluster_id * 5 + code`` keys, ``argmax`` in ACGT
  order (first maximum = lexicographically smallest base, exactly the
  scalar ``Counter``/sorted tie-break);
* :func:`bma_consensus_batch` — the BMA-lookahead loop with the column
  vote, reference window and realignment scoring vectorized over every
  read lane of every cluster at once.

Both are byte-identical to their scalar counterparts
(:class:`~repro.reconstruction.majority.MajorityVoteReconstructor` and
:class:`~repro.reconstruction.bma.BMAReconstructor._run`), which stay in
the tree as the oracles the property tests compare against.  Inputs off
the ACGT alphabet are rejected by :func:`stack_clusters` (returns
``None``) and the callers fall back to the scalar path.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.dna.alphabet import BASES
from repro.dna.qgram import _encode_acgt
from repro.dna.readpool import PAD_CODE, ReadPoolView, _padded_codes

_BASES_U8 = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8)


def stack_clusters(
    clusters: Sequence[Sequence[str]],
) -> "Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]":
    """Stack *clusters* into ``(matrix, lengths, starts)`` or ``None``.

    ``matrix`` is ``(total_reads, max_len)`` uint8 base codes padded with
    :data:`~repro.dna.readpool.PAD_CODE`; ``starts`` has ``len(clusters)+1``
    entries delimiting each cluster's row block.  Returns ``None`` when any
    read falls off the ACGT fast path (callers use the scalar
    reconstructors there).  Raises :class:`ValueError` when a cluster has
    no non-empty read, mirroring ``Reconstructor._validate``.
    """
    starts = np.zeros(len(clusters) + 1, dtype=np.int64)
    np.cumsum([len(cluster) for cluster in clusters], out=starts[1:])
    first = clusters[0] if clusters else None
    if isinstance(first, ReadPoolView) and all(
        isinstance(cluster, ReadPoolView) and cluster.pool is first.pool
        for cluster in clusters
    ):
        pool = first.pool
        indices = (
            np.concatenate([cluster.indices for cluster in clusters])
            if clusters
            else np.empty(0, dtype=np.int64)
        )
        if not bool(pool.acgt_per_read[indices].all()):
            return None
        lengths = pool.lengths[indices]
        matrix, lengths = _padded_codes(
            pool.codes, pool.offsets[:-1][indices], lengths, PAD_CODE
        )
    else:
        encoded: List[np.ndarray] = []
        for cluster in clusters:
            for read in cluster:
                codes = _encode_acgt(read)
                if codes is None:
                    return None
                encoded.append(codes)
        lengths = np.fromiter(
            (codes.size for codes in encoded), dtype=np.int64, count=len(encoded)
        )
        width = int(lengths.max()) if lengths.size else 0
        matrix = np.full((len(encoded), width), PAD_CODE, dtype=np.uint8)
        for row, codes in enumerate(encoded):
            matrix[row, : codes.size] = codes
    # Same contract as Reconstructor._validate: a cluster of only empty
    # reads (or no reads) has nothing to vote with.
    cluster_max = np.zeros(len(clusters), dtype=np.int64)
    np.maximum.at(cluster_max, _cluster_ids(starts), lengths)
    if np.any(cluster_max == 0):
        raise ValueError("cluster must contain at least one non-empty read")
    return matrix, lengths, starts


def _cluster_ids(starts: np.ndarray) -> np.ndarray:
    """Row -> cluster index map for a ``starts`` boundary array."""
    counts = np.diff(starts)
    return np.repeat(np.arange(counts.size, dtype=np.int64), counts)


def _codes_to_strings(consensus: np.ndarray) -> List[str]:
    """Decode a ``(clusters, length)`` consensus code matrix to strings."""
    if consensus.size == 0:
        return ["" for _ in range(consensus.shape[0])]
    text = _BASES_U8[consensus]
    return [row.tobytes().decode("ascii") for row in text]


def majority_consensus_batch(
    matrix: np.ndarray,
    lengths: np.ndarray,
    starts: np.ndarray,
    expected_length: int,
) -> List[str]:
    """Column-wise plurality for every cluster at once.

    Byte-identical to ``MajorityVoteReconstructor.reconstruct`` per
    cluster: among tied top counts the lexicographically smallest base
    wins (``argmax`` returns the first maximum, and rows are in ACGT
    order), and columns where every read has ended vote ``A`` (all-zero
    counts also argmax to 0).
    """
    cluster_count = starts.size - 1
    width = min(matrix.shape[1], expected_length)
    consensus = np.zeros((cluster_count, expected_length), dtype=np.uint8)
    if width and matrix.shape[0]:
        window = matrix[:, :width]
        counts = np.empty((cluster_count, width, 4), dtype=np.int64)
        segments = starts[:-1]
        for base in range(4):
            counts[:, :, base] = np.add.reduceat(
                window == base, segments, axis=0, dtype=np.int64
            )
        consensus[:, :width] = np.argmax(counts, axis=2)
    return _codes_to_strings(consensus)


def reverse_matrix(
    matrix: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Per-row reversal of the occupied prefix: ``row[:len][::-1]``, pad kept.

    Gives double-sided BMA its reversed-read matrix without decoding back
    to strings.
    """
    rows, width = matrix.shape
    reversed_matrix = np.full_like(matrix, PAD_CODE)
    if width and rows:
        columns = np.arange(width, dtype=np.int64)
        source = lengths[:, None] - 1 - columns[None, :]
        valid = source >= 0
        flat = matrix.ravel()
        row_base = np.arange(rows, dtype=np.int64)[:, None] * width
        reversed_matrix[valid] = flat[(row_base + source)[valid]]
    return reversed_matrix


def bma_consensus_batch(
    matrix: np.ndarray,
    lengths: np.ndarray,
    starts: np.ndarray,
    expected_length: int,
    lookahead: int,
) -> Tuple[List[str], int]:
    """BMA-lookahead over every cluster in lockstep.

    Returns ``(consensus_strings, lookahead_invocations)``.  Each step
    mirrors ``BMAReconstructor._run`` exactly — plurality vote with the
    min-base tie-break, agreeing pointers advance, the reference window is
    the plurality over *agreeing* reads truncated at the first empty
    offset, and disagreeing reads advance by the best of (+1, 0, +2)
    window-match scores with ties preferring +1 then 0 then 2 (empty
    window: +1).  Clusters whose reads are all exhausted consume their own
    ``random.Random(0xB3A)`` filler stream, one draw per padded position,
    exactly like the scalar code.
    """
    rows, width = matrix.shape
    cluster_count = starts.size - 1
    cluster_id = _cluster_ids(starts)
    flat = matrix.ravel()
    row_base = np.arange(rows, dtype=np.int64) * width
    limit = max(width - 1, 0)

    pointers = np.zeros(rows, dtype=np.int64)
    consensus = np.zeros((cluster_count, expected_length), dtype=np.uint8)
    fillers: List[Optional[random.Random]] = [None] * cluster_count
    invocations = 0
    vote_keys = cluster_id * 5

    for position in range(expected_length):
        active = pointers < lengths
        current = flat[row_base + np.minimum(pointers, limit)]
        votes = np.bincount(
            vote_keys + np.where(active, current, PAD_CODE),
            minlength=cluster_count * 5,
        ).reshape(cluster_count, 5)[:, :4]
        majority = np.argmax(votes, axis=1).astype(np.uint8)
        exhausted = votes.sum(axis=1) == 0
        if exhausted.any():
            for cluster in np.nonzero(exhausted)[0]:
                filler = fillers[cluster]
                if filler is None:
                    filler = fillers[cluster] = random.Random(0xB3A)
                majority[cluster] = BASES.index(filler.choice(BASES))
        consensus[:, position] = majority

        lane_majority = majority[cluster_id]
        agree = active & (current == lane_majority)
        disagree = active & ~agree
        pointers += agree
        disagree_count = int(np.count_nonzero(disagree))
        if disagree_count == 0:
            continue
        invocations += disagree_count

        # Shared symbol gathers for offsets 0 .. lookahead+1: the window
        # vote needs offsets [0, lookahead) of the advanced pointers and
        # the realign hypotheses need [inc + offset] for inc in (0, 1, 2).
        span = lookahead + 2
        symbols = np.empty((span, rows), dtype=np.uint8)
        in_bounds = np.empty((span, rows), dtype=bool)
        for offset in range(span):
            target = pointers + offset
            in_bounds[offset] = target < lengths
            symbols[offset] = flat[row_base + np.minimum(target, limit)]

        # Reference window: plurality over agreeing reads, truncated at the
        # first offset where no agreeing read still has a symbol.
        window_codes = np.empty((lookahead, cluster_count), dtype=np.uint8)
        window_valid = np.empty((lookahead, cluster_count), dtype=bool)
        alive = np.ones(cluster_count, dtype=bool)
        for offset in range(lookahead):
            contributes = agree & in_bounds[offset]
            window_votes = np.bincount(
                vote_keys + np.where(contributes, symbols[offset], PAD_CODE),
                minlength=cluster_count * 5,
            ).reshape(cluster_count, 5)[:, :4]
            alive = alive & (window_votes.sum(axis=1) > 0)
            window_valid[offset] = alive
            window_codes[offset] = np.argmax(window_votes, axis=1)

        # Realign: score each increment hypothesis against the window.
        scores = np.zeros((3, rows), dtype=np.int64)
        for increment in range(3):
            for offset in range(lookahead):
                lane_valid = window_valid[offset][cluster_id]
                matched = (
                    in_bounds[increment + offset]
                    & lane_valid
                    & (symbols[increment + offset] == window_codes[offset][cluster_id])
                )
                scores[increment] += matched
        best = np.maximum(np.maximum(scores[0], scores[1]), scores[2])
        # Tie preference (1, 0, 2): substitution is the least disruptive.
        choice = np.where(
            scores[1] == best, 1, np.where(scores[0] == best, 0, 2)
        )
        empty_window = ~window_valid[0][cluster_id]
        choice = np.where(empty_window, 1, choice)
        pointers += np.where(disagree, choice, 0)

    return _codes_to_strings(consensus), invocations
