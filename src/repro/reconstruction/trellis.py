"""Trellis-based symbolwise MAP reconstruction (after Trellis BMA [35]).

Srinivasavaradhan et al. ("Trellis BMA: coded trace reconstruction on IDS
channels for DNA storage", ISIT 2021 — the source of the paper's real-data
experiments) decode each position of the original strand by running
forward-backward (BCJR) over an insertion/deletion/substitution lattice per
read and combining the per-read posteriors.

This module implements the *separate-trellis with decision feedback*
variant in refinement form:

1. start from a cheap initial estimate (double-sided BMA);
2. for every read, run a scaled forward/backward pass over the edit
   lattice between the current estimate and the read;
3. for every position, combine the per-read base posteriors (log-sum) and
   re-decide the base;
4. repeat for a configurable number of sweeps.

The channel model matches :class:`~repro.simulation.iid.IIDChannel`: per
source position one of {insert, delete, substitute, copy} with fixed
probabilities; insertions emit a uniform base.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.dna.alphabet import BASES
from repro.reconstruction.base import Reconstructor
from repro.reconstruction.double_bma import DoubleSidedBMAReconstructor

_BASE_INDEX = {base: i for i, base in enumerate(BASES)}
_EPS = 1e-300


class TrellisMAPReconstructor(Reconstructor):
    """Iterative per-position MAP decoding over per-read edit lattices.

    Parameters
    ----------
    p_ins, p_del, p_sub:
        The assumed IDS channel rates.  In practice these are estimated
        from data; they need not be exact — the posterior is robust to
        moderate mis-specification.
    sweeps:
        Refinement iterations over the whole strand.
    max_cluster:
        Reads beyond this count are ignored (posteriors saturate quickly).
    initial:
        Reconstructor producing the starting estimate (default double-sided
        BMA).  The refinement re-decides *bases*, not lengths, so frame
        shifts present in the initial estimate survive; initialising from
        the NW consensus (fewer shifts) trades time for accuracy.
    """

    def __init__(
        self,
        p_ins: float = 0.02,
        p_del: float = 0.02,
        p_sub: float = 0.02,
        sweeps: int = 2,
        max_cluster: int = 16,
        initial: Optional[Reconstructor] = None,
    ):
        if min(p_ins, p_del, p_sub) < 0 or p_ins + p_del + p_sub >= 1:
            raise ValueError("channel rates must be non-negative and sum below 1")
        if sweeps < 1:
            raise ValueError("sweeps must be at least 1")
        if max_cluster < 1:
            raise ValueError("max_cluster must be at least 1")
        self.p_ins = p_ins
        self.p_del = p_del
        self.p_sub = p_sub
        self.p_copy = 1.0 - p_ins - p_del - p_sub
        self.sweeps = sweeps
        self.max_cluster = max_cluster
        self._initial = initial or DoubleSidedBMAReconstructor()

    # ------------------------------------------------------------------

    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        reads = self._validate(cluster)[: self.max_cluster]
        estimate = self._initial.reconstruct(reads, expected_length)
        encoded_reads = [self._encode(read) for read in reads if read]
        for _ in range(self.sweeps):
            log_posterior = np.zeros((expected_length, 4))
            for read in encoded_reads:
                posterior = self._read_posterior(estimate, read)
                log_posterior += np.log(posterior + _EPS)
            decided = log_posterior.argmax(axis=1)
            updated = "".join(BASES[b] for b in decided)
            if updated == estimate:
                break
            estimate = updated
        return estimate

    # ------------------------------------------------------------------

    @staticmethod
    def _encode(read: str) -> np.ndarray:
        return np.fromiter(
            (_BASE_INDEX[base] for base in read), dtype=np.int64, count=len(read)
        )

    def _emissions(self, source: np.ndarray, read: np.ndarray) -> np.ndarray:
        """em[i, j] = P(read[j] emitted | source base i), shape (L, m)."""
        match = source[:, None] == read[None, :]
        return np.where(match, self.p_copy, self.p_sub / 3.0)

    def _read_posterior(self, estimate: str, read: np.ndarray) -> np.ndarray:
        """Per-position base posterior for one read, shape (L, 4)."""
        source = self._encode(estimate)
        length, m = len(source), len(read)
        emissions = self._emissions(source, read)
        ins = self.p_ins / 4.0
        p_del = self.p_del

        # Scaled forward pass: F[i, j] ~ P(read[:j] | estimate[:i]).
        forward = np.zeros((length + 1, m + 1))
        forward[0, 0] = 1.0
        # Row 0: only insertions can consume read characters.
        for j in range(1, m + 1):
            forward[0, j] = forward[0, j - 1] * ins
        for i in range(1, length + 1):
            row = forward[i]
            prev = forward[i - 1]
            row[0] = prev[0] * p_del
            # diagonal + delete transitions, vectorised over j
            row[1:] = prev[1:] * p_del + prev[:-1] * emissions[i - 1]
            # insertion chain: row[j] += row[j-1] * ins, resolved serially
            # via cumulative products is numerically messy; a single python
            # loop over j stays fast enough at strand scale.
            acc = row[0]
            for j in range(1, m + 1):
                acc = row[j] + acc * ins
                row[j] = acc
            total = row.sum()
            if total > 0:
                row /= total

        # Scaled backward pass: B[i, j] ~ P(read[j:] | estimate[i:]).
        backward = np.zeros((length + 1, m + 1))
        backward[length, m] = 1.0
        for j in range(m - 1, -1, -1):
            backward[length, j] = backward[length, j + 1] * ins
        for i in range(length - 1, -1, -1):
            row = backward[i]
            nxt = backward[i + 1]
            row[m] = nxt[m] * p_del
            row[:-1] = nxt[:-1] * p_del + nxt[1:] * emissions[i]
            acc = row[m]
            for j in range(m - 1, -1, -1):
                acc = row[j] + acc * ins
                row[j] = acc
            total = row.sum()
            if total > 0:
                row /= total

        # Posterior over the base at each position i: combine transitions
        # (i, j) -> (i+1, j) [deletion, base-independent] and
        # (i, j) -> (i+1, j+1) [emission of read[j] by candidate base b].
        posterior = np.empty((length, 4))
        read_onehot = np.zeros((m, 4))
        read_onehot[np.arange(m), read] = 1.0
        for i in range(length):
            f_row = forward[i]
            b_next = backward[i + 1]
            deletion_mass = float((f_row * b_next).sum()) * p_del
            # emission term per candidate base: sum_j F[i,j] B[i+1,j+1] e(b, y_j)
            weights = f_row[:-1] * b_next[1:]
            matched = weights @ read_onehot  # mass where y_j equals b
            total_weight = weights.sum()
            per_base = matched * self.p_copy + (total_weight - matched) * (
                self.p_sub / 3.0
            )
            per_base += deletion_mass
            norm = per_base.sum()
            posterior[i] = per_base / norm if norm > 0 else 0.25
        return posterior
