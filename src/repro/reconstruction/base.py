"""The reconstructor interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

from repro.observability.trace import Tracer, as_tracer, worker_span
from repro.parallel import WorkerPool


def _reconstruct_chunk(clusters, extra):
    """Worker entry point: reconstruct a contiguous slice of the clusters.

    Returns ``(consensus_list, counters)`` — the worker holds a pickled
    copy of the reconstructor, so its hot-loop event counts must travel
    back explicitly to be merged into the caller's metrics.
    """
    reconstructor, expected_length = extra
    reconstructor.drain_counters()
    with worker_span(
        f"reconstruction.{type(reconstructor).__name__}_chunk",
        clusters=len(clusters),
    ):
        consensus = reconstructor.reconstruct_batch(clusters, expected_length)
    return consensus, reconstructor.drain_counters()


class Reconstructor(ABC):
    """Estimates the original strand from a cluster of noisy reads."""

    @abstractmethod
    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        """Return the consensus estimate for *cluster*.

        Parameters
        ----------
        cluster:
            Noisy reads believed to originate from the same encoded strand.
            Must contain at least one non-empty read.
        expected_length:
            The nominal strand length (known from the encoding parameters);
            the returned consensus has exactly this length unless an
            implementation documents otherwise.
        """

    def reconstruct_all(
        self,
        clusters: Sequence[Sequence[str]],
        expected_length: int,
        tracer: Optional[Tracer] = None,
        pool: Optional[WorkerPool] = None,
    ) -> List[str]:
        """Reconstruct every cluster (clusters are independent).

        With a :class:`~repro.observability.Tracer` the batch runs inside
        a ``reconstruction.<ClassName>`` span; per-cluster read counts
        feed the ``reconstruction_cluster_size`` histogram and any
        algorithm-specific counts from :meth:`drain_counters` (e.g. BMA's
        ``bma_lookahead_invocations``) are flushed into its metrics.

        With a :class:`~repro.parallel.WorkerPool` the clusters fan out
        over worker processes; reconstruction is deterministic per
        cluster, so the output is identical at any worker count, and the
        workers' hot-loop counters are merged back before the flush.
        """
        tracer = as_tracer(tracer)
        self.drain_counters()  # discard counts from untraced earlier calls
        with tracer.span(
            f"reconstruction.{type(self).__name__}", clusters=len(clusters)
        ) as span:
            if not isinstance(clusters, (list, tuple)):
                clusters = list(clusters)  # sliceable for the pool's chunking
            if pool is None:
                consensus = self.reconstruct_batch(clusters, expected_length)
                counters = self.drain_counters()
            else:
                consensus = []
                counters: Dict[str, int] = {}
                chunk_results = pool.run_chunks(
                    _reconstruct_chunk, clusters, (self, expected_length)
                )
                for chunk_consensus, chunk_counters in chunk_results:
                    consensus.extend(chunk_consensus)
                    for name, value in chunk_counters.items():
                        counters[name] = counters.get(name, 0) + value
                span.set("shards", pool.last_shards)
        self._flush_batch_metrics(tracer, clusters, counters)
        return consensus

    def _flush_batch_metrics(
        self,
        tracer: Tracer,
        clusters: Sequence[Sequence[str]],
        counters: Dict[str, int],
    ) -> None:
        """Flush one batch's metrics (cluster counts, sizes, hot-loop counters).

        Shared by :meth:`reconstruct_all` and subclasses that override it
        with their own fan-out topology (e.g. the windowed reconstructor's
        per-window task fan-out), so every batch reports the same series.
        """
        metrics = tracer.metrics
        metrics.counter("clusters_reconstructed", algorithm=type(self).__name__).inc(
            len(clusters)
        )
        histogram = metrics.histogram("reconstruction_cluster_size")
        for cluster in clusters:
            histogram.observe(len(cluster))
        for name, value in counters.items():
            metrics.counter(name).inc(value)

    def reconstruct_batch(
        self, clusters: Sequence[Sequence[str]], expected_length: int
    ) -> List[str]:
        """Reconstruct a batch of clusters; the hook batched kernels override.

        The default simply loops :meth:`reconstruct`.  Subclasses with a
        columnar fast path (majority vote, BMA) override this to stack the
        whole batch into one code matrix; they must stay byte-identical to
        the scalar loop, which remains the oracle.
        """
        return [self.reconstruct(cluster, expected_length) for cluster in clusters]

    def drain_counters(self) -> Dict[str, int]:
        """Return and reset any internal event counts (hook for subclasses).

        Algorithms that count events in hot loops (where per-event metric
        calls would cost real time) accumulate plain integers and report
        them here once per :meth:`reconstruct_all` batch.
        """
        return {}

    @staticmethod
    def _validate(cluster: Sequence[str]) -> List[str]:
        reads = [read for read in cluster if read]
        if not reads:
            raise ValueError("cluster must contain at least one non-empty read")
        return reads
