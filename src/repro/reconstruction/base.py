"""The reconstructor interface."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence


class Reconstructor(ABC):
    """Estimates the original strand from a cluster of noisy reads."""

    @abstractmethod
    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        """Return the consensus estimate for *cluster*.

        Parameters
        ----------
        cluster:
            Noisy reads believed to originate from the same encoded strand.
            Must contain at least one non-empty read.
        expected_length:
            The nominal strand length (known from the encoding parameters);
            the returned consensus has exactly this length unless an
            implementation documents otherwise.
        """

    def reconstruct_all(
        self, clusters: Sequence[Sequence[str]], expected_length: int
    ) -> List[str]:
        """Reconstruct every cluster (clusters are independent)."""
        return [
            self.reconstruct(cluster, expected_length) for cluster in clusters
        ]

    @staticmethod
    def _validate(cluster: Sequence[str]) -> List[str]:
        reads = [read for read in cluster if read]
        if not reads:
            raise ValueError("cluster must contain at least one non-empty read")
        return reads
