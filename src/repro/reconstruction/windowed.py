"""Windowed, banded, batched POA consensus for long strands and huge clusters.

The plain :class:`~repro.reconstruction.nw_consensus.NWConsensusReconstructor`
aligns every read against the full-length partial-order graph, so its cost
grows as O(L² · reads) and kb-scale strands (the regime of nanopore-read
coding schemes such as Welter et al.) are out of reach.  This module bounds
the work per alignment in three steps:

**Anchoring.**  Each read is anchored to backbone coordinates with a cheap
q-gram pass: base-4 gram values (the same radix encoding the clustering
signatures use) are computed for the backbone read once, and every read's
matching grams yield ``(backbone_pos, read_pos)`` pairs whose position
differences estimate the read's coordinate shift.  Shifts are estimated
per *window* (the median difference of the anchors near that window), so
indel drift accumulated over a kb-scale strand cannot smear the estimate.
When a window has too few anchors the read falls back to its global median
shift.  Clusters arriving as :class:`~repro.dna.readpool.ReadPoolView`
objects are anchored straight from the pool's cached base codes — no string
decoding on the hot path.

**Windowed, banded, batched consensus.**  The backbone is sliced into
overlapping fixed-width windows (spectrassembler-style), and every read
contributes the slice its anchors map onto that window — padded by ``band``
positions on both sides.  Each window then runs one *batched* fit
alignment: all read slices align against the backbone window in a single
DP whose rows are vectorised across the read dimension, so the per-row
numpy cost is shared by the whole window cluster instead of being paid per
read.  The slice margin is the band: each read only ever sees
``window + 2 · band`` columns regardless of strand length, which is what
makes the kernel O(W²) per window.  The per-read tracebacks are folded
into POA-style columns — backbone positions plus keyed insertion slots —
and voted with the same majority / gap-column rule
:meth:`PartialOrderGraph.consensus` applies; each column's gap votes ride
along so over-length trimming can happen *globally* after the merge
(window-local length budgets would trim legitimately restored insertion
columns wherever the local deletion count runs above average).

**Merging.**  Adjacent window consensuses overlap by ``window_overlap``
backbone positions; each merge aligns the head of the right piece into the
tail of the left piece (bounded edit DP) and splices at the best-matching
position, falling back to the positional splice (and counting
``nww_merge_fallbacks``) when no convincing overlap alignment exists.

Short strands — anything that fits in roughly one window — delegate to the
parent class's scalar POA path unchanged, so windowed and scalar output are
byte-identical there.  All window decisions (planning, anchoring, seeded
subsampling of huge windows) happen before any fan-out and every window
task is a pure function, so output is byte-identical at any worker count.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dna.alphabet import BASES
from repro.dna.qgram import _BASE_CODES, _window_values
from repro.dna.readpool import NON_ACGT_CODE, ReadPool, ReadPoolView
from repro.observability.trace import Tracer, as_tracer, worker_span
from repro.parallel import WorkerPool
from repro.parallel.seeding import derive_seed
from repro.reconstruction.nw_consensus import NWConsensusReconstructor

_NEG_INF = np.int32(-(2**30))

#: code -> base character; non-ACGT codes decode to ``A`` (they can only
#: surface in the rare backbone-fallback path for windows with no usable
#: reads, where any fixed letter is as good as another).
_CODE_TO_BASE = {code: base for code, base in enumerate(BASES)}


def _encode_read(read: str) -> np.ndarray:
    """Base codes of *read* (0..3; 255 marks non-ACGT characters)."""
    return _BASE_CODES[np.frombuffer(read.encode("latin-1"), dtype=np.uint8)]


def _decode_codes(codes: np.ndarray) -> str:
    return "".join(_CODE_TO_BASE.get(int(code), "A") for code in codes)


class _WindowTask:
    """One window's immutable work order: backbone slice + read slices.

    Pickling ships only the window-sized arrays (numpy serialises the view
    contents, not the parent pool), so process fan-out stays cheap even
    when the windows were sliced zero-copy out of a large ReadPool.
    """

    __slots__ = ("backbone", "slices")

    def __init__(self, backbone: np.ndarray, slices: List[np.ndarray]) -> None:
        self.backbone = backbone
        self.slices = slices

    def __getstate__(self):
        return (self.backbone, self.slices)

    def __setstate__(self, state) -> None:
        self.backbone, self.slices = state


class _ClusterPlan:
    """Per-cluster execution plan: either delegate short, or run windows."""

    __slots__ = ("short_reads", "tasks")

    def __init__(
        self,
        short_reads: Optional[List[str]] = None,
        tasks: Optional[List[_WindowTask]] = None,
    ) -> None:
        self.short_reads = short_reads
        self.tasks = tasks


def _window_consensus(
    task: _WindowTask,
    match: int,
    mismatch: int,
    gap: int,
    min_fit_fraction: float,
    two_pass: bool = True,
) -> Tuple[str, List[int], int]:
    """Consensus of one window; returns ``(sequence, gap_votes, dropped)``.

    Runs the batched fit alignment of every read slice against the
    backbone window, folds the tracebacks into POA-style columns, and
    applies the same majority-vote / gap-column rule as
    :meth:`PartialOrderGraph.consensus`.  With *two_pass* the slices are
    re-aligned against the first-pass consensus and revoted — the
    windowed analogue of the scalar reconstructor's two-pass realignment,
    which removes the residual frame shifts a noisy backbone slice
    imprints on the vote.  Over-length trimming is *not* applied here:
    window-local indel counts fluctuate too much for a per-window length
    budget, so each column's gap votes ride along and the reconstructor
    trims globally after the merge, exactly like the scalar path.  Reads
    whose best fit score falls below ``min_fit_fraction`` of a perfect
    match (their alignment left the anchored band) are excluded from the
    vote and counted in the last return value.
    """
    backbone = task.backbone
    slices = task.slices
    if not slices:
        return _decode_codes(backbone), [0] * backbone.shape[0], 0
    k = len(slices)
    lengths = np.fromiter((s.shape[0] for s in slices), dtype=np.int64, count=k)
    width = int(lengths.max())
    reads = np.full((k, width), NON_ACGT_CODE, dtype=np.uint8)
    for row, piece in enumerate(slices):
        reads[row, : piece.shape[0]] = piece

    codes, gaps, dropped = _window_pass(
        backbone, reads, lengths, match, mismatch, gap, min_fit_fraction
    )
    if two_pass and codes.size:
        codes, gaps, second_dropped = _window_pass(
            codes, reads, lengths, match, mismatch, gap, min_fit_fraction
        )
        dropped = max(dropped, second_dropped)
    if not codes.size:
        return _decode_codes(backbone), [0] * backbone.shape[0], dropped
    return _decode_codes(codes), gaps, dropped


def _window_pass(
    backbone: np.ndarray,
    reads: np.ndarray,
    lengths: np.ndarray,
    match: int,
    mismatch: int,
    gap: int,
    min_fit_fraction: float,
) -> Tuple[np.ndarray, List[int], int]:
    """One align-and-vote pass; returns ``(codes, gap_votes, dropped)``."""
    n = backbone.shape[0]
    k = reads.shape[0]
    scores, moves = _batched_fit_alignment(backbone, reads, match, mismatch, gap)

    # Read ends: free suffix, so each read's alignment ends wherever its
    # final-row score peaks (argmax takes the earliest peak — ties resolve
    # identically at any worker count because the DP is deterministic).
    final = scores[n]
    kept: List[Tuple[int, int]] = []  # (read_row, end_column)
    dropped = 0
    threshold = int(min_fit_fraction * match * n)
    for row in range(k):
        limit = int(lengths[row]) + 1
        end = int(np.argmax(final[row, :limit]))
        if int(final[row, end]) < threshold:
            dropped += 1
            continue
        kept.append((row, end))
    if not kept:
        # No read survived the fit gate; the backbone window itself is the
        # best remaining estimate.
        return backbone, [0] * n, dropped

    # POA-style columns: one per backbone position, plus keyed insertion
    # slots ``(position, offset)`` so the same inserted base from several
    # reads lands in the same column and can win a majority.
    base_votes = np.zeros((n, 4), dtype=np.int32)
    presence = np.zeros(n, dtype=np.int32)
    insert_votes: Dict[Tuple[int, int], Dict[int, int]] = {}
    for row, end in kept:
        run: List[int] = []
        i, j = n, end
        while i > 0:
            move = int(moves[i - 1, row, j])
            if move == 2:  # insertion: read char between backbone i-1 and i
                run.append(int(reads[row, j - 1]))
                j -= 1
                continue
            if run:
                _flush_insertion_run(insert_votes, i, run)
                run = []
            if move == 0:  # aligned (match or substitution)
                code = int(reads[row, j - 1])
                if code < 4:
                    base_votes[i - 1, code] += 1
                    presence[i - 1] += 1
                i -= 1
                j -= 1
            else:  # deletion: backbone position skipped by this read
                i -= 1
        # Leading insertions (run still open at i == 0) fall in the free
        # prefix slack and belong to the previous window; drop them.

    total = len(kept)
    columns: List[Tuple[int, int]] = []  # (base code, gap_votes)
    for position in range(n + 1):
        offset = 0
        while (position, offset) in insert_votes:
            votes = insert_votes[(position, offset)]
            _append_column(columns, votes, total)
            offset += 1
        if position == n:
            break
        if presence[position]:
            votes = {
                code: int(count)
                for code, count in enumerate(base_votes[position])
                if count
            }
            _append_column(columns, votes, total)

    consensus = np.fromiter(
        (code for code, _ in columns), dtype=np.uint8, count=len(columns)
    )
    return consensus, [gap_votes for _, gap_votes in columns], dropped


def _flush_insertion_run(
    insert_votes: Dict[Tuple[int, int], Dict[int, int]],
    position: int,
    run: List[int],
) -> None:
    """Record one read's insertion run before backbone *position*.

    The traceback walks right-to-left, so *run* holds the inserted codes
    reversed; offsets count in forward (left-to-right) order so identical
    insertions from different reads share keys.
    """
    for offset, code in enumerate(reversed(run)):
        if code >= 4:
            continue
        votes = insert_votes.setdefault((position, offset), {})
        votes[code] = votes.get(code, 0) + 1


def _append_column(
    columns: List[Tuple[int, int]], votes: Dict[int, int], total: int
) -> None:
    """Majority-vote one column, mirroring ``PartialOrderGraph.consensus``.

    The winning base is the highest-count code (largest code breaking
    ties, matching the graph's lexicographically-largest-base rule), kept
    only when its count is at least the gap vote.
    """
    if not votes:
        return
    gap_votes = total - sum(votes.values())
    best = max(votes, key=lambda code: (votes[code], code))
    if votes[best] >= gap_votes:
        columns.append((best, gap_votes))


def _batched_fit_alignment(
    backbone: np.ndarray,
    reads: np.ndarray,
    match: int,
    mismatch: int,
    gap: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fit-align the backbone window into every read slice at once.

    Rows iterate over backbone positions; every numpy operation in a row
    spans the whole ``(reads, columns)`` plane, so the interpreter cost of
    a DP row is paid once per window instead of once per read (this is
    what "batched" buys over per-read alignment).  Read prefixes and
    suffixes are free — the slack margin around each slice is not part of
    the window — while the backbone must be fully consumed.

    Returns ``(scores, moves)``: the full ``(n+1, k, m+1)`` score tensor
    and the ``(n, k, m+1)`` move tensor (0=aligned, 1=deletion,
    2=insertion), move ties preferring aligned > deletion > insertion like
    the scalar POA traceback.
    """
    n = backbone.shape[0]
    k, m = reads.shape
    scores = np.empty((n + 1, k, m + 1), dtype=np.int32)
    moves = np.empty((n, k, m + 1), dtype=np.uint8)
    scores[0] = 0  # free read prefix
    match_planes = np.where(
        reads[None, :, :] == backbone[:, None, None], match, mismatch
    ).astype(np.int32)
    insert_cost = (np.arange(m + 1, dtype=np.int32)) * gap
    for row in range(1, n + 1):
        prev = scores[row - 1]
        diag = prev[:, :-1] + match_planes[row - 1]
        vert = prev + gap
        current = scores[row]
        current[:, 0] = vert[:, 0]
        np.maximum(diag, vert[:, 1:], out=current[:, 1:])
        move = moves[row - 1]
        move[:] = 1
        move[:, 1:][diag >= vert[:, 1:]] = 0
        # Serial insertion chain, resolved with a prefix max:
        # row[j] = max(row[j], max_{t<j} row[t] + (j-t)·gap).
        chain = np.maximum.accumulate(current - insert_cost, axis=1)
        candidate = chain[:, :-1] + insert_cost[1:]
        better = candidate > current[:, 1:]
        current[:, 1:][better] = candidate[better]
        move[:, 1:][better] = 2
    return scores, moves


def _merge_overlap(
    left: str,
    left_gaps: List[int],
    right: str,
    right_gaps: List[int],
    overlap: int,
) -> Tuple[Tuple[str, List[int]], bool]:
    """Splice *right* onto *left*, aligning the overlap region.

    The first ``overlap`` characters of *right* re-describe the tail of
    *left*.  Both pieces are least reliable at their outer edges (a
    window's leading columns sit in the free-prefix slack where insertion
    votes are unavailable), so the splice happens mid-overlap: a probe
    taken from *right* just past its half-overlap point is located inside
    the tail of *left* with a bounded edit DP, and the merged sequence
    keeps *left* up to that point plus *right* from its half-overlap on —
    each side contributing only interior columns.  Per-column gap votes
    ride along through the same splice so the reconstructor can trim the
    merged sequence globally.  Returns ``((merged, merged_gaps),
    used_fallback)`` — the fallback being the positional splice ``left +
    right[overlap:]`` when either piece is too short to align or no
    alignment is convincing.
    """
    half = overlap // 2
    probe = right[half : half + (overlap - half)]
    search = min(len(left), 2 * overlap + 16)
    if len(probe) < max(4, overlap // 2) or search <= len(probe) // 2:
        keep = min(overlap, len(right))
        return (left + right[keep:], left_gaps + right_gaps[keep:]), True
    tail = left[len(left) - search :]
    # Edit DP of probe (rows) vs tail (columns); starting anywhere in the
    # tail is free, and the origin column rides along so the best end cell
    # names its splice point.
    width = len(tail) + 1
    costs = [0] * width  # starting anywhere in the tail is free
    origins = list(range(width))
    for i, probe_char in enumerate(probe, start=1):
        next_costs = [i] * width
        next_origins = [0] * width
        for j in range(1, width):
            sub = costs[j - 1] + (probe_char != tail[j - 1])
            dele = costs[j] + 1
            ins = next_costs[j - 1] + 1
            best, origin = sub, origins[j - 1]
            if dele < best:
                best, origin = dele, origins[j]
            if ins < best:
                best, origin = ins, next_origins[j - 1]
            next_costs[j] = best
            next_origins[j] = origin
        costs, origins = next_costs, next_origins
    best_j = min(range(width), key=lambda j: (costs[j], j))
    if costs[best_j] > max(2, len(probe) // 3):
        keep = min(overlap, len(right))
        return (left + right[keep:], left_gaps + right_gaps[keep:]), True
    cut = len(left) - search + origins[best_j]
    return (left[:cut] + right[half:], left_gaps[:cut] + right_gaps[half:]), False


def _windowed_chunk(tasks, extra):
    """Worker entry point: run a contiguous slice of the flattened tasks.

    Tasks are either ``("window", _WindowTask)`` or ``("cluster", reads)``
    (a short cluster delegating to the scalar POA core).  Returns one
    result per task — a consensus string for clusters, a ``(sequence,
    gap_votes)`` pair for windows — plus the worker's drained counters.
    """
    reconstructor, expected_length = extra
    reconstructor.drain_counters()
    results: List[object] = []
    with worker_span(
        f"reconstruction.{type(reconstructor).__name__}_chunk", tasks=len(tasks)
    ):
        for kind, payload in tasks:
            if kind == "cluster":
                results.append(
                    reconstructor._consensus_core(payload, expected_length)
                )
            else:
                piece, gaps, dropped = _window_consensus(
                    payload,
                    reconstructor.match,
                    reconstructor.mismatch,
                    reconstructor.gap,
                    reconstructor.min_fit_fraction,
                    reconstructor.window_two_pass,
                )
                reconstructor._window_reads_dropped += dropped
                results.append((piece, gaps))
    return results, reconstructor.drain_counters()


class WindowedPOAReconstructor(NWConsensusReconstructor):
    """Windowed, banded, batched POA consensus (see module docstring).

    Parameters
    ----------
    window:
        Backbone positions per window; each window's alignment cost is
        O(window²) regardless of strand length.
    window_overlap:
        Backbone positions shared by adjacent windows, used to align the
        splice when window consensuses are merged.
    window_band:
        Slack margin (in positions) added around each read's anchored
        window slice; plays the band role for the batched window kernel
        (the DP never sees more than ``window + 2·band`` columns).
    anchor_gram:
        q-gram length for the anchoring pass.
    max_window_reads:
        Upper bound on reads per window.  Huge clusters are subsampled
        deterministically per window (seeded from ``seed``, the window
        index, and the candidate count), so output stays byte-identical
        at any worker count.
    min_fit_fraction:
        Fraction of a perfect backbone-window score below which a read's
        window alignment is considered to have escaped its band and its
        votes are discarded.
    window_two_pass:
        Re-run each window's align-and-vote against its first-pass
        consensus.  Off by default: with global gap-vote trimming a
        single pass already matches scalar quality, and the second pass
        halves the speedup.  This is deliberately separate from the
        inherited ``two_pass``, which governs the scalar path that short
        strands delegate to (and must stay on for byte-identical short
        parity with :class:`NWConsensusReconstructor`).
    seed:
        Base seed for the per-window subsampling derivation.

    The remaining parameters are inherited from
    :class:`NWConsensusReconstructor` and govern the scalar POA path that
    short strands delegate to (``max_cluster`` defaults higher here: the
    windowed kernel's cost per read is bounded, so large clusters stay
    affordable).
    """

    def __init__(
        self,
        match: int = 2,
        mismatch: int = -2,
        gap: int = -2,
        max_cluster: int = 64,
        two_pass: bool = True,
        band: Optional[int] = None,
        window: int = 160,
        window_overlap: int = 24,
        window_band: int = 24,
        anchor_gram: int = 8,
        max_window_reads: int = 32,
        min_fit_fraction: float = 0.25,
        window_two_pass: bool = False,
        seed: int = 0,
    ):
        super().__init__(
            match=match,
            mismatch=mismatch,
            gap=gap,
            max_cluster=max_cluster,
            two_pass=two_pass,
            band=band,
        )
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if not 0 < window_overlap < window:
            raise ValueError(
                f"window_overlap must be in (0, window), got {window_overlap}"
            )
        if window_band < 1:
            raise ValueError(f"window_band must be positive, got {window_band}")
        if max_window_reads < 1:
            raise ValueError(
                f"max_window_reads must be positive, got {max_window_reads}"
            )
        self.window = window
        self.window_overlap = window_overlap
        self.window_band = window_band
        self.anchor_gram = anchor_gram
        self.max_window_reads = max_window_reads
        self.min_fit_fraction = min_fit_fraction
        self.window_two_pass = window_two_pass
        self.seed = seed
        self._windows_planned = 0
        self._short_delegated = 0
        self._window_reads_dropped = 0
        self._merge_fallbacks = 0
        self._reads_subsampled = 0

    def drain_counters(self):
        counts = super().drain_counters()
        counts.update(
            {
                "nww_windows_planned": self._windows_planned,
                "nww_short_delegated": self._short_delegated,
                "nww_window_reads_dropped": self._window_reads_dropped,
                "nww_merge_fallbacks": self._merge_fallbacks,
                "nww_reads_subsampled": self._reads_subsampled,
            }
        )
        self._windows_planned = 0
        self._short_delegated = 0
        self._window_reads_dropped = 0
        self._merge_fallbacks = 0
        self._reads_subsampled = 0
        return counts

    # ------------------------------------------------------------------
    # Planning (always in the calling process, so fan-out cannot change it)
    # ------------------------------------------------------------------

    def _cluster_codes(self, cluster: Sequence[str]) -> Tuple[List[np.ndarray], List]:
        """Selected reads as code arrays plus lazy string accessors.

        :class:`ReadPoolView` clusters slice the parent pool's cached code
        column zero-copy; anything else encodes per read.  Selection uses
        the exact ordering of :meth:`_select_reads`, so the windowed and
        scalar paths always agree on the backbone.
        """
        if isinstance(cluster, (ReadPool, ReadPoolView)):
            if isinstance(cluster, ReadPool):
                cluster = cluster.view(np.arange(len(cluster), dtype=np.int64))
            lengths = cluster.lengths
            nonempty = [i for i in range(len(cluster)) if lengths[i] > 0]
            if not nonempty:
                raise ValueError("cluster must contain at least one non-empty read")
            keep = self._selection_order([int(lengths[i]) for i in nonempty])
            self._reads_capped += max(0, len(nonempty) - self.max_cluster)
            pool = cluster.pool
            codes_all = pool.codes
            offsets = pool.offsets
            codes = []
            readers = []
            for position in keep:
                index = int(cluster.indices[nonempty[position]])
                codes.append(codes_all[offsets[index] : offsets[index + 1]])
                readers.append(index)
            return codes, [lambda p=pool, i=index: p[i] for index in readers]
        reads = self._select_reads(cluster)
        return [_encode_read(read) for read in reads], [
            lambda r=read: r for read in reads
        ]

    def _plan(self, cluster: Sequence[str], expected_length: int) -> _ClusterPlan:
        """Build the execution plan for one cluster.

        Planning (selection, anchoring, window slicing, subsampling) is
        deterministic and always runs in the calling process; the returned
        window tasks are pure data, so running them serially or fanned out
        yields identical bytes.
        """
        codes, readers = self._cluster_codes(cluster)
        self._reads_folded += len(codes)
        backbone = codes[0]
        horizon = self.window + self.window_overlap
        if expected_length <= horizon or backbone.shape[0] <= horizon:
            self._short_delegated += 1
            return _ClusterPlan(short_reads=[reader() for reader in readers])

        bounds = self._window_bounds(backbone.shape[0])
        shifts = self._anchor_shifts(backbone, codes, bounds)
        tasks: List[_WindowTask] = []
        n_backbone = backbone.shape[0]
        for window_index, (start, stop) in enumerate(bounds):
            slices: List[np.ndarray] = []
            minimum = (stop - start) // 2
            for read_index, read_codes in enumerate(codes):
                shift = shifts[read_index][window_index]
                lo = max(0, start + shift - self.window_band)
                hi = min(read_codes.shape[0], stop + shift + self.window_band)
                if hi - lo >= minimum:
                    slices.append(read_codes[lo:hi])
            if len(slices) > self.max_window_reads:
                rng = random.Random(
                    derive_seed(self.seed, "window", window_index, len(slices))
                )
                chosen = sorted(
                    rng.sample(range(len(slices)), self.max_window_reads)
                )
                self._reads_subsampled += len(slices) - self.max_window_reads
                slices = [slices[i] for i in chosen]
            tasks.append(_WindowTask(backbone[start:stop], slices))
        self._windows_planned += len(tasks)
        return _ClusterPlan(tasks=tasks)

    def _window_bounds(self, length: int) -> List[Tuple[int, int]]:
        """Overlapping ``[start, stop)`` windows covering ``[0, length)``."""
        step = self.window - self.window_overlap
        bounds: List[Tuple[int, int]] = []
        start = 0
        while True:
            stop = min(start + self.window, length)
            bounds.append((start, stop))
            if stop >= length:
                break
            start += step
        if len(bounds) > 1 and bounds[-1][1] - bounds[-1][0] < 2 * self.window_overlap:
            # A stub last window has too little fresh sequence to merge
            # reliably; extend the previous window to the end instead.
            bounds[-2] = (bounds[-2][0], bounds[-1][1])
            bounds.pop()
        return bounds

    def _anchor_shifts(
        self,
        backbone: np.ndarray,
        codes: Sequence[np.ndarray],
        bounds: Sequence[Tuple[int, int]],
    ) -> List[List[int]]:
        """Per-read, per-window coordinate shifts from q-gram anchors."""
        gram = self.anchor_gram
        zeros = [0] * len(bounds)
        if (backbone == NON_ACGT_CODE).any() or backbone.shape[0] < gram:
            return [list(zeros) for _ in codes]
        backbone_values = _window_values(backbone, gram)
        order = np.argsort(backbone_values, kind="stable")
        sorted_values = backbone_values[order]
        # Only grams unique in the backbone anchor reliably; a repeated
        # gram matches several positions and would smear the shift.
        unique = np.ones(sorted_values.shape[0], dtype=bool)
        unique[1:] &= sorted_values[1:] != sorted_values[:-1]
        unique[:-1] &= sorted_values[:-1] != sorted_values[1:]
        anchor_values = sorted_values[unique]
        anchor_positions = order[unique]

        margin = self.window_overlap
        shifts: List[List[int]] = []
        for read_index, read_codes in enumerate(codes):
            if read_index == 0:
                shifts.append(list(zeros))  # the backbone anchors itself
                continue
            if (read_codes == NON_ACGT_CODE).any() or read_codes.shape[0] < gram:
                shifts.append(list(zeros))
                continue
            read_values = _window_values(read_codes, gram)
            slots = np.searchsorted(anchor_values, read_values)
            slots = np.minimum(slots, anchor_values.shape[0] - 1)
            hits = anchor_values[slots] == read_values
            backbone_pos = anchor_positions[slots[hits]]
            read_pos = np.nonzero(hits)[0]
            if backbone_pos.size == 0:
                shifts.append(list(zeros))
                continue
            diffs = read_pos - backbone_pos
            by_pos = np.argsort(backbone_pos, kind="stable")
            backbone_sorted = backbone_pos[by_pos]
            diffs_sorted = diffs[by_pos]
            global_shift = int(np.median(diffs_sorted))
            per_window: List[int] = []
            for start, stop in bounds:
                lo = int(np.searchsorted(backbone_sorted, start - margin))
                hi = int(np.searchsorted(backbone_sorted, stop + margin))
                if hi - lo >= 3:
                    per_window.append(int(np.median(diffs_sorted[lo:hi])))
                else:
                    per_window.append(global_shift)
            shifts.append(per_window)
        return shifts

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _merge_pieces(
        self,
        pieces: Sequence[Tuple[str, List[int]]],
        expected_length: int,
    ) -> str:
        """Chain-merge window ``(sequence, gap_votes)`` pieces and trim.

        Over-length trimming happens here, *after* the merge, on the
        merged sequence's accumulated gap votes — the windowed analogue of
        :meth:`PartialOrderGraph.consensus`'s surplus-column rule.  A
        per-window length budget would instead trim away legitimately
        restored insertion columns in any window whose local deletion
        count runs above average.
        """
        merged, gaps = pieces[0]
        for piece, piece_gaps in pieces[1:]:
            (merged, gaps), fallback = _merge_overlap(
                merged, gaps, piece, piece_gaps, self.window_overlap
            )
            if fallback:
                self._merge_fallbacks += 1
        if len(merged) > expected_length:
            surplus = len(merged) - expected_length
            by_gappiness = sorted(
                range(len(merged)), key=lambda c: gaps[c], reverse=True
            )
            drop = set(by_gappiness[:surplus])
            merged = "".join(
                char for index, char in enumerate(merged) if index not in drop
            )
        if len(merged) < expected_length:
            merged = merged + "A" * (expected_length - len(merged))
        return merged

    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        plan = self._plan(cluster, expected_length)
        if plan.short_reads is not None:
            return self._consensus_core(plan.short_reads, expected_length)
        pieces: List[Tuple[str, List[int]]] = []
        for task in plan.tasks:
            piece, gaps, dropped = _window_consensus(
                task,
                self.match,
                self.mismatch,
                self.gap,
                self.min_fit_fraction,
                self.window_two_pass,
            )
            self._window_reads_dropped += dropped
            pieces.append((piece, gaps))
        return self._merge_pieces(pieces, expected_length)

    def reconstruct_all(
        self,
        clusters: Sequence[Sequence[str]],
        expected_length: int,
        tracer: Optional[Tracer] = None,
        pool: Optional[WorkerPool] = None,
    ) -> List[str]:
        """Reconstruct every cluster, fanning out individual *windows*.

        Unlike the base implementation (which chunks whole clusters), the
        parallel unit here is the window task: a single huge cluster with
        a kb-scale strand still spreads across every worker.  Planning
        stays in the calling process and window tasks are pure functions
        of their inputs, so output is byte-identical at any worker count.
        """
        if pool is None or pool.workers <= 1:
            return super().reconstruct_all(
                clusters, expected_length, tracer=tracer, pool=pool
            )
        tracer = as_tracer(tracer)
        self.drain_counters()  # discard counts from untraced earlier calls
        with tracer.span(
            f"reconstruction.{type(self).__name__}", clusters=len(clusters)
        ) as span:
            if not isinstance(clusters, (list, tuple)):
                clusters = list(clusters)
            plans = [self._plan(cluster, expected_length) for cluster in clusters]
            flattened: List[Tuple[str, object]] = []
            for plan in plans:
                if plan.short_reads is not None:
                    flattened.append(("cluster", plan.short_reads))
                else:
                    flattened.extend(("window", task) for task in plan.tasks)
            chunk_results = pool.run_chunks(
                _windowed_chunk,
                flattened,
                (self, expected_length),
                min_items=1,  # window tasks are heavy; fan out even a few
            )
            results: List[str] = []
            counters: Dict[str, int] = {}
            for chunk_consensus, chunk_counters in chunk_results:
                results.extend(chunk_consensus)
                for name, value in chunk_counters.items():
                    counters[name] = counters.get(name, 0) + value
            consensus: List[str] = []
            cursor = 0
            for plan in plans:
                if plan.short_reads is not None:
                    consensus.append(results[cursor])
                    cursor += 1
                else:
                    pieces = results[cursor : cursor + len(plan.tasks)]
                    cursor += len(plan.tasks)
                    consensus.append(self._merge_pieces(pieces, expected_length))
            span.set("shards", pool.last_shards)
        for name, value in self.drain_counters().items():
            counters[name] = counters.get(name, 0) + value
        self._flush_batch_metrics(tracer, clusters, counters)
        return consensus
