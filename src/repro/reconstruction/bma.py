"""BMA-lookahead trace reconstruction (Organick et al.; Section VII-A).

The consensus strand is built left to right.  Every read keeps a pointer;
each step takes a plurality vote over the pointed-at bases.  Reads that
agree simply advance.  A read that disagrees must first be re-aligned: the
algorithm looks ahead a few bases to decide whether the read most likely
suffered a substitution, an insertion, or a deletion at this point, and
moves its pointer accordingly.  A wrong guess misaligns the read for all
later votes — which is why the per-index error rate of single-sided BMA
grows toward the end of the strand (Figure 6 of the paper).
"""

from __future__ import annotations

import random
from collections import Counter
from typing import List, Optional, Sequence

from repro.dna.alphabet import BASES
from repro.reconstruction.base import Reconstructor
from repro.reconstruction.matrix import bma_consensus_batch, stack_clusters


def _plurality(symbols: Sequence[str]) -> Optional[str]:
    """Most common symbol, ties broken lexicographically; None if empty."""
    if not symbols:
        return None
    counts = Counter(symbols)
    best = max(counts.items(), key=lambda item: (item[1], item[0]))
    # Deterministic tie-break: highest count, then lexicographically largest
    # base would be arbitrary; prefer smallest for stability.
    top_count = best[1]
    candidates = sorted(symbol for symbol, count in counts.items() if count == top_count)
    return candidates[0]


class BMAReconstructor(Reconstructor):
    """Single-sided bitwise-majority-alignment with lookahead.

    Parameters
    ----------
    lookahead:
        Window length used to classify a disagreeing read's edit as a
        substitution, insertion or deletion.
    """

    def __init__(self, lookahead: int = 3):
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead}")
        self.lookahead = lookahead
        # Plain-int event count, flushed to metrics once per batch via
        # drain_counters(); a per-event metric call here would sit inside
        # the per-position voting loop.
        self._lookahead_invocations = 0

    def drain_counters(self):
        counts = {"bma_lookahead_invocations": self._lookahead_invocations}
        self._lookahead_invocations = 0
        return counts

    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        reads = self._validate(cluster)
        return self._run(reads, expected_length)

    def reconstruct_batch(
        self, clusters: Sequence[Sequence[str]], expected_length: int
    ) -> List[str]:
        """All clusters advanced in lockstep on one stacked code matrix.

        Byte-identical to looping :meth:`reconstruct` (the scalar oracle),
        including the ``bma_lookahead_invocations`` count; clusters off the
        ACGT alphabet fall back to that loop.
        """
        stacked = stack_clusters(clusters)
        if stacked is None:
            return super().reconstruct_batch(clusters, expected_length)
        matrix, lengths, starts = stacked
        consensus, invocations = bma_consensus_batch(
            matrix, lengths, starts, expected_length, self.lookahead
        )
        self._lookahead_invocations += invocations
        return consensus

    def _run(self, reads: List[str], expected_length: int) -> str:
        pointers = [0] * len(reads)
        consensus: List[str] = []
        filler = random.Random(0xB3A)
        while len(consensus) < expected_length:
            active = [i for i, read in enumerate(reads) if pointers[i] < len(read)]
            if not active:
                # All reads exhausted (e.g. heavy truncation): pad randomly
                # rather than biasing toward one base.
                consensus.append(filler.choice(BASES))
                continue
            majority = _plurality([reads[i][pointers[i]] for i in active])
            consensus.append(majority)

            agreeing = [i for i in active if reads[i][pointers[i]] == majority]
            disagreeing = [i for i in active if reads[i][pointers[i]] != majority]
            for i in agreeing:
                pointers[i] += 1

            if not disagreeing:
                continue
            # Expected next bases by plurality over the reads that agreed.
            reference_window = self._reference_window(reads, pointers, agreeing)
            for i in disagreeing:
                pointers[i] += self._realign(reads[i], pointers[i], reference_window)
        return "".join(consensus)

    def _reference_window(
        self, reads: List[str], pointers: List[int], agreeing: List[int]
    ) -> str:
        """Plurality prediction of the next ``lookahead`` consensus bases."""
        window: List[str] = []
        for offset in range(self.lookahead):
            symbols = [
                reads[i][pointers[i] + offset]
                for i in agreeing
                if pointers[i] + offset < len(reads[i])
            ]
            majority = _plurality(symbols)
            if majority is None:
                break
            window.append(majority)
        return "".join(window)

    def _realign(self, read: str, pointer: int, reference_window: str) -> int:
        """Return the pointer increment for a read that lost the vote.

        Hypotheses (relative to the consensus position just emitted):

        * substitution — the read's current base replaced the consensus
          base; the next bases should line up (advance by 1);
        * deletion — the read is missing the consensus base; its current
          base belongs to the *next* consensus position (advance by 0);
        * insertion — the read carries an extra base; the consensus base
          may be its next one (advance by 2).
        """
        self._lookahead_invocations += 1
        if not reference_window:
            return 1
        scores = {
            1: self._window_matches(read, pointer + 1, reference_window),
            0: self._window_matches(read, pointer, reference_window),
            2: self._window_matches(read, pointer + 2, reference_window),
        }
        # Prefer substitution on ties: it is the least disruptive guess.
        best = max(scores.values())
        for increment in (1, 0, 2):
            if scores[increment] == best:
                return increment
        return 1

    @staticmethod
    def _window_matches(read: str, start: int, reference_window: str) -> int:
        matches = 0
        for offset, expected in enumerate(reference_window):
            position = start + offset
            if position < len(read) and read[position] == expected:
                matches += 1
        return matches
