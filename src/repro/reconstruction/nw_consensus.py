"""Needleman-Wunsch / partial-order-alignment consensus (Section VII-C).

The paper's novel reconstructor: instead of incrementally re-aligning reads
the way BMA does, first compute a multiple sequence alignment of the whole
cluster with Needleman-Wunsch scoring over a partial-order graph (the
algorithm behind spoa), then take a per-column majority vote.  When the
alignment is longer than the expected strand, the surplus columns with the
most insertion/deletion alignments are omitted.

Error propagation is local to each column rather than cumulative, so the
per-index error profile is flat and lower than either BMA variant
(Figure 6), and a single pass over the graph replaces BMA's per-position
realignment, which makes it the fastest option at high coverage
(Table III).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dna.poa import PartialOrderGraph
from repro.reconstruction.base import Reconstructor


class NWConsensusReconstructor(Reconstructor):
    """POA-based consensus with over-length column trimming.

    Parameters
    ----------
    match, mismatch, gap:
        Needleman-Wunsch scores used when aligning reads to the graph.
    max_cluster:
        Upper bound on the number of reads folded into the graph; large
        clusters gain nothing from extra reads while alignment cost grows
        linearly.  The cap is applied *after* the median-distance sort, so
        the reads kept are the ones whose lengths are closest to the
        cluster median — surplus outliers are the reads dropped.
    two_pass:
        Re-align every read against a graph seeded with the first-pass
        consensus (the seed's own vote is removed), which eliminates most
        residual single-indel frame shifts.
    band:
        Optional half-width for the banded alignment DP (see
        :class:`~repro.dna.poa.PartialOrderGraph`); ``None`` keeps the
        exact full-width alignment.  Banded alignments that saturate their
        band are redone exactly and surface as the ``nw_band_saturations``
        counter.
    """

    def __init__(
        self,
        match: int = 2,
        mismatch: int = -2,
        gap: int = -2,
        max_cluster: int = 20,
        two_pass: bool = True,
        band: Optional[int] = None,
    ):
        if max_cluster <= 0:
            raise ValueError(f"max_cluster must be positive, got {max_cluster}")
        self.match = match
        self.mismatch = mismatch
        self.gap = gap
        self.max_cluster = max_cluster
        self.two_pass = two_pass
        self.band = band
        self._reads_folded = 0
        self._reads_capped = 0
        self._band_saturations = 0

    def drain_counters(self):
        counts = {
            "nw_reads_folded": self._reads_folded,
            "nw_reads_capped": self._reads_capped,
            "nw_band_saturations": self._band_saturations,
        }
        self._reads_folded = 0
        self._reads_capped = 0
        self._band_saturations = 0
        return counts

    # ------------------------------------------------------------------
    # Read selection (shared with the windowed subclass)
    # ------------------------------------------------------------------

    def _select_reads(self, cluster: Sequence[str]) -> List[str]:
        """Validate, order, and cap the cluster's reads.

        The first read becomes the graph backbone, so ordering starts from
        the read whose length is closest to the cluster median — an
        outlier backbone (truncated read) would distort every later
        alignment.  The sort key is explicit and total:
        ``(abs(len - median), len, arrival order)`` — so backbone choice
        (and therefore the consensus) is deterministic even when several
        reads tie on median distance.  The ``max_cluster`` cap applies
        *after* the sort: the reads kept are the closest-to-median ones,
        and ``nw_reads_capped`` counts the non-empty reads dropped.
        """
        reads = self._validate(cluster)
        keep = self._selection_order([len(read) for read in reads])
        self._reads_capped += max(0, len(reads) - self.max_cluster)
        return [reads[index] for index in keep]

    def _selection_order(self, lengths: Sequence[int]) -> List[int]:
        """Indices of the reads to keep, in backbone-first order.

        Shared by the string path above and the windowed subclass's
        zero-copy :class:`~repro.dna.readpool.ReadPoolView` path, so both
        select byte-identical read sets.
        """
        median = sorted(lengths)[len(lengths) // 2]
        order = sorted(
            range(len(lengths)),
            key=lambda i: (abs(int(lengths[i]) - median), int(lengths[i]), i),
        )
        return order[: self.max_cluster]

    # ------------------------------------------------------------------
    # Consensus
    # ------------------------------------------------------------------

    def _new_graph(self) -> PartialOrderGraph:
        return PartialOrderGraph(
            match=self.match, mismatch=self.mismatch, gap=self.gap, band=self.band
        )

    def _consensus_core(self, reads: Sequence[str], expected_length: int) -> str:
        """POA consensus over pre-selected *reads* (two-pass, padded)."""
        graph = self._new_graph()
        for read in reads:
            graph.add_sequence(read)
        consensus = graph.consensus(expected_length=expected_length)
        self._band_saturations += graph.band_saturations
        if self.two_pass and consensus:
            # Second pass: re-align every read against a graph seeded with
            # the first-pass consensus.  The seed anchors the coordinate
            # frame (its own vote is removed), eliminating most residual
            # single-indel frame shifts in the consensus.
            graph = self._new_graph()
            graph.add_sequence(consensus)
            for read in reads:
                graph.add_sequence(read)
            graph.paths.pop(0)
            consensus = graph.consensus(expected_length=expected_length)
            self._band_saturations += graph.band_saturations
        # The consensus may still be short when gaps win columns (heavy
        # deletions); pad deterministically so the decoder sees the nominal
        # length and treats the tail as substitutions.
        if len(consensus) < expected_length:
            consensus = consensus + "A" * (expected_length - len(consensus))
        return consensus

    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        reads = self._select_reads(cluster)
        self._reads_folded += len(reads)
        return self._consensus_core(reads, expected_length)
