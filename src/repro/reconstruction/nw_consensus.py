"""Needleman-Wunsch / partial-order-alignment consensus (Section VII-C).

The paper's novel reconstructor: instead of incrementally re-aligning reads
the way BMA does, first compute a multiple sequence alignment of the whole
cluster with Needleman-Wunsch scoring over a partial-order graph (the
algorithm behind spoa), then take a per-column majority vote.  When the
alignment is longer than the expected strand, the surplus columns with the
most insertion/deletion alignments are omitted.

Error propagation is local to each column rather than cumulative, so the
per-index error profile is flat and lower than either BMA variant
(Figure 6), and a single pass over the graph replaces BMA's per-position
realignment, which makes it the fastest option at high coverage
(Table III).
"""

from __future__ import annotations

from typing import Sequence

from repro.dna.poa import PartialOrderGraph, poa_consensus
from repro.reconstruction.base import Reconstructor


class NWConsensusReconstructor(Reconstructor):
    """POA-based consensus with over-length column trimming.

    Parameters
    ----------
    match, mismatch, gap:
        Needleman-Wunsch scores used when aligning reads to the graph.
    max_cluster:
        Upper bound on the number of reads folded into the graph; large
        clusters gain nothing from extra reads while alignment cost grows
        linearly, so surplus reads are ignored (in read order).
    """

    def __init__(
        self,
        match: int = 2,
        mismatch: int = -2,
        gap: int = -2,
        max_cluster: int = 20,
        two_pass: bool = True,
    ):
        if max_cluster <= 0:
            raise ValueError(f"max_cluster must be positive, got {max_cluster}")
        self.match = match
        self.mismatch = mismatch
        self.gap = gap
        self.max_cluster = max_cluster
        self.two_pass = two_pass
        self._reads_folded = 0
        self._reads_capped = 0

    def drain_counters(self):
        counts = {
            "nw_reads_folded": self._reads_folded,
            "nw_reads_capped": self._reads_capped,
        }
        self._reads_folded = 0
        self._reads_capped = 0
        return counts

    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        reads = self._validate(cluster)[: self.max_cluster]
        self._reads_folded += len(reads)
        self._reads_capped += max(0, len(cluster) - self.max_cluster)
        # The first read becomes the graph backbone, so start from the read
        # whose length is closest to the cluster median — an outlier
        # backbone (truncated read) would distort every later alignment.
        median = sorted(len(read) for read in reads)[len(reads) // 2]
        reads = sorted(reads, key=lambda read: abs(len(read) - median))
        consensus = poa_consensus(
            reads,
            expected_length=expected_length,
            match=self.match,
            mismatch=self.mismatch,
            gap=self.gap,
        )
        if self.two_pass and consensus:
            # Second pass: re-align every read against a graph seeded with
            # the first-pass consensus.  The seed anchors the coordinate
            # frame (its own vote is removed), eliminating most residual
            # single-indel frame shifts in the consensus.
            graph = PartialOrderGraph(
                match=self.match, mismatch=self.mismatch, gap=self.gap
            )
            graph.add_sequence(consensus)
            for read in reads:
                graph.add_sequence(read)
            graph.paths.pop(0)
            consensus = graph.consensus(expected_length=expected_length)
        # The consensus may still be short when gaps win columns (heavy
        # deletions); pad deterministically so the decoder sees the nominal
        # length and treats the tail as substitutions.
        if len(consensus) < expected_length:
            consensus = consensus + "A" * (expected_length - len(consensus))
        return consensus
