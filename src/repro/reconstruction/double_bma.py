"""Double-sided BMA (Lin et al.; Section VII-B).

Error propagation in BMA-lookahead is symmetric: reconstructing right to
left makes the *early* indexes unreliable instead of the late ones.
Double-sided BMA exploits this by reconstructing the left half of the strand
left-to-right and the right half right-to-left (on reversed reads), then
joining the halves.  Misalignment can propagate only half-way, so the
residual error concentrates — and peaks — in the middle indexes, the skew
that motivates the Gini and DNAMapper layouts.
"""

from __future__ import annotations

from typing import Sequence

from repro.reconstruction.base import Reconstructor
from repro.reconstruction.bma import BMAReconstructor


class DoubleSidedBMAReconstructor(Reconstructor):
    """Reconstruct both halves from their near ends and join them."""

    def __init__(self, lookahead: int = 3):
        self._forward = BMAReconstructor(lookahead=lookahead)

    def drain_counters(self):
        return self._forward.drain_counters()

    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        reads = self._validate(cluster)
        left_length = expected_length - expected_length // 2
        right_length = expected_length // 2
        left = self._forward._run(reads, left_length)
        if right_length == 0:
            return left
        reversed_reads = [read[::-1] for read in reads]
        right = self._forward._run(reversed_reads, right_length)[::-1]
        return left + right
