"""Double-sided BMA (Lin et al.; Section VII-B).

Error propagation in BMA-lookahead is symmetric: reconstructing right to
left makes the *early* indexes unreliable instead of the late ones.
Double-sided BMA exploits this by reconstructing the left half of the strand
left-to-right and the right half right-to-left (on reversed reads), then
joining the halves.  Misalignment can propagate only half-way, so the
residual error concentrates — and peaks — in the middle indexes, the skew
that motivates the Gini and DNAMapper layouts.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.reconstruction.base import Reconstructor
from repro.reconstruction.bma import BMAReconstructor
from repro.reconstruction.matrix import (
    bma_consensus_batch,
    reverse_matrix,
    stack_clusters,
)


class DoubleSidedBMAReconstructor(Reconstructor):
    """Reconstruct both halves from their near ends and join them."""

    def __init__(self, lookahead: int = 3):
        self._forward = BMAReconstructor(lookahead=lookahead)

    def drain_counters(self):
        return self._forward.drain_counters()

    def reconstruct_batch(
        self, clusters: Sequence[Sequence[str]], expected_length: int
    ) -> List[str]:
        """Both halves of every cluster on stacked code matrices.

        Byte-identical to looping :meth:`reconstruct` (the scalar oracle):
        the right half runs on the per-read reversed matrix, so no strings
        are materialised between the halves.  Falls back to the scalar
        loop off the ACGT alphabet.
        """
        stacked = stack_clusters(clusters)
        if stacked is None:
            return super().reconstruct_batch(clusters, expected_length)
        matrix, lengths, starts = stacked
        left_length = expected_length - expected_length // 2
        right_length = expected_length // 2
        lookahead = self._forward.lookahead
        lefts, invocations = bma_consensus_batch(
            matrix, lengths, starts, left_length, lookahead
        )
        self._forward._lookahead_invocations += invocations
        if right_length == 0:
            return lefts
        rights, invocations = bma_consensus_batch(
            reverse_matrix(matrix, lengths), lengths, starts, right_length, lookahead
        )
        self._forward._lookahead_invocations += invocations
        return [left + right[::-1] for left, right in zip(lefts, rights)]

    def reconstruct(self, cluster: Sequence[str], expected_length: int) -> str:
        reads = self._validate(cluster)
        left_length = expected_length - expected_length // 2
        right_length = expected_length // 2
        left = self._forward._run(reads, left_length)
        if right_length == 0:
            return left
        reversed_reads = [read[::-1] for read in reads]
        right = self._forward._run(reversed_reads, right_length)[::-1]
        return left + right
