"""Trace reconstruction: consensus strands from clusters (Section VII).

Three algorithms are implemented, matching the paper:

* :class:`~repro.reconstruction.bma.BMAReconstructor` — the BMA-lookahead
  algorithm of Organick et al.; misalignment errors propagate left-to-right,
  so late indexes reconstruct less reliably.
* :class:`~repro.reconstruction.double_bma.DoubleSidedBMAReconstructor` —
  reconstructs each half from its near end, halving the propagation distance
  and concentrating residual errors in the middle indexes.
* :class:`~repro.reconstruction.nw_consensus.NWConsensusReconstructor` — the
  paper's novel approach: a Needleman-Wunsch-scored partial-order multiple
  sequence alignment followed by a per-column majority vote.
* :class:`~repro.reconstruction.windowed.WindowedPOAReconstructor` — the NW
  consensus extended to kb-scale strands: reads are anchored to backbone
  coordinates, consensus runs in overlapping windows with a batched, banded
  alignment kernel, and window consensuses are merged by overlap alignment.
"""

from repro.reconstruction.base import Reconstructor
from repro.reconstruction.bma import BMAReconstructor
from repro.reconstruction.double_bma import DoubleSidedBMAReconstructor
from repro.reconstruction.nw_consensus import NWConsensusReconstructor
from repro.reconstruction.majority import MajorityVoteReconstructor
from repro.reconstruction.trellis import TrellisMAPReconstructor
from repro.reconstruction.windowed import WindowedPOAReconstructor

__all__ = [
    "Reconstructor",
    "BMAReconstructor",
    "DoubleSidedBMAReconstructor",
    "NWConsensusReconstructor",
    "MajorityVoteReconstructor",
    "TrellisMAPReconstructor",
    "WindowedPOAReconstructor",
]
