"""End-to-end pipeline orchestration (Section III).

:class:`~repro.pipeline.pipeline.Pipeline` chains the five stages —
encoding, wetlab simulation, clustering, trace reconstruction, decoding —
with per-stage timing, mirroring the modular design of the paper: every
stage is an object the caller can swap for their own implementation.

:class:`~repro.pipeline.pool.DNAPool` models the storage layer itself: a
key-value store addressed by PCR primer pairs (Section II-F), supporting
random access via simulated PCR selection.
"""

from repro.pipeline.pipeline import Pipeline, PipelineResult
from repro.pipeline.config import PipelineConfig
from repro.pipeline.pool import DNAPool, PCRParameters
from repro.pipeline.stats import StageTimings
from repro.pipeline.store import DNAStorageSystem, StorageSystemConfig

__all__ = [
    "Pipeline",
    "PipelineResult",
    "PipelineConfig",
    "DNAPool",
    "PCRParameters",
    "StageTimings",
    "DNAStorageSystem",
    "StorageSystemConfig",
]
