"""The DNA storage system as a key-value store (Section II-F).

The paper's high-level architecture: a pool of molecules is a key-value
store whose keys are PCR primer pairs.  :class:`DNAStorageSystem` packages
the whole toolkit behind that interface —

* ``store(key, data)`` encodes the file under a fresh primer pair from the
  system's library and adds the tagged molecules to the shared tube;
* ``retrieve(key)`` runs the read path end to end: PCR selection,
  sequencing through the configured channel, wetlab preprocessing
  (orientation + primer trimming), clustering, trace reconstruction and
  decoding.

Everything is simulated, but the control flow is exactly the physical
system's, which makes this the right scaffold for end-to-end experiments
(and the quickest way to demo the toolkit).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.clustering import ClusteringConfig
from repro.codec import DNAEncoder, EncodingParameters, design_primer_library
from repro.pipeline.config import PipelineConfig
from repro.pipeline.pipeline import Pipeline, PipelineResult
from repro.pipeline.pool import DNAPool, PCRParameters
from repro.simulation.channel import Channel
from repro.simulation.coverage import ConstantCoverage, CoverageModel
from repro.simulation.iid import IIDChannel
from repro.wetlab import WetlabPreprocessor


@dataclass
class StorageSystemConfig:
    """Configuration of the whole storage system."""

    #: per-file encoding template (the primer pair is filled in per store())
    payload_bytes: int = 30
    data_columns: int = 60
    parity_columns: int = 20
    index_bytes: int = 3
    #: sequencing setup used by retrieve()
    channel: Channel = field(
        default_factory=lambda: IIDChannel.from_total_rate(0.05)
    )
    coverage: CoverageModel = field(default_factory=lambda: ConstantCoverage(10))
    pcr: PCRParameters = field(default_factory=PCRParameters)
    clustering: ClusteringConfig = field(
        default_factory=lambda: ClusteringConfig(seed=1)
    )
    #: physical copies synthesized per designed strand (abundance); makes
    #: aliquot copies non-destructive, as in a real tube
    physical_copies: int = 20
    #: primer pairs pre-designed for the system (max stored files)
    max_files: int = 8
    seed: int = 2024


class DNAStorageSystem:
    """Key-value storage over one simulated DNA pool."""

    def __init__(self, config: Optional[StorageSystemConfig] = None):
        self.config = config or StorageSystemConfig()
        self._rng = random.Random(self.config.seed)
        self._library = design_primer_library(
            self.config.max_files, rng=self._rng
        )
        self._pool = DNAPool()
        self._parameters: Dict[str, EncodingParameters] = {}
        self._units: Dict[str, int] = {}

    # ------------------------------------------------------------------

    @property
    def keys(self) -> List[str]:
        """Stored file names."""
        return self._pool.keys

    def __len__(self) -> int:
        return len(self._pool)

    def store(self, key: str, data: bytes) -> int:
        """Encode *data* under *key*; returns the number of molecules added.

        Raises :class:`ValueError` when the key exists or the primer
        library is exhausted.
        """
        if key in self._parameters:
            raise ValueError(f"key {key!r} already stored")
        used = len(self._parameters)
        if used >= len(self._library):
            raise ValueError(
                f"primer library exhausted ({len(self._library)} pairs); "
                "configure max_files higher"
            )
        pair = self._library[used]
        parameters = EncodingParameters(
            payload_bytes=self.config.payload_bytes,
            data_columns=self.config.data_columns,
            parity_columns=self.config.parity_columns,
            index_bytes=self.config.index_bytes,
            primer_pair=pair,
        )
        encoded = DNAEncoder(parameters).encode(data)
        self._pool.store(key, pair, encoded.strands, copies=self.config.physical_copies)
        self._parameters[key] = parameters
        self._units[key] = encoded.num_units
        return len(encoded.strands)

    def retrieve(self, key: str) -> PipelineResult:
        """Run the full read path for *key*; result.data holds the bytes."""
        parameters = self._parameters.get(key)
        if parameters is None:
            raise KeyError(f"no file stored under key {key!r}")
        pair = self._pool.primer_pair(key)

        amplified = self._pool.pcr_select(pair, self.config.pcr, self._rng)
        if not amplified:
            raise RuntimeError(f"PCR returned no molecules for key {key!r}")
        # Sequencing draws molecules proportional to their post-PCR
        # abundance, so amplification skew propagates into read depth.
        unique = len(set(amplified))
        total_reads = sum(
            self.config.coverage.sample(self._rng) for _ in range(unique)
        )
        raw_reads = [
            self.config.channel.transmit(self._rng.choice(amplified), self._rng)
            for _ in range(total_reads)
        ]
        preprocessor = WetlabPreprocessor(
            [pair], expected_body_length=parameters.body_nt
        )
        by_pair, _ = preprocessor.process(raw_reads)
        reads = by_pair.get(0, [])

        pipeline = Pipeline(
            PipelineConfig(
                encoding=parameters,
                channel=self.config.channel,
                coverage=self.config.coverage,
                clustering=self.config.clustering,
                seed=self._rng.randrange(2**31),
            )
        )
        return pipeline.run_from_reads(reads, expected_units=self._units[key])

    def sample_copy(self, fraction: float = 0.5) -> "DNAStorageSystem":
        """Physical copying: aliquot a fraction of the tube into a new system.

        The copy shares primer assignments and decoding parameters but
        holds an independent (sub-sampled) molecule population.
        """
        clone = DNAStorageSystem.__new__(DNAStorageSystem)
        clone.config = self.config
        clone._rng = random.Random(self._rng.randrange(2**31))
        clone._library = self._library
        clone._pool = self._pool.sample(fraction, clone._rng)
        clone._parameters = dict(self._parameters)
        clone._units = dict(self._units)
        return clone
