"""Configuration bundle for the end-to-end pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.codec.encoder import EncodingParameters
from repro.clustering.rashtchian import ClusteringConfig
from repro.reconstruction.base import Reconstructor
from repro.reconstruction.nw_consensus import NWConsensusReconstructor
from repro.simulation.channel import Channel
from repro.simulation.coverage import ConstantCoverage, CoverageModel
from repro.simulation.iid import IIDChannel


def _default_channel() -> Channel:
    return IIDChannel.from_total_rate(0.06)


@dataclass
class PipelineConfig:
    """Everything a :class:`~repro.pipeline.pipeline.Pipeline` run needs.

    The defaults reproduce the paper's Table III setting: payload length
    120 nt, 6% total error rate, coverage 10.
    """

    encoding: EncodingParameters = field(default_factory=EncodingParameters)
    channel: Channel = field(default_factory=_default_channel)
    coverage: CoverageModel = field(default_factory=lambda: ConstantCoverage(10))
    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    #: custom clusterer: any object with ``cluster(reads) -> ClusteringResult``;
    #: when set it replaces the Rashtchian clusterer (and ``clustering`` is
    #: ignored) — e.g. :class:`repro.clustering.tree.TreeClusterer`
    clusterer: Optional[object] = None
    #: consensus algorithm; for kb-scale strands prefer
    #: :class:`~repro.reconstruction.windowed.WindowedPOAReconstructor`
    #: (CLI ``--algorithm nww``), which windows the POA so per-alignment
    #: cost stays bounded and fans individual windows out to workers
    reconstructor: Reconstructor = field(default_factory=NWConsensusReconstructor)
    #: probability a simulated read is reported in the 3'->5' orientation;
    #: only meaningful when the encoding carries a primer pair, because
    #: orientation recovery needs the primer sites
    reverse_orientation_prob: float = 0.0
    #: drop clusters smaller than this before reconstruction (tiny clusters
    #: reconstruct poorly and their columns are better treated as erasures)
    min_cluster_size: int = 2
    #: score each stage against the simulation ground truth and attach a
    #: :class:`~repro.observability.quality.QualityReport` to the result
    assess_quality: bool = True
    #: reads aligned against their origin strands to estimate the realised
    #: channel error rates (alignment is quadratic in strand length, so
    #: this is sampled; 0 skips the channel section entirely)
    quality_sample: int = 64
    #: worker processes shared by the parallel stages (simulation sharding,
    #: clustering signatures + gray-zone verdicts, per-cluster
    #: reconstruction); 1 runs everything in-process.  Outputs are
    #: byte-identical at any worker count — see :mod:`repro.parallel`.
    workers: int = 1
    seed: Optional[int] = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.reverse_orientation_prob <= 1.0:
            raise ValueError("reverse_orientation_prob must be in [0, 1]")
        if self.min_cluster_size < 1:
            raise ValueError("min_cluster_size must be at least 1")
        if self.quality_sample < 0:
            raise ValueError("quality_sample must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if (
            self.reverse_orientation_prob > 0
            and self.encoding.primer_pair is None
        ):
            raise ValueError(
                "reverse_orientation_prob requires a primer pair: orientation "
                "can only be recovered from primer sites"
            )
