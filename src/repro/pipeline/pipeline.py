"""The end-to-end pipeline: encode -> simulate -> cluster -> reconstruct -> decode.

Every stage is pluggable (Section III of the paper): the channel, coverage
model, clustering configuration and reconstructor all come from the
:class:`~repro.pipeline.config.PipelineConfig`, and the wetlab-data entry
point :meth:`Pipeline.run_from_reads` lets real sequencing reads replace
the simulation stage entirely (Section VIII).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.clustering.rashtchian import ClusteringResult, RashtchianClusterer
from repro.codec.decoder import DecodeReport, DNADecoder
from repro.codec.encoder import DNAEncoder, EncodedPool
from repro.dna.alphabet import reverse_complement
from repro.pipeline.config import PipelineConfig
from repro.pipeline.stats import StageTimings
from repro.simulation.coverage import SequencingRun, sequence_pool
from repro.wetlab.preprocess import WetlabPreprocessor


@dataclass
class PipelineResult:
    """Everything one pipeline run produced, stage by stage."""

    data: bytes
    success: bool
    timings: StageTimings
    encoded: EncodedPool
    sequencing: Optional[SequencingRun]
    clustering: Optional[ClusteringResult]
    reconstructions: List[str] = field(default_factory=list)
    decode_report: Optional[DecodeReport] = None


class Pipeline:
    """Drives a file through the whole DNA storage pipeline."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        self.config = config or PipelineConfig()
        self._encoder = DNAEncoder(self.config.encoding)
        self._decoder = DNADecoder(self.config.encoding)

    # ------------------------------------------------------------------
    # Full simulated round trip
    # ------------------------------------------------------------------

    def run(self, data: bytes) -> PipelineResult:
        """Encode *data*, simulate the wetlab, and recover the file."""
        config = self.config
        rng = random.Random(config.seed)
        timings = StageTimings()

        start = time.perf_counter()
        encoded = self._encoder.encode(data)
        timings.encoding = time.perf_counter() - start

        start = time.perf_counter()
        transmitted = (
            encoded.strands
            if config.encoding.primer_pair is not None
            else encoded.references
        )
        run = sequence_pool(transmitted, config.channel, config.coverage, rng)
        reads = run.reads
        if config.reverse_orientation_prob > 0:
            reads = [
                reverse_complement(read)
                if rng.random() < config.reverse_orientation_prob
                else read
                for read in reads
            ]
        if config.encoding.primer_pair is not None:
            preprocessor = WetlabPreprocessor(
                [config.encoding.primer_pair],
                expected_body_length=config.encoding.body_nt,
            )
            by_pair, _ = preprocessor.process(reads)
            reads = by_pair.get(0, [])
        timings.simulation = time.perf_counter() - start

        result = self._recover(reads, encoded, timings)
        result.sequencing = run
        return result

    # ------------------------------------------------------------------
    # Wetlab-data entry point: reads replace the simulation stage
    # ------------------------------------------------------------------

    def run_from_reads(
        self, reads: Sequence[str], expected_units: Optional[int] = None
    ) -> PipelineResult:
        """Recover a file from externally-produced payload reads.

        *reads* must already be oriented and primer-trimmed (use
        :class:`~repro.wetlab.preprocess.WetlabPreprocessor` on raw fastq).
        """
        timings = StageTimings()
        placeholder = EncodedPool(
            strands=[],
            references=[],
            parameters=self.config.encoding,
            num_units=expected_units or 0,
            file_length=0,
        )
        return self._recover(
            list(reads), placeholder, timings, expected_units=expected_units
        )

    # ------------------------------------------------------------------

    def _recover(
        self,
        reads: List[str],
        encoded: EncodedPool,
        timings: StageTimings,
        expected_units: Optional[int] = None,
    ) -> PipelineResult:
        config = self.config

        start = time.perf_counter()
        clustering = None
        clusters_reads: List[List[str]] = []
        if reads:
            clusterer = config.clusterer or RashtchianClusterer(config.clustering)
            clustering = clusterer.cluster(reads)
            clusters_reads = [
                [reads[index] for index in cluster]
                for cluster in clustering.clusters
                if len(cluster) >= config.min_cluster_size
            ]
        timings.clustering = time.perf_counter() - start

        start = time.perf_counter()
        reconstructions = config.reconstructor.reconstruct_all(
            clusters_reads, config.encoding.body_nt
        )
        timings.reconstruction = time.perf_counter() - start

        start = time.perf_counter()
        data, report = self._decoder.decode(
            reconstructions,
            expected_units=expected_units
            or (encoded.num_units if encoded.num_units else None),
        )
        timings.decoding = time.perf_counter() - start

        return PipelineResult(
            data=data,
            success=report.success,
            timings=timings,
            encoded=encoded,
            sequencing=None,
            clustering=clustering,
            reconstructions=reconstructions,
            decode_report=report,
        )
