"""The end-to-end pipeline: encode -> simulate -> cluster -> reconstruct -> decode.

Every stage is pluggable (Section III of the paper): the channel, coverage
model, clustering configuration and reconstructor all come from the
:class:`~repro.pipeline.config.PipelineConfig`, and the wetlab-data entry
point :meth:`Pipeline.run_from_reads` lets real sequencing reads replace
the simulation stage entirely (Section VIII).

Both entry points accept an optional
:class:`~repro.observability.Tracer`; every stage then runs inside a
``pipeline.<stage>`` span (with the clusterer, reconstructor and decoder
emitting finer-grained child spans and counters), and
:class:`~repro.pipeline.stats.StageTimings` is rolled up from those span
durations.  Without a tracer the spans degrade to timing-only no-ops.

The pipeline's :class:`~repro.parallel.WorkerPool` shares the tracer, so
sharded stages stitch their worker-side spans (pid-annotated
``worker.chunk`` subtrees, per-chunk duration histograms, the
``worker_load_imbalance`` gauge) into the same merged tree.
"""

from __future__ import annotations

import inspect
import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.clustering.metrics import cluster_quality
from repro.clustering.rashtchian import ClusteringResult, RashtchianClusterer
from repro.codec.decoder import DecodeReport, DNADecoder
from repro.codec.encoder import DNAEncoder, EncodedPool
from repro.dna.alphabet import reverse_complement
from repro.dna.readpool import as_read_pool
from repro.observability.log import get_logger
from repro.observability.metrics import emit_process_gauges
from repro.observability.provenance import (
    NULL_LEDGER,
    ProvenanceLedger,
    ProvenanceReport,
    as_ledger,
)
from repro.observability.quality import ProvenanceQuality, QualityReport
from repro.observability.trace import Tracer, as_tracer
from repro.parallel import WorkerPool, derive_seed
from repro.pipeline.config import PipelineConfig
from repro.pipeline.quality import (
    GroundTruth,
    decoding_quality,
    reconstruction_quality,
)
from repro.pipeline.stats import StageTimings
from repro.simulation.coverage import SequencingRun, sequence_pool
from repro.simulation.observed import observe_channel_quality
from repro.wetlab.preprocess import WetlabPreprocessor

if TYPE_CHECKING:
    from repro.observability.sampler import TelemetrySampler


@dataclass
class PipelineResult:
    """Everything one pipeline run produced, stage by stage."""

    data: bytes
    success: bool
    timings: StageTimings
    encoded: EncodedPool
    sequencing: Optional[SequencingRun]
    clustering: Optional[ClusteringResult]
    reconstructions: List[str] = field(default_factory=list)
    decode_report: Optional[DecodeReport] = None
    #: per-stage quality sections (channel / clustering / reconstruction /
    #: decoding); ``None`` when ``config.assess_quality`` is off
    quality: Optional[QualityReport] = None
    #: per-strand lineage + root-cause verdicts; ``None`` unless a
    #: :class:`~repro.observability.ProvenanceLedger` was passed to ``run``
    provenance: Optional[ProvenanceReport] = None


def _accepts_kwarg(method, name: str) -> bool:
    """True when a pluggable stage's method takes keyword *name*.

    Custom clusterers/reconstructors predating the tracer or the worker
    pool keep working: the pipeline only forwards the keywords their
    signatures advertise.
    """
    try:
        signature = inspect.signature(method)
    except (TypeError, ValueError):
        return False
    return name in signature.parameters


class Pipeline:
    """Drives a file through the whole DNA storage pipeline."""

    def __init__(self, config: Optional[PipelineConfig] = None):
        self.config = config or PipelineConfig()
        self._encoder = DNAEncoder(self.config.encoding)
        self._decoder = DNADecoder(self.config.encoding)

    # ------------------------------------------------------------------
    # Full simulated round trip
    # ------------------------------------------------------------------

    def run(
        self,
        data: bytes,
        tracer: Optional[Tracer] = None,
        ledger: Optional[ProvenanceLedger] = None,
        sampler: Optional["TelemetrySampler"] = None,
    ) -> PipelineResult:
        """Encode *data*, simulate the wetlab, and recover the file.

        All randomness derives from ``config.seed`` through per-stage (and,
        inside the sharded stages, per-item) seed streams, so the result is
        byte-identical at any ``config.workers`` setting.

        Pass a :class:`~repro.observability.ProvenanceLedger` to record
        every strand's lineage for the ``repro why`` forensics (the same
        opt-in pattern as *tracer*).  Lineage needs the read->origin
        pairing, which primer preprocessing destroys, so the ledger is
        ignored on primer-wrapped configurations.

        Pass a :class:`~repro.observability.TelemetrySampler` (built on
        *tracer*'s metrics registry) to collect a live counter/gauge/RSS
        time-series covering exactly this run: it is started as the run
        begins and stopped — even on an exception — before ``run``
        returns, so ``sampler.samples`` is complete afterwards.
        """
        config = self.config
        tracer = as_tracer(tracer)
        ledger = as_ledger(ledger)
        if ledger.enabled and config.encoding.primer_pair is not None:
            get_logger("pipeline").warning(
                "provenance ledger disabled: primer preprocessing loses the "
                "read->origin pairing lineage needs"
            )
            ledger = NULL_LEDGER
        base_seed = (
            config.seed if config.seed is not None else random.Random().getrandbits(64)
        )
        timings = StageTimings()

        # The sampler is a context manager (start on enter, stop on exit),
        # so its series brackets exactly the pipeline.run span — including
        # the final sample after the last stage — even when a stage raises.
        with (
            sampler if sampler is not None else nullcontext()
        ), tracer.span("pipeline.run", input_bytes=len(data)), WorkerPool(
            config.workers, tracer=tracer
        ) as pool:
            with tracer.span("pipeline.encoding") as span:
                encoded = self._encoder.encode(data)
                span.set("strands", len(encoded.references))
                span.set("units", encoded.num_units)
            timings.encoding = span.duration
            ledger.record_encoding(
                encoded.references, config.encoding.total_columns, encoded.num_units
            )

            with tracer.span("pipeline.simulation") as span:
                transmitted = (
                    encoded.strands
                    if config.encoding.primer_pair is not None
                    else encoded.references
                )
                run = sequence_pool(
                    transmitted,
                    config.channel,
                    config.coverage,
                    seed=derive_seed(base_seed, "simulation"),
                    pool=pool,
                )
                reads = run.reads
                if config.reverse_orientation_prob > 0:
                    orientation_rng = random.Random(
                        derive_seed(base_seed, "orientation")
                    )
                    reads = [
                        reverse_complement(read)
                        if orientation_rng.random() < config.reverse_orientation_prob
                        else read
                        for read in reads
                    ]
                span.set("reads", len(reads))
                span.set("dropouts", len(run.dropouts))
                span.set("shards", pool.last_shards)
            timings.simulation = span.duration

            if ledger.enabled:
                # The ledger's one expensive pass: align every read against
                # its origin (sharded; order-preserving merge).
                with tracer.span("provenance.sequencing", reads=len(run.reads)):
                    ledger.record_sequencing(run, pool=pool)

            channel_quality = None
            truth = None
            if config.assess_quality:
                with tracer.span("quality.channel") as span:
                    channel_quality = observe_channel_quality(
                        run,
                        config.channel,
                        sample=config.quality_sample,
                        seed=config.seed or 0,
                    )
                    if channel_quality is not None:
                        span.set("reads_sampled", channel_quality.reads_sampled)
                if config.encoding.primer_pair is None:
                    # Preprocessing filters and reorders reads, losing the
                    # read->origin pairing; ground-truth scoring of the
                    # later stages is only possible on the unfiltered path.
                    truth = GroundTruth(
                        origins=run.origins, references=encoded.references
                    )

            if config.encoding.primer_pair is not None:
                with tracer.span("pipeline.preprocessing") as span:
                    preprocessor = WetlabPreprocessor(
                        [config.encoding.primer_pair],
                        expected_body_length=config.encoding.body_nt,
                    )
                    by_pair, stats = preprocessor.process(reads)
                    reads = by_pair.get(0, [])
                    span.set("accepted", stats.accepted)
                    span.set("flipped", stats.flipped)
                    rejected = stats.total - stats.accepted
                    span.set("rejected", rejected)
                    tracer.metrics.counter(
                        "reads_discarded", stage="preprocessing"
                    ).inc(rejected)
                timings.preprocessing = span.duration

            result = self._recover(
                reads,
                encoded,
                timings,
                tracer=tracer,
                truth=truth,
                channel_quality=channel_quality,
                pool=pool,
                ledger=ledger,
            )
            emit_process_gauges(tracer.metrics)
        result.sequencing = run
        return result

    # ------------------------------------------------------------------
    # Wetlab-data entry point: reads replace the simulation stage
    # ------------------------------------------------------------------

    def run_from_reads(
        self,
        reads: Sequence[str],
        expected_units: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> PipelineResult:
        """Recover a file from externally-produced payload reads.

        *reads* must already be oriented and primer-trimmed (use
        :class:`~repro.wetlab.preprocess.WetlabPreprocessor` on raw fastq).
        """
        tracer = as_tracer(tracer)
        timings = StageTimings()
        placeholder = EncodedPool(
            strands=[],
            references=[],
            parameters=self.config.encoding,
            num_units=expected_units or 0,
            file_length=0,
        )
        with tracer.span("pipeline.run_from_reads", reads=len(reads)), WorkerPool(
            self.config.workers, tracer=tracer
        ) as pool:
            result = self._recover(
                list(reads),
                placeholder,
                timings,
                expected_units=expected_units,
                tracer=tracer,
                pool=pool,
            )
            emit_process_gauges(tracer.metrics)
        return result

    # ------------------------------------------------------------------

    def _recover(
        self,
        reads: List[str],
        encoded: EncodedPool,
        timings: StageTimings,
        expected_units: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        truth: Optional[GroundTruth] = None,
        channel_quality=None,
        pool: Optional[WorkerPool] = None,
        ledger: Optional[ProvenanceLedger] = None,
    ) -> PipelineResult:
        config = self.config
        tracer = as_tracer(tracer)
        ledger = as_ledger(ledger)

        with tracer.span("pipeline.clustering", reads=len(reads)) as span:
            clustering = None
            kept_clusters: List[List[int]] = []
            clusters_reads: List[Sequence[str]] = []
            if reads:
                # One columnar pool for the whole recovery: clustering reuses
                # its radix codes for signatures and batched edit verdicts,
                # and each kept cluster becomes a zero-copy view into it for
                # the matrix-consensus reconstructors.  Reads that cannot be
                # pooled (non-latin-1) keep the list-of-str path throughout.
                read_pool = as_read_pool(reads)
                cluster_input = read_pool if read_pool is not None else reads
                clusterer = config.clusterer or RashtchianClusterer(config.clustering)
                kwargs = {}
                if _accepts_kwarg(clusterer.cluster, "tracer"):
                    kwargs["tracer"] = tracer
                if pool is not None and _accepts_kwarg(clusterer.cluster, "pool"):
                    kwargs["pool"] = pool
                clustering = clusterer.cluster(cluster_input, **kwargs)
                kept_ids = [
                    cluster_id
                    for cluster_id, cluster in enumerate(clustering.clusters)
                    if len(cluster) >= config.min_cluster_size
                ]
                kept_clusters = [
                    clustering.clusters[cluster_id] for cluster_id in kept_ids
                ]
                ledger.record_clustering(clustering.clusters, kept_ids)
                if read_pool is not None:
                    clusters_reads = [
                        read_pool.view(cluster) for cluster in kept_clusters
                    ]
                else:
                    clusters_reads = [
                        [reads[index] for index in cluster]
                        for cluster in kept_clusters
                    ]
                discarded = len(reads) - sum(len(c) for c in clusters_reads)
                span.set("clusters", len(clustering.clusters))
                span.set("kept_clusters", len(clusters_reads))
                tracer.metrics.counter("clusters_formed").inc(
                    len(clustering.clusters)
                )
                tracer.metrics.counter("reads_discarded", stage="clustering").inc(
                    discarded
                )
        timings.clustering = span.duration

        clustering_q = None
        if truth is not None and clustering is not None:
            with tracer.span("quality.clustering"):
                clustering_q = cluster_quality(
                    clustering.clusters, truth.true_clusters()
                )

        with tracer.span(
            "pipeline.reconstruction", clusters=len(clusters_reads)
        ) as span:
            kwargs = {}
            if _accepts_kwarg(config.reconstructor.reconstruct_all, "tracer"):
                kwargs["tracer"] = tracer
            if pool is not None and _accepts_kwarg(
                config.reconstructor.reconstruct_all, "pool"
            ):
                kwargs["pool"] = pool
            reconstructions = config.reconstructor.reconstruct_all(
                clusters_reads, config.encoding.body_nt, **kwargs
            )
        timings.reconstruction = span.duration

        if ledger.enabled:
            with tracer.span(
                "provenance.reconstruction", strands=len(reconstructions)
            ):
                ledger.record_reconstruction(reconstructions, pool=pool)

        reconstruction_q = None
        if truth is not None and reconstructions:
            with tracer.span("quality.reconstruction"):
                reconstruction_q = reconstruction_quality(
                    kept_clusters, reconstructions, truth, metrics=tracer.metrics
                )

        with tracer.span("pipeline.decoding", strands=len(reconstructions)) as span:
            data, report = self._decoder.decode(
                reconstructions,
                expected_units=expected_units
                or (encoded.num_units if encoded.num_units else None),
                tracer=tracer,
                pool=pool,
                ledger=ledger,
            )
            span.set("success", report.success)
        timings.decoding = span.duration

        provenance = None
        if ledger.enabled:
            with tracer.span("provenance.forensics"):
                provenance = ledger.finalize()

        quality = None
        if config.assess_quality:
            provenance_q = None
            if provenance is not None:
                verdicts = provenance.summary.verdicts
                provenance_q = ProvenanceQuality(
                    strands=provenance.summary.strands,
                    ok=verdicts.get("ok", 0),
                    dropout=verdicts.get("dropout", 0),
                    underclustered=verdicts.get("underclustered", 0),
                    misclustered=verdicts.get("misclustered", 0),
                    consensus_error=verdicts.get("consensus_error", 0),
                    ecc_overload=verdicts.get("ecc_overload", 0),
                )
            quality = QualityReport(
                channel=channel_quality,
                clustering=clustering_q,
                reconstruction=reconstruction_q,
                decoding=decoding_quality(report, len(data)),
                provenance=provenance_q,
            )
            quality.emit(tracer.metrics)

        return PipelineResult(
            data=data,
            success=report.success,
            timings=timings,
            encoded=encoded,
            sequencing=None,
            clustering=clustering,
            reconstructions=reconstructions,
            decode_report=report,
            quality=quality,
            provenance=provenance,
        )
