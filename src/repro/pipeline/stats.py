"""Per-stage timing, the raw material of the paper's Table III.

Timings are rolled up from the observability spans the pipeline emits
(see :mod:`repro.observability`): each field equals the duration of the
matching ``pipeline.<stage>`` span, so a saved trace and a
:class:`StageTimings` always agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class StageTimings:
    """Wall-clock seconds spent in each pipeline stage.

    ``preprocessing`` is the wetlab preprocessing step (orientation
    fixing + primer trimming), which only runs when the encoding carries
    a primer pair; it is accounted separately from ``simulation`` (the
    synthesis/sequencing channel itself).
    """

    encoding: float = 0.0
    simulation: float = 0.0
    preprocessing: float = 0.0
    clustering: float = 0.0
    reconstruction: float = 0.0
    decoding: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.encoding
            + self.simulation
            + self.preprocessing
            + self.clustering
            + self.reconstruction
            + self.decoding
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "encoding": self.encoding,
            "simulation": self.simulation,
            "preprocessing": self.preprocessing,
            "clustering": self.clustering,
            "reconstruction": self.reconstruction,
            "decoding": self.decoding,
            "total": self.total,
        }
