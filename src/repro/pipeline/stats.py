"""Per-stage timing, the raw material of the paper's Table III."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class StageTimings:
    """Wall-clock seconds spent in each pipeline stage."""

    encoding: float = 0.0
    simulation: float = 0.0
    clustering: float = 0.0
    reconstruction: float = 0.0
    decoding: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.encoding
            + self.simulation
            + self.clustering
            + self.reconstruction
            + self.decoding
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "encoding": self.encoding,
            "simulation": self.simulation,
            "clustering": self.clustering,
            "reconstruction": self.reconstruction,
            "decoding": self.decoding,
            "total": self.total,
        }
