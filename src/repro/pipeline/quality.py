"""Builds the per-stage quality sections during a pipeline run.

The simulated path has full ground truth — every read knows which strand
produced it (:attr:`~repro.simulation.coverage.SequencingRun.origins`) —
so the pipeline can score each stage as it goes: the clustering against
the origin labels, each reconstruction against the body of its cluster's
dominant origin, and the decode against its own Reed-Solomon bookkeeping.
The wetlab-reads path has no origins, so only the decoding section is
available there.

All numbers also flow into the tracer's metrics registry (histograms for
distributions, gauges for headline fractions), keeping ``repro trace``
and the structured :class:`~repro.observability.quality.QualityReport`
two views of the same data.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.codec.decoder import DecodeReport
from repro.dna.distance import levenshtein_distance
from repro.observability.metrics import MetricsRegistry, percentile
from repro.observability.quality import DecodingQuality, ReconstructionQuality


@dataclass
class GroundTruth:
    """What the simulation knew: per-read origin labels + reference bodies.

    ``origins[i]`` labels read ``i`` (the index list clustering operates
    over); ``references[origin]`` is the clean strand *body* that read
    should reconstruct to.
    """

    origins: List[int]
    references: List[str]

    def true_clusters(self) -> List[List[int]]:
        """Ground-truth clustering in the predicted-clusters shape."""
        clusters = {}
        for read_index, origin in enumerate(self.origins):
            clusters.setdefault(origin, []).append(read_index)
        return list(clusters.values())


def reconstruction_quality(
    kept_clusters: Sequence[Sequence[int]],
    reconstructions: Sequence[str],
    truth: GroundTruth,
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[ReconstructionQuality]:
    """Score reconstructions against each cluster's dominant origin body.

    ``kept_clusters`` (read-index lists) must be parallel to
    ``reconstructions``.  A cluster's target is the reference body of the
    origin most of its reads came from — the strand a perfect pipeline
    would emit for it — so impure clusters are charged the full distance
    to the strand they *should* have reconstructed.
    """
    if not reconstructions or len(kept_clusters) != len(reconstructions):
        return None
    distances: List[int] = []
    exact = 0
    for cluster, consensus in zip(kept_clusters, reconstructions):
        votes = Counter(truth.origins[read_index] for read_index in cluster)
        origin = votes.most_common(1)[0][0]
        reference = truth.references[origin]
        if consensus == reference:
            exact += 1
            distances.append(0)
        else:
            distances.append(levenshtein_distance(consensus, reference))
    if metrics is not None:
        histogram = metrics.histogram("reconstruction_edit_distance")
        for distance in distances:
            histogram.observe(distance)
    return ReconstructionQuality(
        strands=len(distances),
        exact_matches=exact,
        mean_edit_distance=sum(distances) / len(distances),
        p90_edit_distance=percentile(distances, 90),
        max_edit_distance=max(distances),
    )


def decoding_quality(report: DecodeReport, bytes_recovered: int) -> DecodingQuality:
    """Fold the decoder's own bookkeeping into the quality-report shape."""
    return DecodingQuality(
        clean_rows=report.clean_rows,
        corrected_rows=report.corrected_rows,
        failed_rows=report.failed_rows,
        symbols_corrected=report.symbols_corrected,
        erasures=report.missing_columns,
        bytes_recovered=bytes_recovered,
        success=report.success,
    )
