"""The DNA pool: a primer-addressed key-value store (Section II-F).

Molecules from many files share one physical tube.  There is no physical
order — the only addressing mechanism is PCR: given a primer pair, all
molecules whose ends match that pair are exponentially amplified and can
then be sequenced.  The pool therefore behaves as a key-value store whose
keys are primer pairs and whose values are the tagged molecules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.codec.primers import PrimerPair
from repro.dna.alphabet import reverse_complement


@dataclass
class PCRParameters:
    """Knobs of the simulated PCR selection.

    ``max_end_mismatches`` models primer annealing specificity: a molecule
    amplifies only if each of its two primer sites mismatches the target
    primer in at most this many bases.  ``amplification`` is the expected
    number of copies produced per matching molecule, and ``efficiency`` the
    per-molecule probability of participating at all (dropout).
    """

    max_end_mismatches: int = 3
    amplification: int = 4
    efficiency: float = 0.95

    def __post_init__(self) -> None:
        if self.max_end_mismatches < 0:
            raise ValueError("max_end_mismatches must be non-negative")
        if self.amplification < 1:
            raise ValueError("amplification must be at least 1")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")


class DNAPool:
    """A tube of tagged molecules from any number of stored files."""

    def __init__(self) -> None:
        self._molecules: List[str] = []
        self._keys: Dict[str, PrimerPair] = {}

    def __len__(self) -> int:
        return len(self._molecules)

    @property
    def keys(self) -> List[str]:
        """Names of the files stored in this pool."""
        return sorted(self._keys)

    def primer_pair(self, key: str) -> PrimerPair:
        """The primer pair under which *key* was stored."""
        try:
            return self._keys[key]
        except KeyError:
            raise KeyError(f"no file stored under key {key!r}") from None

    def store(
        self,
        key: str,
        pair: PrimerPair,
        strands: Sequence[str],
        copies: int = 1,
    ) -> None:
        """Add a file's tagged *strands* to the tube under *key*.

        The strands must already carry the pair's primer sites (the encoder
        does this when its parameters include the pair).  Molecules of all
        files mix freely — that is the point of the experiment.

        ``copies`` models synthesis abundance: each designed strand enters
        the tube that many times.  Real synthesis produces millions of
        copies, which is what makes aliquot-based copying non-destructive;
        a handful of copies is enough to capture that behaviour in
        simulation.
        """
        if key in self._keys:
            raise ValueError(f"key {key!r} already stored in this pool")
        if copies < 1:
            raise ValueError(f"copies must be at least 1, got {copies}")
        for strand in strands:
            if not strand.startswith(pair.forward):
                raise ValueError(
                    f"strand does not start with the forward primer of {key!r}"
                )
        self._keys[key] = pair
        for strand in strands:
            self._molecules.extend([strand] * copies)

    def pcr_select(
        self,
        pair: PrimerPair,
        parameters: Optional[PCRParameters] = None,
        rng: Optional[random.Random] = None,
    ) -> List[str]:
        """Simulate PCR amplification with *pair* over the whole tube.

        Returns the amplified molecules (with their primer sites intact),
        in randomised order.  Molecules of other files survive only if
        their primer sites happen to lie within the mismatch tolerance —
        with a well-designed library (pairwise Hamming distance above the
        tolerance) that never happens.
        """
        parameters = parameters or PCRParameters()
        rng = rng or random.Random()
        forward = pair.forward
        reverse_site = reverse_complement(pair.reverse)
        selected: List[str] = []
        for molecule in self._molecules:
            if len(molecule) < len(forward) + len(reverse_site):
                continue
            head = molecule[: len(forward)]
            tail = molecule[len(molecule) - len(reverse_site) :]
            head_mismatch = sum(1 for a, b in zip(head, forward) if a != b)
            if head_mismatch > parameters.max_end_mismatches:
                continue
            tail_mismatch = sum(1 for a, b in zip(tail, reverse_site) if a != b)
            if tail_mismatch > parameters.max_end_mismatches:
                continue
            if rng.random() >= parameters.efficiency:
                continue
            selected.extend([molecule] * parameters.amplification)
        rng.shuffle(selected)
        return selected

    def sample(self, fraction: float, rng: Optional[random.Random] = None) -> "DNAPool":
        """Aliquot: a new pool holding a random *fraction* of the molecules.

        Physical copying in DNA storage is exactly this cheap — pipette a
        fraction of the tube and re-amplify.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rng = rng or random.Random()
        aliquot = DNAPool()
        aliquot._keys = dict(self._keys)
        aliquot._molecules = [
            molecule for molecule in self._molecules if rng.random() < fraction
        ]
        return aliquot
