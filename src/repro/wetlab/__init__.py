"""Handling real sequencing data (Section VIII of the paper).

When strands are actually synthesized and sequenced, the sequencer's fastq
output replaces the simulation module.  Before clustering, reads must be

1. oriented — sequencers report both the 5'->3' strand and its reverse
   complement, so 3'->5' reads are flipped by comparing their ends against
   the primer library;
2. assigned to a file — by identifying which primer pair tags them;
3. trimmed — primer sites are stripped so only the payload (index + data)
   reaches the clustering module.
"""

from repro.wetlab.orientation import OrientedRead, orient_read
from repro.wetlab.preprocess import PreprocessStats, WetlabPreprocessor

__all__ = [
    "OrientedRead",
    "orient_read",
    "PreprocessStats",
    "WetlabPreprocessor",
]
