"""Read orientation against a primer pair.

A synthesized strand reads ``forward + body + revcomp(reverse)`` in the
5'->3' direction.  A sequencer may report the complementary strand instead,
which reads ``reverse + revcomp(body) + revcomp(forward)``.  Orientation is
decided by scoring the read's two ends against the primer pair in both
hypotheses and keeping the better one.

Scores are *edit* distances of the primer against the read boundary, not
Hamming distances: a single indel inside a primer site shifts every
following base, which would make a positional comparison reject otherwise
perfectly usable reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.codec.primers import PrimerPair
from repro.dna.alphabet import reverse_complement
from repro.dna.distance import prefix_edit_distance

#: Extra bases of read boundary considered beyond the primer length, to
#: absorb indel-induced drift of the primer site.
_BOUNDARY_SLACK = 5


def locate_primer_sites(read: str, pair: PrimerPair) -> Tuple[int, int, int]:
    """Locate the payload boundaries of *read* under *pair*.

    Returns ``(mismatches, payload_start, payload_end)``: the summed edit
    distance of both primer sites and the read slice containing the payload.
    The forward primer is matched against the head of the read, and the
    reverse-complemented reverse primer against the (reversed) tail, so the
    boundaries track indels instead of assuming fixed primer widths.
    """
    forward_site = pair.forward
    reverse_site = reverse_complement(pair.reverse)
    head_window = read[: len(forward_site) + _BOUNDARY_SLACK]
    head_distance, payload_start = prefix_edit_distance(forward_site, head_window)
    tail_window = read[max(0, len(read) - len(reverse_site) - _BOUNDARY_SLACK) :]
    tail_distance, tail_extent = prefix_edit_distance(
        reverse_site[::-1], tail_window[::-1]
    )
    payload_end = len(read) - tail_extent
    if payload_end < payload_start:
        payload_end = payload_start
    return head_distance + tail_distance, payload_start, payload_end


@dataclass(frozen=True)
class OrientedRead:
    """The 5'->3' read plus how confidently it matched the primer pair.

    ``mismatches`` is the summed edit distance of the two primer sites
    under the chosen orientation; ``flipped`` records whether the read was
    reverse-complemented; ``payload_start``/``payload_end`` delimit the
    payload (primers excluded) in ``sequence``.
    """

    sequence: str
    mismatches: int
    flipped: bool
    payload_start: int = 0
    payload_end: int = 0

    @property
    def payload(self) -> str:
        return self.sequence[self.payload_start : self.payload_end]


def orient_read(read: str, pair: PrimerPair) -> OrientedRead:
    """Return *read* in the 5'->3' orientation relative to *pair*.

    Both the read and its reverse complement are scored against the primer
    sites; the orientation with the lower summed primer edit distance wins
    (ties keep the original orientation).
    """
    if not read:
        worst = len(pair.forward) + len(pair.reverse)
        return OrientedRead(sequence="", mismatches=worst, flipped=False)
    as_is, start, end = locate_primer_sites(read, pair)
    flipped_read = reverse_complement(read)
    flipped, flipped_start, flipped_end = locate_primer_sites(flipped_read, pair)
    if flipped < as_is:
        return OrientedRead(
            sequence=flipped_read,
            mismatches=flipped,
            flipped=True,
            payload_start=flipped_start,
            payload_end=flipped_end,
        )
    return OrientedRead(
        sequence=read,
        mismatches=as_is,
        flipped=False,
        payload_start=start,
        payload_end=end,
    )
