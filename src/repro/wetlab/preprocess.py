"""fastq-to-clustering preprocessing (Section VIII).

The preprocessor turns raw sequencer output into the payload reads the
clustering module expects: it fixes orientation, assigns every read to the
primer pair (file) it matches best, rejects reads that match no pair well
enough or fail basic quality/length screens, and strips the primer sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.codec.primers import PrimerPair
from repro.dna.fastq import FastqRecord
from repro.wetlab.orientation import orient_read


@dataclass
class PreprocessStats:
    """Accounting of what happened to each input read."""

    total: int = 0
    accepted: int = 0
    flipped: int = 0
    rejected_primer: int = 0
    rejected_quality: int = 0
    rejected_length: int = 0
    per_pair: Dict[int, int] = field(default_factory=dict)


class WetlabPreprocessor:
    """Converts fastq records into per-file payload reads.

    Parameters
    ----------
    primer_library:
        The primer pairs in use; each read is assigned to the best-matching
        pair.
    max_primer_mismatches:
        Reject reads whose best pair still mismatches more than this many
        bases across both primer sites.
    min_mean_quality:
        Reject reads whose mean Phred quality is lower (0 disables; reads
        without quality scores always pass).
    expected_body_length / length_tolerance:
        When given, reject payloads outside
        ``expected +- tolerance * expected``.
    """

    def __init__(
        self,
        primer_library: Sequence[PrimerPair],
        max_primer_mismatches: int = 10,
        min_mean_quality: float = 0.0,
        expected_body_length: Optional[int] = None,
        length_tolerance: float = 0.35,
    ):
        if not primer_library:
            raise ValueError("primer_library must not be empty")
        self.primer_library = list(primer_library)
        self.max_primer_mismatches = max_primer_mismatches
        self.min_mean_quality = min_mean_quality
        self.expected_body_length = expected_body_length
        self.length_tolerance = length_tolerance

    def process(
        self, records: Iterable[Union[FastqRecord, str]]
    ) -> Tuple[Dict[int, List[str]], PreprocessStats]:
        """Process *records* (fastq records or bare sequences).

        Returns
        -------
        (by_pair, stats):
            ``by_pair`` maps primer-library indices to the payload reads
            assigned to that pair, primers stripped and orientation fixed.
        """
        stats = PreprocessStats()
        by_pair: Dict[int, List[str]] = {}
        for record in records:
            stats.total += 1
            if isinstance(record, FastqRecord):
                sequence = record.sequence
                if (
                    self.min_mean_quality > 0
                    and record.qualities
                    and record.mean_quality() < self.min_mean_quality
                ):
                    stats.rejected_quality += 1
                    continue
            else:
                sequence = record

            best_index, oriented = self._assign(sequence)
            if oriented is None or oriented.mismatches > self.max_primer_mismatches:
                stats.rejected_primer += 1
                continue
            payload = oriented.payload
            if not self._length_ok(payload):
                stats.rejected_length += 1
                continue
            stats.accepted += 1
            if oriented.flipped:
                stats.flipped += 1
            stats.per_pair[best_index] = stats.per_pair.get(best_index, 0) + 1
            by_pair.setdefault(best_index, []).append(payload)
        return by_pair, stats

    # ------------------------------------------------------------------

    def _assign(self, sequence: str):
        best_index, best = None, None
        for index, pair in enumerate(self.primer_library):
            oriented = orient_read(sequence, pair)
            if best is None or oriented.mismatches < best.mismatches:
                best_index, best = index, oriented
        return best_index, best

    def _length_ok(self, payload: str) -> bool:
        if not payload:
            return False
        if self.expected_body_length is None:
            return True
        slack = self.length_tolerance * self.expected_body_length
        return (
            self.expected_body_length - slack
            <= len(payload)
            <= self.expected_body_length + slack
        )
