"""Bahdanau (additive) attention over encoder annotations.

At every decoder step the attention assigns a weight to each encoder
annotation and passes their weighted average (the *context*) to the
decoder.  This is the alignment mechanism of Figure 4: it lets the decoder
track which clean-strand position it is currently corrupting, which is what
makes the model's insertions/deletions positionally faithful.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.seq2seq.layers import Dense, Module


class BahdanauAttention(Module):
    """``score(s, h_i) = v^T tanh(W_s s + W_h h_i)``."""

    def __init__(self, state_size: int, annotation_size: int, attention_size: int, rng: np.random.Generator):
        self.project_state = Dense(state_size, attention_size, rng, bias=False)
        self.project_annotation = Dense(annotation_size, attention_size, rng, bias=False)
        self.score_vector = Dense(attention_size, 1, rng, bias=False)

    def __call__(self, state: Tensor, annotations: Tensor, projected: Tensor) -> Tensor:
        """Return the context vector for one decoder step.

        Parameters
        ----------
        state:
            Decoder hidden state, shape ``(batch, state_size)``.
        annotations:
            Encoder annotations, shape ``(batch, length, annotation_size)``.
        projected:
            ``project_annotations(annotations)`` — precomputed once per
            sequence because it does not depend on the decoder state.

        Returns
        -------
        Context tensor of shape ``(batch, annotation_size)``.
        """
        batch, length, _ = annotations.shape
        # (batch, 1, attention) broadcast against (batch, length, attention)
        state_term = self.project_state(state).reshape(batch, 1, -1)
        energies = self.score_vector(F.tanh(projected + state_term))
        weights = F.softmax(energies.reshape(batch, length), axis=1)
        # Weighted sum over the length axis.
        context = (annotations * weights.reshape(batch, length, 1)).sum(axis=1)
        return context

    def project_annotations(self, annotations: Tensor) -> Tensor:
        """Precompute the annotation projection for a whole sequence."""
        return self.project_annotation(annotations)
