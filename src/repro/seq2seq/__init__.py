"""The GRU + attention channel simulator (Figure 4 of the paper).

A sequence-to-sequence model with a bi-directional GRU encoder, Bahdanau
(additive) attention and an autoregressive GRU decoder, trained to model
``Pr(noisy | clean)`` on paired strands.  Once trained it acts as a regular
:class:`~repro.simulation.channel.Channel`: transmitting a strand means
sampling a noisy read token by token from the decoder's predictive
distribution.

Everything runs on the toolkit's own numpy autograd
(:mod:`repro.autograd`); no deep-learning framework is required.
"""

from repro.seq2seq.vocab import Vocabulary
from repro.seq2seq.layers import Dense, Embedding, GRUCell
from repro.seq2seq.attention import BahdanauAttention
from repro.seq2seq.model import Seq2SeqChannelModel
from repro.seq2seq.training import Seq2SeqTrainer, TrainingConfig

__all__ = [
    "Vocabulary",
    "Dense",
    "Embedding",
    "GRUCell",
    "BahdanauAttention",
    "Seq2SeqChannelModel",
    "Seq2SeqTrainer",
    "TrainingConfig",
]
