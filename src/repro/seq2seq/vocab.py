"""Token vocabulary for strand sequences.

Four nucleotide tokens plus PAD (batch padding), SOS (decoder start) and
EOS (end of the noisy read — the model must learn where reads stop, since
indels change read lengths).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.dna.alphabet import BASES


class Vocabulary:
    """Fixed 7-token vocabulary: PAD, SOS, EOS, A, C, G, T."""

    PAD = 0
    SOS = 1
    EOS = 2

    def __init__(self) -> None:
        self._base_to_token = {
            base: index + 3 for index, base in enumerate(BASES)
        }
        self._token_to_base = {
            token: base for base, token in self._base_to_token.items()
        }

    def __len__(self) -> int:
        return 3 + len(self._base_to_token)

    def encode(self, strand: str, add_eos: bool = False) -> np.ndarray:
        """Map a strand to int64 tokens, optionally appending EOS."""
        try:
            tokens = [self._base_to_token[base] for base in strand]
        except KeyError as error:
            raise ValueError(f"invalid base {error.args[0]!r} in strand") from None
        if add_eos:
            tokens.append(self.EOS)
        return np.asarray(tokens, dtype=np.int64)

    def decode(self, tokens) -> str:
        """Map tokens back to a strand, stopping at EOS and skipping PAD/SOS."""
        bases: List[str] = []
        for token in np.asarray(tokens).tolist():
            if token == self.EOS:
                break
            if token in (self.PAD, self.SOS):
                continue
            base = self._token_to_base.get(int(token))
            if base is None:
                raise ValueError(f"unknown token {token}")
            bases.append(base)
        return "".join(bases)

    @property
    def base_tokens(self) -> List[int]:
        """The tokens that correspond to nucleotides, in A,C,G,T order."""
        return [self._base_to_token[base] for base in BASES]
