"""The encoder-decoder channel simulator (Figure 4 of the paper).

``Pr(s_noisy | s_clean)`` is modelled directly: a bi-directional GRU encoder
turns the clean strand into annotations, and an autoregressive GRU decoder
with Bahdanau attention emits the noisy read token by token.  Trained with
teacher forcing; at simulation time each token is sampled from the decoder's
predictive distribution ("greedy sampling" in the paper's terminology:
sample immediately once the position's distribution is available).

The trained model is a drop-in :class:`~repro.simulation.channel.Channel`.
"""

from __future__ import annotations

import random
from typing import List, Sequence

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.autograd import functional as F
from repro.simulation.channel import Channel
from repro.seq2seq.attention import BahdanauAttention
from repro.seq2seq.layers import Dense, Embedding, GRUCell, Module
from repro.seq2seq.vocab import Vocabulary


class Seq2SeqChannelModel(Module, Channel):
    """Bi-GRU encoder + attention + GRU decoder over the strand vocabulary.

    Parameters
    ----------
    hidden_size:
        GRU hidden width for each direction of the encoder and for the
        decoder (the paper's best configuration uses 128; smaller widths
        train faster on CPU with little fidelity loss at toolkit scale).
    embed_dim / attention_size:
        Token embedding width and additive-attention projection width.
    max_expansion:
        Transmitted reads are cut off at ``max_expansion * len(strand)``
        tokens, bounding pathological insertion loops early in training.
    """

    def __init__(
        self,
        hidden_size: int = 64,
        embed_dim: int = 16,
        attention_size: int = 48,
        max_expansion: float = 1.6,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.vocab = Vocabulary()
        self.hidden_size = hidden_size
        self.max_expansion = max_expansion
        vocab_size = len(self.vocab)
        annotation_size = 2 * hidden_size

        self.embed = Embedding(vocab_size, embed_dim, rng)
        self.encoder_forward = GRUCell(embed_dim, hidden_size, rng)
        self.encoder_backward = GRUCell(embed_dim, hidden_size, rng)
        self.bridge = Dense(annotation_size, hidden_size, rng)
        self.decoder_cell = GRUCell(embed_dim + annotation_size, hidden_size, rng)
        self.attention = BahdanauAttention(
            hidden_size, annotation_size, attention_size, rng
        )
        self.output = Dense(
            hidden_size + annotation_size + embed_dim, vocab_size, rng
        )

    # ------------------------------------------------------------------
    # Encoder
    # ------------------------------------------------------------------

    def encode(self, clean_tokens: np.ndarray):
        """Run the bi-directional encoder.

        Parameters
        ----------
        clean_tokens:
            Integer array of shape ``(batch, length)``; all strands in a
            batch share one length (no padding needed on the clean side).

        Returns
        -------
        (annotations, initial_state):
            ``annotations`` has shape ``(batch, length, 2 * hidden)``;
            ``initial_state`` is the bridged decoder start state.
        """
        batch, length = clean_tokens.shape
        embedded = self.embed(clean_tokens)  # (batch, length, embed)
        forward_states: List[Tensor] = []
        state = self.encoder_forward.initial_state(batch)
        for t in range(length):
            state = self.encoder_forward(embedded[:, t, :], state)
            forward_states.append(state)
        backward_states: List[Tensor] = [None] * length  # type: ignore[list-item]
        state = self.encoder_backward.initial_state(batch)
        for t in reversed(range(length)):
            state = self.encoder_backward(embedded[:, t, :], state)
            backward_states[t] = state
        annotations = F.stack(
            [
                F.concat([forward_states[t], backward_states[t]], axis=1)
                for t in range(length)
            ],
            axis=1,
        )
        final = F.concat([forward_states[-1], backward_states[0]], axis=1)
        initial_state = F.tanh(self.bridge(final))
        return annotations, initial_state

    # ------------------------------------------------------------------
    # Training loss (teacher forcing)
    # ------------------------------------------------------------------

    def loss(self, clean_tokens: np.ndarray, noisy_tokens: np.ndarray) -> Tensor:
        """Mean next-token cross-entropy under teacher forcing.

        ``noisy_tokens`` has shape ``(batch, target_length)`` and is padded
        with PAD after each read's EOS; padded positions are masked out of
        the loss.
        """
        annotations, state = self.encode(clean_tokens)
        projected = self.attention.project_annotations(annotations)
        batch, target_length = noisy_tokens.shape
        previous = np.full(batch, self.vocab.SOS, dtype=np.int64)
        total = None
        steps = 0
        for t in range(target_length):
            targets = noisy_tokens[:, t]
            mask = targets != self.vocab.PAD
            logits, state = self._step(previous, state, annotations, projected)
            if mask.any():
                rows = np.nonzero(mask)[0]
                step_loss = F.cross_entropy_logits(logits[rows], targets[rows])
                total = step_loss if total is None else total + step_loss
                steps += 1
            previous = targets.copy()
            # Feed PAD rows their previous token to keep shapes uniform;
            # their loss is masked so the value is irrelevant.
            previous[~mask] = self.vocab.PAD
        if total is None:
            raise ValueError("loss() received only padding targets")
        return total * (1.0 / steps)

    def _step(self, previous_tokens, state, annotations, projected):
        embedded = self.embed(np.asarray(previous_tokens))
        context = self.attention(state, annotations, projected)
        state = self.decoder_cell(F.concat([embedded, context], axis=1), state)
        logits = self.output(F.concat([state, context, embedded], axis=1))
        return logits, state

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def transmit(self, strand: str, rng: random.Random) -> str:
        """Sample one noisy read of *strand* from the learned channel."""
        if not strand:
            return ""
        with no_grad():
            tokens = self.vocab.encode(strand).reshape(1, -1)
            annotations, state = self.encode(tokens)
            projected = self.attention.project_annotations(annotations)
            previous = np.array([self.vocab.SOS], dtype=np.int64)
            max_length = max(4, int(self.max_expansion * len(strand)))
            output: List[int] = []
            for _ in range(max_length):
                logits, state = self._step(previous, state, annotations, projected)
                probabilities = _softmax_row(logits.data[0])
                token = _sample(probabilities, rng)
                if token == self.vocab.EOS:
                    break
                if token not in (self.vocab.PAD, self.vocab.SOS):
                    output.append(token)
                previous = np.array([token], dtype=np.int64)
        return self.vocab.decode(output)


def _softmax_row(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max()
    exps = np.exp(shifted)
    return exps / exps.sum()


def _sample(probabilities: np.ndarray, rng: random.Random) -> int:
    draw = rng.random()
    cumulative = 0.0
    for token, probability in enumerate(probabilities):
        cumulative += probability
        if draw < cumulative:
            return token
    return int(len(probabilities) - 1)


def pad_targets(
    vocab: Vocabulary, noisy_strands: Sequence[str]
) -> np.ndarray:
    """Encode noisy strands with EOS and pad them into one target matrix."""
    encoded = [vocab.encode(strand, add_eos=True) for strand in noisy_strands]
    longest = max(len(tokens) for tokens in encoded)
    matrix = np.full((len(encoded), longest), vocab.PAD, dtype=np.int64)
    for row, tokens in enumerate(encoded):
        matrix[row, : len(tokens)] = tokens
    return matrix
