"""Training loop for the seq2seq channel simulator.

The paper trains on paired (clean, noisy) strands from sequencing runs,
with a cluster-level train/validation/test split.  This trainer consumes
the same pair lists that :class:`~repro.simulation.dataset.PairedDataset`
produces, batches pairs that share a clean-strand length, and optimises
next-token cross-entropy with Adam and gradient clipping.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd import Adam
from repro.observability.trace import Tracer, as_tracer
from repro.seq2seq.model import Seq2SeqChannelModel, pad_targets


@dataclass
class TrainingConfig:
    """Hyperparameters for :class:`Seq2SeqTrainer`."""

    epochs: int = 5
    batch_size: int = 16
    learning_rate: float = 2e-3
    gradient_clip: float = 5.0
    seed: int = 0
    #: print progress every this many batches (0 = silent)
    log_every: int = 0


@dataclass
class TrainingHistory:
    """Per-epoch loss curves."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    seconds: float = 0.0


class Seq2SeqTrainer:
    """Fits a :class:`Seq2SeqChannelModel` on (clean, noisy) pairs."""

    def __init__(
        self,
        model: Seq2SeqChannelModel,
        config: Optional[TrainingConfig] = None,
    ):
        self.model = model
        self.config = config or TrainingConfig()
        self.optimizer = Adam(model.parameters(), lr=self.config.learning_rate)

    def fit(
        self,
        pairs: Sequence[Tuple[str, str]],
        val_pairs: Sequence[Tuple[str, str]] = (),
        tracer: Optional[Tracer] = None,
    ) -> TrainingHistory:
        """Train on *pairs*; returns per-epoch train/validation losses.

        With a :class:`~repro.observability.Tracer` the run emits a
        ``seq2seq.fit`` span with one ``seq2seq.epoch`` child per epoch
        (carrying the epoch's losses as attributes) and counts trained
        batches under ``seq2seq_batches_trained``.
        """
        if not pairs:
            raise ValueError("fit requires at least one training pair")
        tracer = as_tracer(tracer)
        rng = random.Random(self.config.seed)
        history = TrainingHistory()
        batch_counter = tracer.metrics.counter("seq2seq_batches_trained")
        with tracer.span(
            "seq2seq.fit", pairs=len(pairs), epochs=self.config.epochs
        ) as fit_span:
            for epoch in range(self.config.epochs):
                with tracer.span("seq2seq.epoch", epoch=epoch) as epoch_span:
                    batches = self._make_batches(pairs, rng)
                    epoch_loss = 0.0
                    for count, (clean_batch, noisy_batch) in enumerate(
                        batches, start=1
                    ):
                        loss = self.model.loss(clean_batch, noisy_batch)
                        self.optimizer.zero_grad()
                        loss.backward()
                        self.optimizer.clip_gradients(self.config.gradient_clip)
                        self.optimizer.step()
                        epoch_loss += loss.item()
                        if (
                            self.config.log_every
                            and count % self.config.log_every == 0
                        ):
                            print(
                                f"batch {count}/{len(batches)} "
                                f"loss={loss.item():.4f}"
                            )
                    batch_counter.inc(len(batches))
                    train_loss = epoch_loss / max(1, len(batches))
                    history.train_losses.append(train_loss)
                    epoch_span.set("train_loss", train_loss)
                    if val_pairs:
                        val_loss = self.evaluate(val_pairs)
                        history.val_losses.append(val_loss)
                        epoch_span.set("val_loss", val_loss)
        history.seconds = fit_span.duration
        return history

    def evaluate(self, pairs: Sequence[Tuple[str, str]]) -> float:
        """Mean teacher-forced loss on *pairs* (no parameter updates)."""
        if not pairs:
            raise ValueError("evaluate requires at least one pair")
        batches = self._make_batches(pairs, random.Random(0))
        total = 0.0
        for clean_batch, noisy_batch in batches:
            total += self.model.loss(clean_batch, noisy_batch).item()
        return total / len(batches)

    def _make_batches(
        self, pairs: Sequence[Tuple[str, str]], rng: random.Random
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Shuffle and bucket pairs by clean length, then pad targets."""
        by_length: Dict[int, List[Tuple[str, str]]] = {}
        for clean, noisy in pairs:
            if not clean or not noisy:
                continue  # empty reads carry no training signal
            by_length.setdefault(len(clean), []).append((clean, noisy))
        if not by_length:
            raise ValueError("all training pairs were empty")
        batches: List[Tuple[np.ndarray, np.ndarray]] = []
        vocab = self.model.vocab
        for bucket in by_length.values():
            rng.shuffle(bucket)
            for start in range(0, len(bucket), self.config.batch_size):
                chunk = bucket[start : start + self.config.batch_size]
                clean_batch = np.stack([vocab.encode(clean) for clean, _ in chunk])
                noisy_batch = pad_targets(vocab, [noisy for _, noisy in chunk])
                batches.append((clean_batch, noisy_batch))
        rng.shuffle(batches)
        return batches
