"""Neural layers used by the channel simulator, built on the autograd."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.autograd import Tensor
from repro.autograd import functional as F


class Module:
    """Base class: recursively collects parameters from attributes."""

    def parameters(self) -> List[Tensor]:
        collected: List[Tensor] = []
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                collected.append(value)
            elif isinstance(value, Module):
                collected.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        collected.extend(item.parameters())
        return collected

    def parameter_count(self) -> int:
        return sum(p.data.size for p in self.parameters())


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Dense(Module):
    """Affine map ``x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator, bias: bool = True):
        self.weight = Tensor(_glorot(rng, in_features, out_features), requires_grad=True)
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True) if bias else None
        )

    def __call__(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator):
        self.weight = Tensor(
            rng.normal(scale=0.1, size=(vocab_size, dim)), requires_grad=True
        )

    def __call__(self, indices: np.ndarray) -> Tensor:
        return F.embedding(self.weight, indices)


class GRUCell(Module):
    """A Gated Recurrent Unit cell (Cho et al. 2014).

    One step maps ``(input (B, I), hidden (B, H)) -> hidden (B, H)`` with

    .. math::
        z &= \\sigma(x W_z + h U_z + b_z) \\\\
        r &= \\sigma(x W_r + h U_r + b_r) \\\\
        \\tilde h &= \\tanh(x W_h + (r \\odot h) U_h + b_h) \\\\
        h' &= (1 - z) \\odot h + z \\odot \\tilde h

    The paper chooses GRUs over LSTMs for their resistance to overfitting
    on the modest paired datasets available in DNA storage.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator):
        self.hidden_size = hidden_size
        self.w_z = Dense(input_size, hidden_size, rng)
        self.u_z = Dense(hidden_size, hidden_size, rng, bias=False)
        self.w_r = Dense(input_size, hidden_size, rng)
        self.u_r = Dense(hidden_size, hidden_size, rng, bias=False)
        self.w_h = Dense(input_size, hidden_size, rng)
        self.u_h = Dense(hidden_size, hidden_size, rng, bias=False)

    def __call__(self, x: Tensor, hidden: Tensor) -> Tensor:
        update = F.sigmoid(self.w_z(x) + self.u_z(hidden))
        reset = F.sigmoid(self.w_r(x) + self.u_r(hidden))
        candidate = F.tanh(self.w_h(x) + self.u_h(reset * hidden))
        return (1.0 - update) * hidden + update * candidate

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_size)))
