"""Systematic Reed-Solomon coding over GF(2^8) with error+erasure decoding.

This is the outer code of the storage architecture (Section IV).  Each
codeword is one *row* of the molecule matrix; a lost molecule surfaces as an
erasure at a known column, while indels inside a surviving molecule surface
as substitution errors.  The decoder therefore implements full
errata (errors + erasures) decoding: syndromes, Forney syndromes,
Berlekamp-Massey, Chien search and the Forney value formula.

A codeword of length ``n = k + nsym`` corrects up to ``nsym`` erasures, up
to ``nsym // 2`` errors, and any combination with
``2 * errors + erasures <= nsym``.

The scalar ``encode``/``decode`` pair is the correctness oracle; the
``*_batch`` methods process a whole matrix of codeword rows at once on the
vectorized GF(256) layer (:mod:`repro.codec.gf_numpy`) and are pinned to
the scalar path by property tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codec.gf_numpy import gf_alpha_power, gf_inv, gf_matmul
from repro.codec.galois import GF256, default_field

_FIELD_LIMIT = 255

#: Generator polynomials keyed by nsym.  GF(256) over 0x11d is parameterless,
#: so the generator depends on nsym alone and can be shared by every codec
#: instance regardless of which field object it was handed.
_GENERATOR_CACHE: Dict[int, Tuple[int, ...]] = {}


class RSDecodeError(Exception):
    """Raised when a codeword is uncorrectable."""


class ReedSolomonCodec:
    """A systematic RS(n, k) codec with ``nsym = n - k`` parity symbols."""

    def __init__(self, nsym: int, field: Optional[GF256] = None):
        if nsym <= 0:
            raise ValueError(f"nsym must be positive, got {nsym}")
        if nsym >= _FIELD_LIMIT:
            raise ValueError(f"nsym must be < {_FIELD_LIMIT}, got {nsym}")
        self.nsym = nsym
        self.field = field or default_field()
        self._generator = list(self._cached_generator(nsym))
        #: per-k systematic parity matrices for the batched encoder
        self._parity_matrices: Dict[int, np.ndarray] = {}
        #: per-n syndrome (Vandermonde) matrices for the batched decoder
        self._syndrome_matrices: Dict[int, np.ndarray] = {}

    def _cached_generator(self, nsym: int) -> Tuple[int, ...]:
        generator = _GENERATOR_CACHE.get(nsym)
        if generator is None:
            generator = tuple(self._build_generator(nsym))
            _GENERATOR_CACHE[nsym] = generator
        return generator

    def _build_generator(self, nsym: int) -> List[int]:
        generator = [1]
        for power in range(nsym):
            generator = self.field.poly_mul(generator, [1, self.field.exp[power]])
        return generator

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode(self, message: Sequence[int]) -> List[int]:
        """Append ``nsym`` parity symbols to *message* (systematic form)."""
        if len(message) + self.nsym > _FIELD_LIMIT:
            raise ValueError(
                f"codeword length {len(message) + self.nsym} exceeds {_FIELD_LIMIT}"
            )
        self._check_symbols(message)
        padded = list(message) + [0] * self.nsym
        remainder = self.field.poly_divmod(padded, self._generator)
        return list(message) + remainder

    # ------------------------------------------------------------------
    # Batched paths (vectorized over whole codeword matrices)
    # ------------------------------------------------------------------

    def parity_matrix(self, k: int) -> np.ndarray:
        """The ``(k, nsym)`` systematic parity matrix for messages of length *k*.

        Systematic encoding is linear: the parity of a message is the sum of
        the parities of its unit vectors, so row ``i`` is the scalar-encoded
        parity of ``e_i``.  Cached per *k*; deriving it from the scalar
        encoder keeps the batched path oracle-consistent by construction.
        """
        cached = self._parity_matrices.get(k)
        if cached is None:
            if k <= 0:
                raise ValueError(f"message length must be positive, got {k}")
            if k + self.nsym > _FIELD_LIMIT:
                raise ValueError(
                    f"codeword length {k + self.nsym} exceeds {_FIELD_LIMIT}"
                )
            unit = [0] * k
            rows = []
            for i in range(k):
                unit[i] = 1
                rows.append(self.encode(unit)[k:])
                unit[i] = 0
            cached = np.array(rows, dtype=np.uint8)
            self._parity_matrices[k] = cached
        return cached

    def syndrome_matrix(self, n: int) -> np.ndarray:
        """The ``(n, nsym)`` evaluation matrix with ``V[i, j] = alpha^(j*(n-1-i))``.

        ``codewords @ V`` over GF(256) yields every row's syndrome vector in
        one pass — the batched equivalent of :meth:`_syndromes`.
        """
        cached = self._syndrome_matrices.get(n)
        if cached is None:
            if not self.nsym < n <= _FIELD_LIMIT:
                raise ValueError(
                    f"codeword length {n} must be in ({self.nsym}, {_FIELD_LIMIT}]"
                )
            degrees = np.arange(n - 1, -1, -1, dtype=np.int64)
            cached = gf_alpha_power(
                degrees[:, None] * np.arange(self.nsym, dtype=np.int64)[None, :]
            )
            self._syndrome_matrices[n] = cached
        return cached

    def _as_codeword_matrix(self, rows: np.ndarray, width_label: str) -> np.ndarray:
        matrix = np.asarray(rows)
        if matrix.ndim != 2:
            raise ValueError(f"expected a 2-D matrix of {width_label} rows")
        if matrix.dtype != np.uint8:
            if matrix.size and (matrix.min() < 0 or matrix.max() > 255):
                raise ValueError("symbol outside GF(256)")
            matrix = matrix.astype(np.uint8)
        return matrix

    def encode_batch(self, messages: np.ndarray) -> np.ndarray:
        """Encode a ``(rows, k)`` message matrix into ``(rows, k + nsym)``.

        Equivalent to calling :meth:`encode` on every row; the parity block
        is computed for all rows at once as ``messages @ parity_matrix``.
        """
        messages = self._as_codeword_matrix(messages, "message")
        parity = gf_matmul(messages, self.parity_matrix(messages.shape[1]))
        return np.concatenate([messages, parity], axis=1)

    def syndromes_batch(self, codewords: np.ndarray) -> np.ndarray:
        """Syndrome vectors for a ``(rows, n)`` codeword matrix, ``(rows, nsym)``."""
        codewords = self._as_codeword_matrix(codewords, "codeword")
        return gf_matmul(codewords, self.syndrome_matrix(codewords.shape[1]))

    def check_batch(self, codewords: np.ndarray) -> np.ndarray:
        """Boolean mask of rows whose syndromes are all zero (valid codewords)."""
        return ~self.syndromes_batch(codewords).any(axis=1)

    def erasure_solve_batch(
        self,
        codewords: np.ndarray,
        erasures: Sequence[int],
        syndromes: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Direct-solve the erasure-only case for every codeword row at once.

        The rows of one encoding unit share their erasure columns (a missing
        molecule erases the same position in every codeword), so the
        ``e x e`` Vandermonde system ``A[j, p] = X_p^j`` is factored once
        and applied to all rows: ``Y = S[:, :e] @ inv(A)^T``.  Erasure
        columns of *codewords* must already be zeroed (matching the scalar
        decoder, which zeroes them before computing syndromes).

        Returns ``(candidates, solved)``: the codeword matrix with erasure
        columns filled in, and a boolean mask of rows whose candidate
        verifies (all ``nsym`` syndromes zero).  Unsolved rows also carry
        substitution errors and must go through the scalar errata decoder.

        Raises
        ------
        RSDecodeError
            If there are more erasures than parity symbols.
        """
        codewords = self._as_codeword_matrix(codewords, "codeword")
        n = codewords.shape[1]
        positions = sorted(set(erasures))
        if any(pos < 0 or pos >= n for pos in positions):
            raise ValueError("erasure position out of range")
        if len(positions) > self.nsym:
            raise RSDecodeError(
                f"{len(positions)} erasures exceed capability {self.nsym}"
            )
        if syndromes is None:
            syndromes = self.syndromes_batch(codewords)
        if not positions:
            return codewords, ~syndromes.any(axis=1)

        count = len(positions)
        degrees = np.array([n - 1 - pos for pos in positions], dtype=np.int64)
        vandermonde = gf_alpha_power(
            np.arange(count, dtype=np.int64)[:, None] * degrees[None, :]
        )
        # Vandermonde with distinct non-zero nodes: always invertible.
        values = gf_matmul(syndromes[:, :count], gf_inv(vandermonde).T)
        candidates = codewords.copy()
        candidates[:, positions] = values
        solved = ~self.syndromes_batch(candidates).any(axis=1)
        return candidates, solved

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------

    def decode(
        self,
        codeword: Sequence[int],
        erasures: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Return the corrected message (without parity symbols).

        Parameters
        ----------
        codeword:
            The received ``n`` symbols, possibly corrupted.
        erasures:
            Known-bad positions (indices into *codeword*).  Erasure symbols
            may hold any value; their content is ignored.

        Raises
        ------
        RSDecodeError
            If the errata exceed the code's correction capability.
        """
        if len(codeword) > _FIELD_LIMIT:
            raise ValueError(f"codeword length {len(codeword)} exceeds {_FIELD_LIMIT}")
        if len(codeword) <= self.nsym:
            raise ValueError("codeword shorter than the parity length")
        self._check_symbols(codeword)
        received = list(codeword)
        erasure_positions = sorted(set(erasures or ()))
        if any(pos < 0 or pos >= len(received) for pos in erasure_positions):
            raise ValueError("erasure position out of range")
        if len(erasure_positions) > self.nsym:
            raise RSDecodeError(
                f"{len(erasure_positions)} erasures exceed capability {self.nsym}"
            )
        # Zero out erasure positions so their garbage does not affect syndromes
        # beyond what the erasure locator accounts for.
        for position in erasure_positions:
            received[position] = 0

        syndromes = self._syndromes(received)
        if not any(syndromes):
            return received[: -self.nsym]

        erasure_locator = self._erasure_locator(erasure_positions, len(received))
        forney_syndromes = self._forney_syndromes(
            syndromes, erasure_positions, len(received)
        )
        error_locator = self._berlekamp_massey(
            forney_syndromes, len(erasure_positions)
        )
        error_positions = self._chien_search(error_locator, len(received))

        errata_locator = self.field.poly_mul(erasure_locator, error_locator)
        errata_positions = sorted(set(error_positions) | set(erasure_positions))
        if 2 * len(error_positions) + len(erasure_positions) > self.nsym:
            raise RSDecodeError("errata exceed the code's correction capability")
        corrected = self._forney_correct(
            received, syndromes, errata_locator, errata_positions
        )
        # Verify the correction actually produced a codeword.
        if any(self._syndromes(corrected)):
            raise RSDecodeError("correction failed to produce a valid codeword")
        return corrected[: -self.nsym]

    def check(self, codeword: Sequence[int]) -> bool:
        """Return ``True`` if *codeword* has all-zero syndromes."""
        return not any(self._syndromes(list(codeword)))

    # ------------------------------------------------------------------
    # Decoder internals
    # ------------------------------------------------------------------

    @staticmethod
    def _check_symbols(symbols: Sequence[int]) -> None:
        for symbol in symbols:
            if not 0 <= symbol <= 255:
                raise ValueError(f"symbol {symbol} outside GF(256)")

    def _syndromes(self, received: List[int]) -> List[int]:
        return [
            self.field.poly_eval(received, self.field.exp[power])
            for power in range(self.nsym)
        ]

    def _erasure_locator(self, positions: Sequence[int], length: int) -> List[int]:
        locator = [1]
        for position in positions:
            root = self.field.exp[length - 1 - position]
            # Factor (1 - X*x) with X = alpha^{degree of the erased symbol}.
            locator = self.field.poly_mul(locator, [root, 1])
        return locator

    def _forney_syndromes(
        self, syndromes: List[int], positions: Sequence[int], length: int
    ) -> List[int]:
        modified = list(syndromes)
        for position in positions:
            root = self.field.exp[length - 1 - position]
            # T_k = S_{k+1} + X * S_k removes this erasure's contribution.
            for index in range(len(modified) - 1):
                modified[index] = modified[index + 1] ^ self.field.mul(
                    root, modified[index]
                )
            modified.pop()
        return modified

    def _berlekamp_massey(
        self, syndromes: List[int], erasure_count: int
    ) -> List[int]:
        locator = [1]
        previous = [1]
        for step, syndrome in enumerate(syndromes):
            previous.append(0)
            delta = syndrome
            for index in range(1, len(locator)):
                delta ^= self.field.mul(locator[len(locator) - 1 - index], syndromes[step - index])
            if delta != 0:
                if len(previous) > len(locator):
                    scaled = self.field.poly_scale(previous, delta)
                    previous = self.field.poly_scale(
                        locator, self.field.inverse(delta)
                    )
                    locator = scaled
                locator = self.field.poly_add(
                    locator, self.field.poly_scale(previous, delta)
                )
        while locator and locator[0] == 0:
            locator.pop(0)
        errors = len(locator) - 1
        if 2 * errors + erasure_count > self.nsym:
            raise RSDecodeError("too many errors to locate")
        return locator

    def _chien_search(self, locator: List[int], length: int) -> List[int]:
        errors = len(locator) - 1
        if errors == 0:
            return []
        positions = []
        for candidate in range(length):
            # The locator has roots at alpha^{-j} for error positions j
            # (counted from the end of the codeword).
            if self.field.poly_eval(locator, self.field.power(2, -candidate)) == 0:
                positions.append(length - 1 - candidate)
        if len(positions) != errors:
            raise RSDecodeError("error locator roots do not match its degree")
        return positions

    def _forney_correct(
        self,
        received: List[int],
        syndromes: List[int],
        errata_locator: List[int],
        errata_positions: Sequence[int],
    ) -> List[int]:
        length = len(received)
        # Errata evaluator: Omega(x) = [S(x) * Lambda(x)] mod x^nsym.
        syndrome_poly = list(reversed(syndromes))
        product = self.field.poly_mul(syndrome_poly, errata_locator)
        evaluator = product[len(product) - self.nsym :]
        # Formal derivative of the locator (odd-degree terms only).
        reversed_locator = list(reversed(errata_locator))
        corrected = list(received)
        for position in errata_positions:
            root_inverse = self.field.power(2, -(length - 1 - position))
            numerator = self.field.poly_eval(evaluator, root_inverse)
            denominator = 0
            for degree in range(1, len(reversed_locator), 2):
                term = self.field.mul(
                    reversed_locator[degree],
                    self.field.power(root_inverse, degree - 1),
                )
                denominator ^= term
            if denominator == 0:
                raise RSDecodeError("Forney denominator is zero")
            root = self.field.exp[length - 1 - position]
            magnitude = self.field.mul(
                root, self.field.div(numerator, denominator)
            )
            corrected[position] ^= magnitude
        return corrected
