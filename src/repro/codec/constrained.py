"""Constrained coding: the alternative the paper argues against.

Section II-D: early DNA storage work used *constrained coding* — encodings
that structurally avoid homopolymer runs and unbalanced GC content — at the
price of information density.  The toolkit's default codec is
unconstrained (2 bits/nt + whitening + RS), but a constrained codec is
provided both for comparison experiments and because the encoding stage is
explicitly swappable.

The scheme implemented here is the classic *rotating code* (in the spirit
of Goldman et al.): ternary data symbols are written as "one of the three
bases different from the previous base", which makes any homopolymer run
of length >= 2 impossible by construction.  Binary data is converted to
base 3 first in 32-bit/21-trit chunks, giving a practical information
density of 32/21 ~ 1.524 bits/nt (theoretical limit log2(3) ~ 1.585) —
the density cost the paper quantifies against.
"""

from __future__ import annotations

from typing import List

from repro.dna.alphabet import BASES

_CHUNK_BYTES = 4
#: Ternary digits needed for one 32-bit chunk: 3^21 > 2^32.
_CHUNK_TRITS = 21

#: Theoretical density of ternary rotation coding, log2(3) bits/nt.
ROTATING_CODE_LIMIT = 1.584962500721156
#: Practical density of this codec's 32-bit/21-trit chunking.
ROTATING_CODE_DENSITY = _CHUNK_BYTES * 8 / _CHUNK_TRITS


def _to_trits(value: int, width: int) -> List[int]:
    trits = []
    for _ in range(width):
        trits.append(value % 3)
        value //= 3
    return list(reversed(trits))


def _from_trits(trits: List[int]) -> int:
    value = 0
    for trit in trits:
        value = value * 3 + trit
    return value


class RotatingCodec:
    """Homopolymer-free ternary rotation codec.

    Each trit selects one of the three bases *different from the previous
    base* (in alphabetical order), so no two consecutive bases are ever
    equal.  Data is processed in 4-byte chunks of 21 trits each; the final
    partial chunk is length-prefixed during :meth:`encode_with_length`.
    """

    def __init__(self, start_base: str = "A"):
        if start_base not in BASES:
            raise ValueError(f"start_base must be one of {BASES}, got {start_base!r}")
        self.start_base = start_base

    # ------------------------------------------------------------------

    def encode(self, data: bytes) -> str:
        """Encode *data* (whose length must be a multiple of 4 bytes)."""
        if len(data) % _CHUNK_BYTES != 0:
            raise ValueError(
                f"data length {len(data)} is not a multiple of {_CHUNK_BYTES}; "
                "use encode_with_length for arbitrary sizes"
            )
        trits: List[int] = []
        for start in range(0, len(data), _CHUNK_BYTES):
            chunk = int.from_bytes(data[start : start + _CHUNK_BYTES], "big")
            trits.extend(_to_trits(chunk, _CHUNK_TRITS))
        return self._trits_to_bases(trits)

    def decode(self, strand: str) -> bytes:
        """Invert :meth:`encode`."""
        trits = self._bases_to_trits(strand)
        if len(trits) % _CHUNK_TRITS != 0:
            raise ValueError(
                f"strand encodes {len(trits)} trits, not a multiple of "
                f"{_CHUNK_TRITS}"
            )
        output = bytearray()
        for start in range(0, len(trits), _CHUNK_TRITS):
            value = _from_trits(trits[start : start + _CHUNK_TRITS])
            if value >= 2**32:
                raise ValueError("strand encodes an out-of-range chunk")
            output.extend(value.to_bytes(_CHUNK_BYTES, "big"))
        return bytes(output)

    def encode_with_length(self, data: bytes) -> str:
        """Encode arbitrary-length *data* with a 4-byte length prefix."""
        framed = len(data).to_bytes(_CHUNK_BYTES, "big") + data
        padding = (-len(framed)) % _CHUNK_BYTES
        return self.encode(framed + bytes(padding))

    def decode_with_length(self, strand: str) -> bytes:
        """Invert :meth:`encode_with_length`."""
        framed = self.decode(strand)
        length = int.from_bytes(framed[:_CHUNK_BYTES], "big")
        if length > len(framed) - _CHUNK_BYTES:
            raise ValueError("length prefix exceeds decoded payload")
        return framed[_CHUNK_BYTES : _CHUNK_BYTES + length]

    # ------------------------------------------------------------------

    def _trits_to_bases(self, trits: List[int]) -> str:
        previous = self.start_base
        bases: List[str] = []
        for trit in trits:
            candidates = [base for base in BASES if base != previous]
            base = candidates[trit]
            bases.append(base)
            previous = base
        return "".join(bases)

    def _bases_to_trits(self, strand: str) -> List[int]:
        previous = self.start_base
        trits: List[int] = []
        for base in strand:
            candidates = [b for b in BASES if b != previous]
            try:
                trits.append(candidates.index(base))
            except ValueError:
                raise ValueError(
                    f"invalid constrained strand: repeated base {base!r}"
                ) from None
            previous = base
        return trits
