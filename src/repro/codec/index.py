"""Molecule indexing (Section II-C).

Molecules in a pool have no physical order, so each strand carries an
internal address.  The index is stored as a fixed-width big-endian integer
occupying the first few bytes of the strand body (right after the forward
primer) and identifies the molecule's column in its encoding-unit matrix.
"""

from __future__ import annotations

from typing import Optional

from repro.codec.bits import bases_to_bytes, bytes_to_bases
from repro.codec.randomizer import Randomizer

#: Key under which the index field itself is whitened.  It must not depend
#: on the index (the decoder has to read the index before knowing it), so a
#: single reserved constant is used.  Without this, small indexes encode as
#: long ``AAAA...`` homopolymers at the strand start — exactly where primer
#: trimming jitter puts indels, making the index region ambiguous to
#: reconstruct.
_INDEX_WHITENING_KEY = 0x1D_EC0DE

#: Odd multiplier for bijective index diffusion.  XOR-whitening alone keeps
#: consecutive indexes differing only in their low bytes, which gives every
#: strand of a file a long shared prefix — eroding the edit-distance margin
#: clustering relies on.  Multiplying by an odd constant modulo the field
#: capacity is a bijection that spreads a one-bit index change across all
#: index bytes.
_INDEX_DIFFUSION = 0x9E3779B1


class IndexCodec:
    """Fixed-width integer index codec.

    Parameters
    ----------
    index_bytes:
        Width of the index field in bytes; each byte occupies four
        nucleotides in the strand.  Three bytes (12 nt) address 16.7M
        molecules, enough for multi-gigabyte files at typical payload sizes.
    randomizer:
        When given, the index bytes are whitened with a fixed keystream so
        consecutive (small) indexes do not produce homopolymer runs.
    """

    def __init__(self, index_bytes: int = 3, randomizer: Optional[Randomizer] = None):
        if index_bytes <= 0:
            raise ValueError(f"index_bytes must be positive, got {index_bytes}")
        self.index_bytes = index_bytes
        self._randomizer = randomizer
        modulus = 256**index_bytes
        self._diffusion = _INDEX_DIFFUSION % modulus
        if self._diffusion % 2 == 0:
            self._diffusion += 1
        self._diffusion_inverse = pow(self._diffusion, -1, modulus)

    @property
    def index_nt(self) -> int:
        """Number of nucleotides the encoded index occupies."""
        return self.index_bytes * 4

    @property
    def capacity(self) -> int:
        """Number of distinct indices this codec can represent."""
        return 256**self.index_bytes

    def encode(self, index: int) -> str:
        """Return the DNA encoding of *index*."""
        if not 0 <= index < self.capacity:
            raise ValueError(
                f"index {index} out of range for {self.index_bytes}-byte codec"
            )
        value = index
        if self._randomizer is not None:
            value = (value * self._diffusion) % self.capacity
        raw = value.to_bytes(self.index_bytes, "big")
        if self._randomizer is not None:
            raw = self._randomizer.apply(raw, _INDEX_WHITENING_KEY)
        return bytes_to_bases(raw)

    def decode(self, sequence: str) -> int:
        """Parse an index from the first :attr:`index_nt` bases of *sequence*."""
        if len(sequence) < self.index_nt:
            raise ValueError(
                f"sequence of length {len(sequence)} too short for index "
                f"({self.index_nt} nt required)"
            )
        raw = bases_to_bytes(sequence[: self.index_nt])
        if self._randomizer is not None:
            raw = self._randomizer.apply(raw, _INDEX_WHITENING_KEY)
        value = int.from_bytes(raw, "big")
        if self._randomizer is not None:
            value = (value * self._diffusion_inverse) % self.capacity
        return value
