"""Vectorized GF(2^8) linear algebra for the batched Reed-Solomon paths.

The scalar :class:`~repro.codec.galois.GF256` multiplies one pair of field
elements per Python call; the outer-code hot paths (parity generation,
syndrome screening, erasure solving) need millions of products per encoding
unit batch.  This module holds numpy views of the shared exp/log tables and
batched primitives built on them:

* ``gf_mul`` — elementwise product of two broadcastable uint8 arrays;
* ``gf_matmul`` — matrix product over GF(256) via a log-table gather
  followed by an XOR reduction;
* ``gf_inv`` — Gauss-Jordan inversion of a small matrix (the per-unit
  erasure Vandermonde system);
* ``gf_alpha_power`` — ``alpha ** e`` for an integer exponent array.

Zero handling uses the classic sentinel trick: ``log 0`` is mapped to 512
and the exp table is padded with zeros up to index 1024, so any product
involving zero gathers a zero without a mask pass.
"""

from __future__ import annotations

import numpy as np

from repro.codec.galois import default_field

_ORDER = 255  # multiplicative order of GF(256)*
_ZERO_LOG = 512  # sentinel: any log sum involving it lands in the zero pad

_field = default_field()

#: exp table padded so GF_EXP[GF_LOG[a] + GF_LOG[b]] is a full multiply,
#: including the a == 0 or b == 0 cases (sums >= 512 gather the zero pad).
GF_EXP: np.ndarray = np.zeros(2 * _ZERO_LOG + 1, dtype=np.uint8)
GF_EXP[: len(_field.exp)] = np.array(_field.exp, dtype=np.uint8)

#: log table with the zero sentinel; int16 keeps index sums cheap.
GF_LOG: np.ndarray = np.full(256, _ZERO_LOG, dtype=np.int16)
GF_LOG[1:] = np.array(_field.log[1:], dtype=np.int16)

#: Cap on the (m, k, n) intermediate of one gf_matmul block, in elements.
_MATMUL_BLOCK_ELEMS = 1 << 24


def gf_mul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Elementwise GF(256) product of two broadcastable uint8 arrays."""
    left = np.asarray(left, dtype=np.uint8)
    right = np.asarray(right, dtype=np.uint8)
    return GF_EXP[GF_LOG[left].astype(np.int32) + GF_LOG[right]]


def gf_matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """``left @ right`` over GF(256): ``(m, k) x (k, n) -> (m, n)``.

    The product is one gather into the padded exp table over a broadcast
    ``(m, k, n)`` sum of logs, XOR-reduced along ``k``.  Large left
    operands are processed in row blocks to bound the intermediate.
    """
    left = np.atleast_2d(np.asarray(left, dtype=np.uint8))
    right = np.atleast_2d(np.asarray(right, dtype=np.uint8))
    if left.shape[1] != right.shape[0]:
        raise ValueError(
            f"gf_matmul shape mismatch: {left.shape} x {right.shape}"
        )
    k, n = right.shape
    log_right = GF_LOG[right].astype(np.int32)[None, :, :]
    rows_per_block = max(1, _MATMUL_BLOCK_ELEMS // max(1, k * n))
    if left.shape[0] <= rows_per_block:
        log_left = GF_LOG[left].astype(np.int32)[:, :, None]
        return np.bitwise_xor.reduce(GF_EXP[log_left + log_right], axis=1)
    blocks = [
        np.bitwise_xor.reduce(
            GF_EXP[GF_LOG[block].astype(np.int32)[:, :, None] + log_right],
            axis=1,
        )
        for block in np.array_split(
            left, -(-left.shape[0] // rows_per_block), axis=0
        )
    ]
    return np.concatenate(blocks, axis=0)


def gf_alpha_power(exponents: np.ndarray) -> np.ndarray:
    """``alpha ** e`` (alpha = 2) for an integer exponent array, any sign."""
    return GF_EXP[np.mod(np.asarray(exponents, dtype=np.int64), _ORDER)]


def gf_inv(matrix: np.ndarray) -> np.ndarray:
    """Invert a square GF(256) matrix by Gauss-Jordan elimination.

    Raises :class:`ZeroDivisionError` when the matrix is singular.  Meant
    for the small per-unit erasure systems (at most ``nsym x nsym``), not
    for bulk work — pivoting is a Python loop over columns.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"gf_inv needs a square matrix, got {matrix.shape}")
    size = matrix.shape[0]
    augmented = np.concatenate(
        [matrix.copy(), np.eye(size, dtype=np.uint8)], axis=1
    )
    for col in range(size):
        pivots = np.nonzero(augmented[col:, col])[0]
        if pivots.size == 0:
            raise ZeroDivisionError("singular matrix over GF(256)")
        pivot = col + int(pivots[0])
        if pivot != col:
            augmented[[col, pivot]] = augmented[[pivot, col]]
        augmented[col] = gf_mul(
            augmented[col], _field.inverse(int(augmented[col, col]))
        )
        factors = augmented[:, col].copy()
        factors[col] = 0
        augmented ^= gf_mul(factors[:, None], augmented[col][None, :])
    return augmented[:, size:]
