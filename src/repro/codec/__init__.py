"""Encoding, decoding and error correction (Sections II-D, IV of the paper).

The codec converts binary files into DNA strands and back.  It follows the
*unconstrained coding* approach: a plain 2-bit/nucleotide mapping with
index-keyed randomization, while all error handling is delegated to an outer
Reed-Solomon code laid out over a matrix of molecules (Organick et al.),
with the Gini and DNAMapper layouts as drop-in alternatives.
"""

from repro.codec.galois import GF256, default_field
from repro.codec.gf_numpy import gf_alpha_power, gf_inv, gf_matmul, gf_mul
from repro.codec.reed_solomon import ReedSolomonCodec, RSDecodeError
from repro.codec.bits import bytes_to_bases, bytes_to_bases_batch, bases_to_bytes
from repro.codec.randomizer import Randomizer
from repro.codec.index import IndexCodec
from repro.codec.layout import BaselineLayout, GiniLayout, DNAMapperLayout
from repro.codec.encoder import DNAEncoder, EncodedPool, EncodingParameters
from repro.codec.decoder import DNADecoder, DecodeReport
from repro.codec.primers import PrimerPair, design_primer_library
from repro.codec.constrained import RotatingCodec, ROTATING_CODE_DENSITY
from repro.codec.fountain import Droplet, FountainCodec, robust_soliton

__all__ = [
    "GF256",
    "default_field",
    "gf_mul",
    "gf_matmul",
    "gf_inv",
    "gf_alpha_power",
    "ReedSolomonCodec",
    "RSDecodeError",
    "bytes_to_bases",
    "bytes_to_bases_batch",
    "bases_to_bytes",
    "Randomizer",
    "IndexCodec",
    "BaselineLayout",
    "GiniLayout",
    "DNAMapperLayout",
    "DNAEncoder",
    "EncodedPool",
    "EncodingParameters",
    "DNADecoder",
    "DecodeReport",
    "PrimerPair",
    "design_primer_library",
    "RotatingCodec",
    "ROTATING_CODE_DENSITY",
    "Droplet",
    "FountainCodec",
    "robust_soliton",
]
