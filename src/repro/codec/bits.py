"""The 2-bit-per-nucleotide unconstrained mapping between bytes and bases.

The toolkit uses unconstrained coding (Section II-D): every byte maps to
exactly four nucleotides (``A=00, C=01, G=10, T=11``, most significant bits
first), achieving the maximum density of two bits per base.  Homopolymer and
GC-content pathologies are handled statistically by the randomizer, not by
the mapping itself.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.dna.alphabet import BASE_TO_INDEX, INDEX_TO_BASE

_BYTE_TO_BASES: List[str] = [
    "".join(
        INDEX_TO_BASE[(value >> shift) & 0b11] for shift in (6, 4, 2, 0)
    )
    for value in range(256)
]


def bytes_to_bases(data: Iterable[int]) -> str:
    """Encode a byte sequence as DNA (four bases per byte, MSB first)."""
    return "".join(_BYTE_TO_BASES[byte] for byte in data)


def bases_to_bytes(sequence: str) -> bytes:
    """Decode a DNA string produced by :func:`bytes_to_bases`.

    The length must be a multiple of four; invalid characters raise
    :class:`ValueError`.
    """
    if len(sequence) % 4 != 0:
        raise ValueError(
            f"sequence length {len(sequence)} is not a multiple of 4"
        )
    output = bytearray()
    for start in range(0, len(sequence), 4):
        value = 0
        for char in sequence[start : start + 4]:
            try:
                value = (value << 2) | BASE_TO_INDEX[char]
            except KeyError:
                raise ValueError(f"invalid base {char!r}") from None
        output.append(value)
    return bytes(output)
