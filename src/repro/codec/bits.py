"""The 2-bit-per-nucleotide unconstrained mapping between bytes and bases.

The toolkit uses unconstrained coding (Section II-D): every byte maps to
exactly four nucleotides (``A=00, C=01, G=10, T=11``, most significant bits
first), achieving the maximum density of two bits per base.  Homopolymer and
GC-content pathologies are handled statistically by the randomizer, not by
the mapping itself.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.dna.alphabet import BASES, BASE_TO_INDEX, INDEX_TO_BASE

_BYTE_TO_BASES: List[str] = [
    "".join(
        INDEX_TO_BASE[(value >> shift) & 0b11] for shift in (6, 4, 2, 0)
    )
    for value in range(256)
]

#: ASCII codes of the four bases, indexed by 2-bit value.
_BASE_ASCII = np.frombuffer(BASES.encode("ascii"), dtype=np.uint8)


def bytes_to_bases(data: Iterable[int]) -> str:
    """Encode a byte sequence as DNA (four bases per byte, MSB first)."""
    return "".join(_BYTE_TO_BASES[byte] for byte in data)


def bytes_to_bases_batch(payloads: np.ndarray) -> List[str]:
    """:func:`bytes_to_bases` for a ``(strands, payload_bytes)`` uint8 matrix.

    The 2-bit crumbs of the whole matrix are extracted and mapped to base
    characters in one vectorized pass; one string per row is returned.
    """
    payloads = np.asarray(payloads, dtype=np.uint8)
    if payloads.ndim != 2:
        raise ValueError(f"expected a 2-D byte matrix, got shape {payloads.shape}")
    strands, width = payloads.shape
    crumbs = np.empty((strands, width, 4), dtype=np.uint8)
    for slot, shift in enumerate((6, 4, 2, 0)):
        crumbs[:, :, slot] = (payloads >> shift) & 0b11
    ascii_rows = _BASE_ASCII[crumbs.reshape(strands, width * 4)]
    return [row.tobytes().decode("ascii") for row in ascii_rows]


def bases_to_bytes(sequence: str) -> bytes:
    """Decode a DNA string produced by :func:`bytes_to_bases`.

    The length must be a multiple of four; invalid characters raise
    :class:`ValueError`.
    """
    if len(sequence) % 4 != 0:
        raise ValueError(
            f"sequence length {len(sequence)} is not a multiple of 4"
        )
    output = bytearray()
    for start in range(0, len(sequence), 4):
        value = 0
        for char in sequence[start : start + 4]:
            try:
                value = (value << 2) | BASE_TO_INDEX[char]
            except KeyError:
                raise ValueError(f"invalid base {char!r}") from None
        output.append(value)
    return bytes(output)
