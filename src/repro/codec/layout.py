"""Matrix layouts: how codewords map onto molecule rows (Section IV).

An encoding unit is a matrix whose columns are molecules and whose rows are
Reed-Solomon codewords.  Trace reconstruction does not treat all strand
indexes equally — double-sided BMA concentrates errors in the middle
indexes — so *where* a codeword's bytes live inside each molecule determines
its reliability.  Three layouts are provided:

* :class:`BaselineLayout` — codeword ``i`` occupies matrix row ``i`` in every
  column (Organick et al.).  Middle rows inherit the middle-index error peak.
* :class:`GiniLayout` — codeword ``i``'s byte in column ``j`` is stored at
  row ``(i + j) mod R``, spreading every codeword diagonally so all codewords
  see the same average reliability (Lin et al., "Managing reliability skew").
* :class:`DNAMapperLayout` — codewords are ranked by priority and assigned to
  rows ranked by measured reliability, so the most corruption-sensitive data
  lands in the most reliable strand indexes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

import numpy as np


class MatrixLayout(ABC):
    """Bijection between codeword coordinates and matrix coordinates."""

    #: Short name used in configs and reports.
    name: str = "abstract"

    @abstractmethod
    def place(self, codewords: Sequence[Sequence[int]]) -> List[List[int]]:
        """Map ``R`` codewords of length ``n`` onto an ``R x n`` matrix."""

    @abstractmethod
    def extract(self, matrix: Sequence[Sequence[int]]) -> List[List[int]]:
        """Invert :meth:`place`."""

    # The array variants serve the batched codec paths.  The defaults
    # round-trip through the list API so user-defined layouts keep working;
    # the built-in layouts override them with pure numpy indexing.

    def place_array(self, codewords: np.ndarray) -> np.ndarray:
        """:meth:`place` for a uint8 codeword matrix, returning uint8."""
        _validate_array(codewords)
        return np.array(self.place(codewords.tolist()), dtype=np.uint8)

    def extract_array(self, matrix: np.ndarray) -> np.ndarray:
        """:meth:`extract` for a uint8 matrix, returning uint8."""
        _validate_array(matrix)
        return np.array(self.extract(matrix.tolist()), dtype=np.uint8)


def _validate_rectangular(rows: Sequence[Sequence[int]]) -> None:
    if not rows:
        raise ValueError("layout requires at least one row")
    width = len(rows[0])
    if any(len(row) != width for row in rows):
        raise ValueError("layout requires a rectangular matrix")
    if width == 0:
        raise ValueError("layout requires non-empty rows")


def _validate_array(matrix: np.ndarray) -> None:
    if matrix.ndim != 2 or 0 in matrix.shape:
        raise ValueError(
            f"layout requires a non-empty 2-D matrix, got shape {matrix.shape}"
        )


class BaselineLayout(MatrixLayout):
    """Identity layout: codeword ``i`` is matrix row ``i``."""

    name = "baseline"

    def place(self, codewords: Sequence[Sequence[int]]) -> List[List[int]]:
        _validate_rectangular(codewords)
        return [list(row) for row in codewords]

    def extract(self, matrix: Sequence[Sequence[int]]) -> List[List[int]]:
        _validate_rectangular(matrix)
        return [list(row) for row in matrix]

    def place_array(self, codewords: np.ndarray) -> np.ndarray:
        _validate_array(codewords)
        return np.asarray(codewords, dtype=np.uint8).copy()

    def extract_array(self, matrix: np.ndarray) -> np.ndarray:
        _validate_array(matrix)
        return np.asarray(matrix, dtype=np.uint8).copy()


class GiniLayout(MatrixLayout):
    """Diagonal layout: byte ``j`` of codeword ``i`` at row ``(i + j) % R``.

    Every codeword then visits every strand index (modulo wrap-around),
    equalising the per-codeword error rate under any positional skew.
    """

    name = "gini"

    def place(self, codewords: Sequence[Sequence[int]]) -> List[List[int]]:
        _validate_rectangular(codewords)
        rows = len(codewords)
        cols = len(codewords[0])
        matrix = [[0] * cols for _ in range(rows)]
        for i in range(rows):
            codeword = codewords[i]
            for j in range(cols):
                matrix[(i + j) % rows][j] = codeword[j]
        return matrix

    def extract(self, matrix: Sequence[Sequence[int]]) -> List[List[int]]:
        _validate_rectangular(matrix)
        rows = len(matrix)
        cols = len(matrix[0])
        codewords = [[0] * cols for _ in range(rows)]
        for i in range(rows):
            codeword = codewords[i]
            for j in range(cols):
                codeword[j] = matrix[(i + j) % rows][j]
        return codewords

    @staticmethod
    def _diagonal_rows(rows: int, cols: int, sign: int) -> np.ndarray:
        return (
            np.arange(rows, dtype=np.intp)[:, None]
            + sign * np.arange(cols, dtype=np.intp)[None, :]
        ) % rows

    def place_array(self, codewords: np.ndarray) -> np.ndarray:
        _validate_array(codewords)
        codewords = np.asarray(codewords, dtype=np.uint8)
        rows, cols = codewords.shape
        # matrix[r, j] = codewords[(r - j) % rows, j]
        gather = self._diagonal_rows(rows, cols, -1)
        return codewords[gather, np.arange(cols, dtype=np.intp)[None, :]]

    def extract_array(self, matrix: np.ndarray) -> np.ndarray:
        _validate_array(matrix)
        matrix = np.asarray(matrix, dtype=np.uint8)
        rows, cols = matrix.shape
        # codewords[i, j] = matrix[(i + j) % rows, j]
        gather = self._diagonal_rows(rows, cols, 1)
        return matrix[gather, np.arange(cols, dtype=np.intp)[None, :]]


class DNAMapperLayout(MatrixLayout):
    """Reliability-aware layout: priority-ranked codewords on ranked rows.

    Parameters
    ----------
    row_reliability:
        One score per matrix row; higher means the strand index is more
        reliably reconstructed.  Codeword 0 (the highest-priority data) is
        placed on the most reliable row, codeword 1 on the next, and so on.
        When omitted, rows keep their natural order (identity permutation).

    The caller is responsible for ordering the *data* by priority before
    encoding — e.g. putting the most significant image bits first — which is
    exactly the usage model of DNAMapper in the paper.
    """

    name = "dnamapper"

    def __init__(self, row_reliability: Optional[Sequence[float]] = None):
        self.row_reliability = (
            None if row_reliability is None else list(row_reliability)
        )
        self._permutation: Optional[List[int]] = None
        if self.row_reliability is not None:
            self._permutation = sorted(
                range(len(self.row_reliability)),
                key=lambda row: -self.row_reliability[row],
            )

    def _permutation_for(self, rows: int) -> List[int]:
        if self._permutation is None:
            return list(range(rows))
        if len(self._permutation) != rows:
            raise ValueError(
                f"reliability profile covers {len(self._permutation)} rows, "
                f"matrix has {rows}"
            )
        return self._permutation

    def place(self, codewords: Sequence[Sequence[int]]) -> List[List[int]]:
        _validate_rectangular(codewords)
        permutation = self._permutation_for(len(codewords))
        matrix: List[List[int]] = [[] for _ in range(len(codewords))]
        for priority, row in enumerate(permutation):
            matrix[row] = list(codewords[priority])
        return matrix

    def extract(self, matrix: Sequence[Sequence[int]]) -> List[List[int]]:
        _validate_rectangular(matrix)
        permutation = self._permutation_for(len(matrix))
        codewords: List[List[int]] = [[] for _ in range(len(matrix))]
        for priority, row in enumerate(permutation):
            codewords[priority] = list(matrix[row])
        return codewords

    def place_array(self, codewords: np.ndarray) -> np.ndarray:
        _validate_array(codewords)
        codewords = np.asarray(codewords, dtype=np.uint8)
        permutation = np.asarray(
            self._permutation_for(codewords.shape[0]), dtype=np.intp
        )
        matrix = np.empty_like(codewords)
        matrix[permutation] = codewords
        return matrix

    def extract_array(self, matrix: np.ndarray) -> np.ndarray:
        _validate_array(matrix)
        matrix = np.asarray(matrix, dtype=np.uint8)
        permutation = np.asarray(
            self._permutation_for(matrix.shape[0]), dtype=np.intp
        )
        return matrix[permutation]


_LAYOUTS = {
    BaselineLayout.name: BaselineLayout,
    GiniLayout.name: GiniLayout,
    DNAMapperLayout.name: DNAMapperLayout,
}


def make_layout(name: str, **kwargs) -> MatrixLayout:
    """Instantiate a layout by its short name ("baseline", "gini", "dnamapper")."""
    try:
        factory = _LAYOUTS[name]
    except KeyError:
        raise ValueError(
            f"unknown layout {name!r}; choose from {sorted(_LAYOUTS)}"
        ) from None
    return factory(**kwargs)
