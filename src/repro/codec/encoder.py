"""File-to-strands encoding (Section IV, following Organick et al.).

The byte stream (an 8-byte length header plus the file) is split into
*columns* of ``payload_bytes`` each.  ``data_columns`` columns form an
encoding unit; each of the unit's ``payload_bytes`` rows is a Reed-Solomon
codeword extended with ``parity_columns`` parity symbols, which become the
unit's extra (ECC) molecules.  A matrix layout then decides which codeword
byte lands on which strand index, the payload is whitened with an
index-keyed keystream, and the index is prepended.  Finally, the strand is
wrapped in the file's PCR primer pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.codec.bits import bytes_to_bases_batch
from repro.codec.index import IndexCodec
from repro.codec.layout import BaselineLayout, MatrixLayout
from repro.codec.primers import PrimerPair
from repro.codec.randomizer import Randomizer
from repro.codec.reed_solomon import ReedSolomonCodec

_HEADER_BYTES = 8


@dataclass
class EncodingParameters:
    """Static configuration shared by the encoder and the decoder.

    Attributes
    ----------
    payload_bytes:
        Bytes of payload per molecule (4 nt per byte); also the number of
        Reed-Solomon codewords (rows) per encoding unit.
    data_columns:
        Data molecules per encoding unit (the RS ``k``).
    parity_columns:
        ECC molecules per encoding unit (the RS ``nsym``).
    index_bytes:
        Width of the per-molecule index field.
    layout:
        Matrix layout mapping codewords to strand indexes.
    randomize / randomizer_seed:
        Whether and how payloads are whitened.
    primer_pair:
        Optional PCR primer pair wrapped around every strand.
    """

    payload_bytes: int = 30
    data_columns: int = 60
    parity_columns: int = 20
    index_bytes: int = 3
    layout: MatrixLayout = field(default_factory=BaselineLayout)
    randomize: bool = True
    randomizer_seed: int = 0x5EED5EED
    primer_pair: Optional[PrimerPair] = None

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError("payload_bytes must be positive")
        if self.data_columns <= 0 or self.parity_columns <= 0:
            raise ValueError("data_columns and parity_columns must be positive")
        if self.total_columns > 255:
            raise ValueError(
                f"encoding unit has {self.total_columns} columns; "
                "RS over GF(256) supports at most 255"
            )

    @property
    def total_columns(self) -> int:
        """Molecules per encoding unit (RS codeword length ``n``)."""
        return self.data_columns + self.parity_columns

    @property
    def payload_nt(self) -> int:
        """Payload length of each strand in nucleotides."""
        return self.payload_bytes * 4

    @property
    def body_nt(self) -> int:
        """Strand body length (index + payload) in nucleotides."""
        return (self.index_bytes + self.payload_bytes) * 4

    @property
    def strand_nt(self) -> int:
        """Full synthesized strand length including primer sites."""
        if self.primer_pair is None:
            return self.body_nt
        return (
            self.body_nt
            + len(self.primer_pair.forward)
            + len(self.primer_pair.reverse)
        )


@dataclass
class EncodedPool:
    """The output of encoding: strands plus the metadata needed to decode.

    ``references`` holds the clean strand *bodies* (index + payload, without
    primers); they are the ground truth against which clustering and trace
    reconstruction are evaluated.  ``strands`` holds the sequences to
    synthesize, which include primer sites when a primer pair is configured.
    """

    strands: List[str]
    references: List[str]
    parameters: EncodingParameters
    num_units: int
    file_length: int

    def __len__(self) -> int:
        return len(self.strands)


class DNAEncoder:
    """Encodes byte strings into pools of DNA strands."""

    def __init__(self, parameters: Optional[EncodingParameters] = None):
        self.parameters = parameters or EncodingParameters()
        self._rs = ReedSolomonCodec(nsym=self.parameters.parity_columns)
        self._randomizer = Randomizer(self.parameters.randomizer_seed)
        self._index_codec = IndexCodec(
            self.parameters.index_bytes,
            randomizer=self._randomizer if self.parameters.randomize else None,
        )

    def encode(self, data: bytes) -> EncodedPool:
        """Encode *data* into an :class:`EncodedPool`.

        An 8-byte big-endian length header is prepended so decoding is
        self-contained; the stream is zero-padded to fill the last unit.
        """
        params = self.parameters
        stream = len(data).to_bytes(_HEADER_BYTES, "big") + data
        bytes_per_unit = params.payload_bytes * params.data_columns
        num_units = max(1, -(-len(stream) // bytes_per_unit))
        if num_units * params.total_columns > self._index_codec.capacity:
            raise ValueError(
                "file too large for the configured index width: "
                f"{num_units * params.total_columns} molecules needed, "
                f"index capacity is {self._index_codec.capacity}"
            )
        stream = stream.ljust(num_units * bytes_per_unit, b"\x00")

        stream_bytes = np.frombuffer(stream, dtype=np.uint8)
        strands: List[str] = []
        references: List[str] = []
        for unit in range(num_units):
            unit_bytes = stream_bytes[
                unit * bytes_per_unit : (unit + 1) * bytes_per_unit
            ]
            matrix = self._encode_unit(unit_bytes)
            # Column c of the unit matrix is molecule c's payload.
            payloads = matrix.T
            first_index = unit * params.total_columns
            indices = np.arange(first_index, first_index + params.total_columns)
            if params.randomize:
                payloads = self._randomizer.apply_batch(payloads, indices)
            payload_bases = bytes_to_bases_batch(payloads)
            for column, bases in enumerate(payload_bases):
                body = self._index_codec.encode(first_index + column) + bases
                references.append(body)
                if params.primer_pair is not None:
                    strands.append(params.primer_pair.tag(body))
                else:
                    strands.append(body)
        return EncodedPool(
            strands=strands,
            references=references,
            parameters=params,
            num_units=num_units,
            file_length=len(data),
        )

    def _encode_unit(self, unit_bytes: np.ndarray) -> np.ndarray:
        """RS-encode one unit's rows (all at once) and apply the matrix layout.

        The unit's byte stream is column-major (molecule ``c`` holds bytes
        ``c*payload_bytes .. (c+1)*payload_bytes``), so the ``(rows, k)``
        message matrix is just a reshape + transpose; the parity block for
        every row comes from one batched GF(256) matrix product.
        """
        params = self.parameters
        messages = unit_bytes.reshape(params.data_columns, params.payload_bytes).T
        codewords = self._rs.encode_batch(messages)
        return params.layout.place_array(codewords)
