"""Strands-to-file decoding and error correction (Section IV).

The decoder is the inverse of :mod:`repro.codec.encoder`: reconstructed
strand bodies are parsed for their index, de-whitened, and placed back into
their encoding-unit matrix.  Missing molecules become *erasures* at known
columns; surviving molecules with residual reconstruction errors (including
indels, which smear into substitutions once the strand is forced back to its
nominal length) become symbol errors.

Error correction is tiered by cost.  One batched syndrome screen classifies
every codeword row of a unit at once; rows that verify clean (the common
case after good consensus) skip correction entirely.  Rows whose only
errata are the unit's missing columns go through the batched erasure
direct-solve.  Only rows that still fail — erasures *plus* substitution
errors — reach the scalar Berlekamp-Massey/Chien/Forney errata decoder,
fanned out through a :class:`~repro.parallel.WorkerPool` when one is
provided.  All three tiers produce byte-identical output and identical
:class:`DecodeReport` statistics to running the scalar decoder on every
row.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.codec.bits import bases_to_bytes
from repro.codec.encoder import _HEADER_BYTES, EncodingParameters
from repro.codec.index import IndexCodec
from repro.codec.randomizer import Randomizer
from repro.codec.reed_solomon import ReedSolomonCodec, RSDecodeError
from repro.observability.provenance import (
    ProvenanceLedger,
    UnitOutcome,
    as_ledger,
)
from repro.observability.trace import Tracer, as_tracer, worker_span
from repro.parallel import WorkerPool


@dataclass
class DecodeReport:
    """Diagnostics from one decode run."""

    total_strands: int = 0
    usable_strands: int = 0
    bad_index: int = 0
    bad_symbols: int = 0
    length_adjusted: int = 0
    duplicate_columns: int = 0
    missing_columns: int = 0
    failed_rows: int = 0
    corrected_rows: int = 0
    clean_rows: int = 0
    #: total RS symbols repaired across all corrected rows
    symbols_corrected: int = 0
    success: bool = False
    unit_failures: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return self.failed_rows + self.corrected_rows + self.clean_rows


class DNADecoder:
    """Decodes reconstructed strand bodies back into the original bytes."""

    def __init__(self, parameters: Optional[EncodingParameters] = None):
        self.parameters = parameters or EncodingParameters()
        self._rs = ReedSolomonCodec(nsym=self.parameters.parity_columns)
        self._randomizer = Randomizer(self.parameters.randomizer_seed)
        self._index_codec = IndexCodec(
            self.parameters.index_bytes,
            randomizer=self._randomizer if self.parameters.randomize else None,
        )

    def decode(
        self,
        strands: Iterable[str],
        expected_units: Optional[int] = None,
        tracer: Optional[Tracer] = None,
        pool: Optional[WorkerPool] = None,
        ledger: Optional[ProvenanceLedger] = None,
    ) -> Tuple[bytes, DecodeReport]:
        """Decode strand *bodies* (index + payload, primers already removed).

        Parameters
        ----------
        strands:
            Reconstructed strand bodies.  Wrong-length strands are padded or
            truncated to the nominal body length (their tail errors become
            RS-correctable substitutions).
        expected_units:
            Number of encoding units originally written.  When omitted it is
            inferred from the largest valid index observed, which is correct
            unless an entire trailing unit was lost.
        tracer:
            Optional :class:`~repro.observability.Tracer`; when given, the
            run emits ``decoding.collect_columns`` / ``decoding.units``
            spans and RS counters (``rs_decode_errors_corrected``,
            ``rs_rows_corrected`` / ``rs_rows_failed`` / ``rs_rows_clean``).
        pool:
            Optional :class:`~repro.parallel.WorkerPool` used to fan out the
            scalar errata decoding of rows that fail both batched fast
            paths.  The result is byte-identical at any worker count.
        ledger:
            Optional :class:`~repro.observability.ProvenanceLedger`; when
            given, the run records the molecule index parsed from every
            input strand and each unit's Reed-Solomon outcome (erasures,
            failed rows, per-column corrected symbols) for the
            ``repro why`` forensics.

        Returns
        -------
        (data, report):
            The recovered file bytes and a :class:`DecodeReport`.  When rows
            are uncorrectable the best-effort bytes are returned and
            ``report.success`` is ``False``.
        """
        params = self.parameters
        tracer = as_tracer(tracer)
        ledger = as_ledger(ledger)
        report = DecodeReport()
        with tracer.span("decoding.collect_columns") as span:
            columns = self._collect_columns(strands, report, ledger)
            span.set("strands", report.total_strands)
            span.set("columns", len(columns))
        tracer.metrics.counter("reads_discarded", stage="decoding").inc(
            report.bad_symbols
        )
        if not columns:
            return b"", report

        if expected_units is None:
            expected_units = max(idx for idx in columns) // params.total_columns + 1
        # Strands whose reconstructed index lies beyond the last unit are
        # index-corruption victims, not real columns.
        capacity = expected_units * params.total_columns
        report.bad_index = sum(1 for index in columns if index >= capacity)
        stream = bytearray()
        decode_ok = True
        with tracer.span("decoding.units", units=expected_units):
            for unit in range(expected_units):
                unit_bytes, failed = self._decode_unit(
                    unit, columns, report, tracer=tracer, pool=pool, ledger=ledger
                )
                stream.extend(unit_bytes)
                if failed:
                    decode_ok = False
        metrics = tracer.metrics
        metrics.counter("rs_rows_clean").inc(report.clean_rows)
        metrics.counter("rs_rows_corrected").inc(report.corrected_rows)
        metrics.counter("rs_rows_failed").inc(report.failed_rows)

        if len(stream) < _HEADER_BYTES:
            report.success = False
            return bytes(stream), report
        length = int.from_bytes(stream[:_HEADER_BYTES], "big")
        payload = bytes(stream[_HEADER_BYTES : _HEADER_BYTES + length])
        report.success = decode_ok and len(payload) == length
        return payload, report

    # ------------------------------------------------------------------

    def _collect_columns(
        self,
        strands: Iterable[str],
        report: DecodeReport,
        ledger: Optional[ProvenanceLedger] = None,
    ) -> Dict[int, bytes]:
        """Parse strands into per-index payloads; resolve duplicates by vote."""
        params = self.parameters
        ledger = as_ledger(ledger)
        candidates: Dict[int, List[bytes]] = defaultdict(list)
        for position, strand in enumerate(strands):
            report.total_strands += 1
            body = self._normalise_length(strand, report)
            if body is None:
                if ledger.enabled:
                    ledger.record_strand_parse(position, None)
                continue
            try:
                index = self._index_codec.decode(body)
                payload = bases_to_bytes(body[self._index_codec.index_nt :])
            except ValueError:
                report.bad_symbols += 1
                if ledger.enabled:
                    ledger.record_strand_parse(position, None)
                continue
            if ledger.enabled:
                ledger.record_strand_parse(position, index)
            if params.randomize:
                payload = self._randomizer.apply(payload, index)
            candidates[index].append(payload)
            report.usable_strands += 1

        columns: Dict[int, bytes] = {}
        for index, payloads in candidates.items():
            if len(payloads) > 1:
                report.duplicate_columns += 1
                columns[index] = _bytewise_majority(payloads)
            else:
                columns[index] = payloads[0]
        return columns

    def _normalise_length(self, strand: str, report: DecodeReport) -> Optional[str]:
        body_nt = self.parameters.body_nt
        if len(strand) == body_nt:
            return strand
        report.length_adjusted += 1
        if len(strand) > body_nt:
            return strand[:body_nt]
        if not strand:
            return None
        return strand + "A" * (body_nt - len(strand))

    def _decode_unit(
        self,
        unit: int,
        columns: Dict[int, bytes],
        report: DecodeReport,
        tracer: Optional[Tracer] = None,
        pool: Optional[WorkerPool] = None,
        ledger: Optional[ProvenanceLedger] = None,
    ) -> Tuple[bytes, bool]:
        """Decode one encoding unit; return (data bytes, any_row_failed)."""
        params = self.parameters
        tracer = as_tracer(tracer)
        ledger = as_ledger(ledger)
        errors_corrected = tracer.metrics.counter("rs_decode_errors_corrected")
        corrections_per_row = tracer.metrics.histogram("rs_corrections_per_row")
        erasures_per_row = tracer.metrics.histogram("rs_erasures_per_row")
        rows = params.payload_bytes
        n = params.total_columns
        k = params.data_columns
        base_index = unit * n
        matrix = np.zeros((rows, n), dtype=np.uint8)
        erasures: List[int] = []
        for column in range(n):
            payload = columns.get(base_index + column)
            if payload is None or len(payload) != rows:
                erasures.append(column)
                report.missing_columns += 1
                continue
            matrix[:, column] = np.frombuffer(payload, dtype=np.uint8)

        codewords = params.layout.extract_array(matrix)
        decoded = self._decode_rows(codewords, erasures, pool=pool)

        failed_rows: List[int] = []
        clean_rows = corrected_rows = 0
        corrections_by_column: Dict[int, int] = {}
        data_rows = codewords[:, :k].copy()
        for row_index, message in enumerate(decoded):
            erasures_per_row.observe(len(erasures))
            if message is None:
                report.failed_rows += 1
                failed_rows.append(row_index)
                continue
            changed = data_rows[row_index] != message
            corrections = int(np.count_nonzero(changed))
            if corrections:
                report.corrected_rows += 1
                corrected_rows += 1
                report.symbols_corrected += corrections
                errors_corrected.inc(corrections)
                corrections_per_row.observe(corrections)
                if ledger.enabled:
                    # Codeword column j holds matrix column j's byte for
                    # every layout (layouts permute/rotate *rows* within a
                    # column), so corrections attribute straight to strands.
                    for column in np.nonzero(changed)[0]:
                        column = int(column)
                        corrections_by_column[column] = (
                            corrections_by_column.get(column, 0) + 1
                        )
                data_rows[row_index] = message
            else:
                report.clean_rows += 1
                clean_rows += 1
                corrections_per_row.observe(0)
        if failed_rows:
            report.unit_failures[unit] = failed_rows
        if ledger.enabled:
            ledger.record_unit(
                UnitOutcome(
                    unit=unit,
                    erased_columns=list(erasures),
                    failed_rows=failed_rows,
                    clean_rows=clean_rows,
                    corrected_rows=corrected_rows,
                    corrections_by_column=corrections_by_column,
                )
            )

        # Column-major assembly: molecule c contributed bytes c*rows..c*rows+rows.
        unit_bytes = data_rows.T.tobytes()
        return unit_bytes, bool(failed_rows)

    def _decode_rows(
        self,
        codewords: np.ndarray,
        erasures: List[int],
        pool: Optional[WorkerPool] = None,
    ) -> List[Optional[np.ndarray]]:
        """Errata-decode every codeword row; ``None`` marks uncorrectable rows.

        Rows are triaged through the batched tiers (syndrome screen, then
        erasure-only direct solve) and only the residual hard rows reach the
        scalar errata decoder.  Outcomes are identical to scalar-decoding
        each row.
        """
        rows = codewords.shape[0]
        k = codewords.shape[1] - self._rs.nsym
        if len(erasures) > self._rs.nsym:
            # The scalar decoder rejects every row of such a unit up front.
            return [None] * rows

        syndromes = self._rs.syndromes_batch(codewords)
        if erasures:
            candidates, solved = self._rs.erasure_solve_batch(
                codewords, erasures, syndromes=syndromes
            )
        else:
            candidates, solved = codewords, ~syndromes.any(axis=1)

        decoded: List[Optional[np.ndarray]] = [
            candidates[row, :k] if solved[row] else None for row in range(rows)
        ]
        hard = [row for row in range(rows) if not solved[row]]
        if not hard:
            return decoded

        pool = pool or WorkerPool(1)
        hard_messages = pool.map_chunks(
            _scalar_decode_rows,
            [codewords[row].tolist() for row in hard],
            (self._rs.nsym, tuple(erasures)),
        )
        for row, message in zip(hard, hard_messages):
            if message is not None:
                decoded[row] = np.array(message, dtype=np.uint8)
        return decoded


def _scalar_decode_rows(
    codeword_rows: Sequence[List[int]], extra: object
) -> List[Optional[List[int]]]:
    """WorkerPool chunk function: scalar-errata-decode hard codeword rows.

    ``extra`` is ``(nsym, erasure_positions)``; uncorrectable rows map to
    ``None``.  Rebuilding the codec per chunk is cheap — the field tables
    and generator polynomial come from the module-level caches.
    """
    nsym, erasures = extra
    rs = ReedSolomonCodec(nsym=nsym)
    messages: List[Optional[List[int]]] = []
    with worker_span("decoding.scalar_fallback_chunk", rows=len(codeword_rows)):
        for codeword in codeword_rows:
            try:
                messages.append(rs.decode(codeword, erasures=erasures))
            except RSDecodeError:
                messages.append(None)
    return messages


def _bytewise_majority(payloads: List[bytes]) -> bytes:
    """Resolve duplicate reconstructions of one molecule by bytewise vote.

    Vectorized column-wise bincount/argmax with the same tie-break as the
    original ``Counter.most_common`` loop: among values with the maximal
    count, the one seen first (lowest payload index) wins.
    """
    length = max(len(p) for p in payloads)
    stack = np.full((len(payloads), length), -1, dtype=np.int16)
    for row, payload in enumerate(payloads):
        stack[row, : len(payload)] = np.frombuffer(payload, dtype=np.uint8)
    valid = stack >= 0
    # counts[position, value] via one flat bincount over position*256 + value.
    flat = (stack + 256 * np.arange(length, dtype=np.int32)[None, :])[valid]
    counts = np.bincount(flat, minlength=256 * length).reshape(length, 256)
    max_counts = counts.max(axis=1)
    cell_counts = counts[
        np.arange(length, dtype=np.intp)[None, :], np.clip(stack, 0, 255)
    ]
    is_winner = valid & (cell_counts == max_counts[None, :])
    # argmax returns the first winning row; every column has at least one
    # valid cell (the longest payload), so a winner always exists.
    first_winner = is_winner.argmax(axis=0)
    winners = stack[first_winner, np.arange(length, dtype=np.intp)]
    return winners.astype(np.uint8).tobytes()
