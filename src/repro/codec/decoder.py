"""Strands-to-file decoding and error correction (Section IV).

The decoder is the inverse of :mod:`repro.codec.encoder`: reconstructed
strand bodies are parsed for their index, de-whitened, and placed back into
their encoding-unit matrix.  Missing molecules become *erasures* at known
columns; surviving molecules with residual reconstruction errors (including
indels, which smear into substitutions once the strand is forced back to its
nominal length) become symbol errors.  Both are corrected row-by-row with
the Reed-Solomon errata decoder.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.codec.bits import bases_to_bytes
from repro.codec.encoder import _HEADER_BYTES, EncodingParameters
from repro.codec.index import IndexCodec
from repro.codec.randomizer import Randomizer
from repro.codec.reed_solomon import ReedSolomonCodec, RSDecodeError
from repro.observability.trace import Tracer, as_tracer


@dataclass
class DecodeReport:
    """Diagnostics from one decode run."""

    total_strands: int = 0
    usable_strands: int = 0
    bad_index: int = 0
    bad_symbols: int = 0
    length_adjusted: int = 0
    duplicate_columns: int = 0
    missing_columns: int = 0
    failed_rows: int = 0
    corrected_rows: int = 0
    clean_rows: int = 0
    #: total RS symbols repaired across all corrected rows
    symbols_corrected: int = 0
    success: bool = False
    unit_failures: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def total_rows(self) -> int:
        return self.failed_rows + self.corrected_rows + self.clean_rows


class DNADecoder:
    """Decodes reconstructed strand bodies back into the original bytes."""

    def __init__(self, parameters: Optional[EncodingParameters] = None):
        self.parameters = parameters or EncodingParameters()
        self._rs = ReedSolomonCodec(nsym=self.parameters.parity_columns)
        self._randomizer = Randomizer(self.parameters.randomizer_seed)
        self._index_codec = IndexCodec(
            self.parameters.index_bytes,
            randomizer=self._randomizer if self.parameters.randomize else None,
        )

    def decode(
        self,
        strands: Iterable[str],
        expected_units: Optional[int] = None,
        tracer: Optional[Tracer] = None,
    ) -> Tuple[bytes, DecodeReport]:
        """Decode strand *bodies* (index + payload, primers already removed).

        Parameters
        ----------
        strands:
            Reconstructed strand bodies.  Wrong-length strands are padded or
            truncated to the nominal body length (their tail errors become
            RS-correctable substitutions).
        expected_units:
            Number of encoding units originally written.  When omitted it is
            inferred from the largest valid index observed, which is correct
            unless an entire trailing unit was lost.
        tracer:
            Optional :class:`~repro.observability.Tracer`; when given, the
            run emits ``decoding.collect_columns`` / ``decoding.units``
            spans and RS counters (``rs_decode_errors_corrected``,
            ``rs_rows_corrected`` / ``rs_rows_failed`` / ``rs_rows_clean``).

        Returns
        -------
        (data, report):
            The recovered file bytes and a :class:`DecodeReport`.  When rows
            are uncorrectable the best-effort bytes are returned and
            ``report.success`` is ``False``.
        """
        params = self.parameters
        tracer = as_tracer(tracer)
        report = DecodeReport()
        with tracer.span("decoding.collect_columns") as span:
            columns = self._collect_columns(strands, report)
            span.set("strands", report.total_strands)
            span.set("columns", len(columns))
        tracer.metrics.counter("reads_discarded", stage="decoding").inc(
            report.bad_symbols
        )
        if not columns:
            return b"", report

        if expected_units is None:
            expected_units = max(idx for idx in columns) // params.total_columns + 1
        # Strands whose reconstructed index lies beyond the last unit are
        # index-corruption victims, not real columns.
        capacity = expected_units * params.total_columns
        report.bad_index = sum(1 for index in columns if index >= capacity)
        stream = bytearray()
        decode_ok = True
        with tracer.span("decoding.units", units=expected_units):
            for unit in range(expected_units):
                unit_bytes, failed = self._decode_unit(
                    unit, columns, report, tracer=tracer
                )
                stream.extend(unit_bytes)
                if failed:
                    decode_ok = False
        metrics = tracer.metrics
        metrics.counter("rs_rows_clean").inc(report.clean_rows)
        metrics.counter("rs_rows_corrected").inc(report.corrected_rows)
        metrics.counter("rs_rows_failed").inc(report.failed_rows)

        if len(stream) < _HEADER_BYTES:
            report.success = False
            return bytes(stream), report
        length = int.from_bytes(stream[:_HEADER_BYTES], "big")
        payload = bytes(stream[_HEADER_BYTES : _HEADER_BYTES + length])
        report.success = decode_ok and len(payload) == length
        return payload, report

    # ------------------------------------------------------------------

    def _collect_columns(
        self, strands: Iterable[str], report: DecodeReport
    ) -> Dict[int, bytes]:
        """Parse strands into per-index payloads; resolve duplicates by vote."""
        params = self.parameters
        candidates: Dict[int, List[bytes]] = defaultdict(list)
        for strand in strands:
            report.total_strands += 1
            body = self._normalise_length(strand, report)
            if body is None:
                continue
            try:
                index = self._index_codec.decode(body)
                payload = bases_to_bytes(body[self._index_codec.index_nt :])
            except ValueError:
                report.bad_symbols += 1
                continue
            if params.randomize:
                payload = self._randomizer.apply(payload, index)
            candidates[index].append(payload)
            report.usable_strands += 1

        columns: Dict[int, bytes] = {}
        for index, payloads in candidates.items():
            if len(payloads) > 1:
                report.duplicate_columns += 1
                columns[index] = _bytewise_majority(payloads)
            else:
                columns[index] = payloads[0]
        return columns

    def _normalise_length(self, strand: str, report: DecodeReport) -> Optional[str]:
        body_nt = self.parameters.body_nt
        if len(strand) == body_nt:
            return strand
        report.length_adjusted += 1
        if len(strand) > body_nt:
            return strand[:body_nt]
        if not strand:
            return None
        return strand + "A" * (body_nt - len(strand))

    def _decode_unit(
        self,
        unit: int,
        columns: Dict[int, bytes],
        report: DecodeReport,
        tracer: Optional[Tracer] = None,
    ) -> Tuple[bytes, bool]:
        """Decode one encoding unit; return (data bytes, any_row_failed)."""
        params = self.parameters
        tracer = as_tracer(tracer)
        errors_corrected = tracer.metrics.counter("rs_decode_errors_corrected")
        corrections_per_row = tracer.metrics.histogram("rs_corrections_per_row")
        erasures_per_row = tracer.metrics.histogram("rs_erasures_per_row")
        rows = params.payload_bytes
        n = params.total_columns
        base_index = unit * n
        matrix = [[0] * n for _ in range(rows)]
        erasures = []
        for column in range(n):
            payload = columns.get(base_index + column)
            if payload is None or len(payload) != rows:
                erasures.append(column)
                report.missing_columns += 1
                continue
            for row in range(rows):
                matrix[row][column] = payload[row]

        codewords = params.layout.extract(matrix)
        failed_rows: List[int] = []
        data_rows: List[List[int]] = []
        for row_index, codeword in enumerate(codewords):
            erasures_per_row.observe(len(erasures))
            if not erasures and self._rs.check(codeword):
                report.clean_rows += 1
                corrections_per_row.observe(0)
                data_rows.append(list(codeword[: params.data_columns]))
                continue
            try:
                message = self._rs.decode(codeword, erasures=erasures)
                received = list(codeword[: params.data_columns])
                if received != message:
                    report.corrected_rows += 1
                    corrections = sum(
                        1 for a, b in zip(received, message) if a != b
                    )
                    report.symbols_corrected += corrections
                    errors_corrected.inc(corrections)
                    corrections_per_row.observe(corrections)
                else:
                    report.clean_rows += 1
                    corrections_per_row.observe(0)
                data_rows.append(message)
            except RSDecodeError:
                report.failed_rows += 1
                failed_rows.append(row_index)
                data_rows.append(list(codeword[: params.data_columns]))
        if failed_rows:
            report.unit_failures[unit] = failed_rows

        unit_bytes = bytearray()
        for column in range(params.data_columns):
            for row in range(rows):
                unit_bytes.append(data_rows[row][column])
        return bytes(unit_bytes), bool(failed_rows)


def _bytewise_majority(payloads: List[bytes]) -> bytes:
    """Resolve duplicate reconstructions of one molecule by bytewise vote."""
    length = max(len(p) for p in payloads)
    result = bytearray()
    for position in range(length):
        votes = Counter(p[position] for p in payloads if position < len(p))
        result.append(votes.most_common(1)[0][0])
    return bytes(result)
