"""Arithmetic in GF(2^8), the field underlying the Reed-Solomon codec.

The field is constructed over the primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d, the polynomial used by most storage
codecs).  Multiplication and division go through exp/log tables, and a small
polynomial toolkit (coefficients stored most-significant first) supports the
encoder and the Berlekamp-Massey decoder.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

_PRIMITIVE_POLY = 0x11D
_FIELD_SIZE = 256


class GF256:
    """GF(2^8) element and polynomial arithmetic with precomputed tables."""

    def __init__(self) -> None:
        self.exp: List[int] = [0] * (_FIELD_SIZE * 2)
        self.log: List[int] = [0] * _FIELD_SIZE
        value = 1
        for power in range(_FIELD_SIZE - 1):
            self.exp[power] = value
            self.log[value] = power
            value <<= 1
            if value & 0x100:
                value ^= _PRIMITIVE_POLY
        # Duplicate the table so products of logs never need a modulo.
        for power in range(_FIELD_SIZE - 1, _FIELD_SIZE * 2):
            self.exp[power] = self.exp[power - (_FIELD_SIZE - 1)]

    # ------------------------------------------------------------------
    # Scalar arithmetic
    # ------------------------------------------------------------------

    @staticmethod
    def add(left: int, right: int) -> int:
        """Addition (= subtraction) in GF(2^8) is XOR."""
        return left ^ right

    def mul(self, left: int, right: int) -> int:
        """Multiply two field elements."""
        if left == 0 or right == 0:
            return 0
        return self.exp[self.log[left] + self.log[right]]

    def div(self, numerator: int, denominator: int) -> int:
        """Divide *numerator* by *denominator*; division by zero raises."""
        if denominator == 0:
            raise ZeroDivisionError("division by zero in GF(256)")
        if numerator == 0:
            return 0
        return self.exp[
            self.log[numerator] - self.log[denominator] + (_FIELD_SIZE - 1)
        ]

    def inverse(self, value: int) -> int:
        """Return the multiplicative inverse; zero has none."""
        if value == 0:
            raise ZeroDivisionError("zero has no inverse in GF(256)")
        return self.exp[(_FIELD_SIZE - 1) - self.log[value]]

    def power(self, base: int, exponent: int) -> int:
        """Return ``base ** exponent`` (exponent may be negative)."""
        if base == 0:
            if exponent <= 0:
                raise ZeroDivisionError("0 cannot be raised to a non-positive power")
            return 0
        log = (self.log[base] * exponent) % (_FIELD_SIZE - 1)
        return self.exp[log]

    # ------------------------------------------------------------------
    # Polynomial arithmetic (coefficient lists, highest degree first)
    # ------------------------------------------------------------------

    def poly_scale(self, poly: Sequence[int], factor: int) -> List[int]:
        """Multiply every coefficient by a scalar."""
        return [self.mul(coeff, factor) for coeff in poly]

    @staticmethod
    def poly_add(left: Sequence[int], right: Sequence[int]) -> List[int]:
        """Add two polynomials (XOR of aligned coefficients)."""
        result = [0] * max(len(left), len(right))
        for index, coeff in enumerate(left):
            result[index + len(result) - len(left)] = coeff
        for index, coeff in enumerate(right):
            result[index + len(result) - len(right)] ^= coeff
        return result

    def poly_mul(self, left: Sequence[int], right: Sequence[int]) -> List[int]:
        """Multiply two polynomials."""
        result = [0] * (len(left) + len(right) - 1)
        for i, coeff_left in enumerate(left):
            if coeff_left == 0:
                continue
            log_left = self.log[coeff_left]
            for j, coeff_right in enumerate(right):
                if coeff_right:
                    result[i + j] ^= self.exp[log_left + self.log[coeff_right]]
        return result

    def poly_eval(self, poly: Sequence[int], point: int) -> int:
        """Evaluate a polynomial at *point* using Horner's scheme."""
        result = 0
        for coeff in poly:
            result = self.mul(result, point) ^ coeff
        return result

    def poly_divmod(
        self, dividend: Sequence[int], divisor: Sequence[int]
    ) -> List[int]:
        """Return the remainder of polynomial division (synthetic division).

        Used by the systematic Reed-Solomon encoder, which only needs the
        remainder.
        """
        output = list(dividend)
        divisor_lead = divisor[0]
        for index in range(len(dividend) - len(divisor) + 1):
            coeff = output[index]
            if coeff == 0:
                continue
            factor = self.div(coeff, divisor_lead)
            for offset, divisor_coeff in enumerate(divisor):
                if divisor_coeff:
                    output[index + offset] ^= self.mul(divisor_coeff, factor)
        remainder_length = len(divisor) - 1
        return output[len(output) - remainder_length :]


_DEFAULT_FIELD: Optional[GF256] = None


def default_field() -> GF256:
    """The shared module-level :class:`GF256` instance.

    GF(2^8) over 0x11d has no free parameters, so every ``GF256()`` builds
    the exact same 768-entry exp/log tables.  Codec objects default to this
    singleton instead of rebuilding them; passing an explicit ``field=``
    still works everywhere for callers that want isolation.
    """
    global _DEFAULT_FIELD
    if _DEFAULT_FIELD is None:
        _DEFAULT_FIELD = GF256()
    return _DEFAULT_FIELD
