"""PCR primer library design (Sections II-E, II-F).

A pair of 20-nt primers is the *key* of the DNA key-value store: all
molecules of one file carry the same pair, and PCR amplifies exactly the
molecules whose ends match a chosen pair.  For this addressing to be
reliable the primers must be mutually distant in Hamming space, have
moderate GC content, and avoid long homopolymers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dna.alphabet import random_sequence, reverse_complement
from repro.dna.distance import hamming_distance
from repro.dna.sequence import gc_content, max_homopolymer


@dataclass(frozen=True)
class PrimerPair:
    """The forward and reverse primers that tag one file's molecules.

    ``forward`` is prepended to every strand; the reverse complement of
    ``reverse`` is appended, so that the physical molecule ends with the
    ``reverse`` primer site on its complementary strand, as in real assays.
    """

    forward: str
    reverse: str

    def tag(self, body: str) -> str:
        """Wrap a strand body with this pair's primer sites."""
        return self.forward + body + reverse_complement(self.reverse)

    def payload_slice(self, strand: str) -> str:
        """Strip this pair's primer sites from a clean, full-length strand."""
        return strand[len(self.forward) : len(strand) - len(self.reverse)]


def _is_acceptable(
    candidate: str,
    accepted: List[str],
    min_distance: int,
    gc_bounds: Tuple[float, float],
    max_run: int,
) -> bool:
    low, high = gc_bounds
    if not low <= gc_content(candidate) <= high:
        return False
    if max_homopolymer(candidate) > max_run:
        return False
    rc = reverse_complement(candidate)
    for existing in accepted:
        if hamming_distance(candidate, existing) < min_distance:
            return False
        if hamming_distance(rc, existing) < min_distance:
            return False
    # A primer must also be distant from its own reverse complement so it
    # cannot anneal to itself.
    return hamming_distance(candidate, rc) >= min_distance


def design_primer_library(
    pairs: int,
    length: int = 20,
    min_distance: int = 8,
    gc_bounds: Tuple[float, float] = (0.4, 0.6),
    max_run: int = 3,
    rng: Optional[random.Random] = None,
    max_attempts: int = 200_000,
) -> List[PrimerPair]:
    """Design *pairs* mutually-compatible primer pairs by rejection sampling.

    Every primer in the library (and every reverse complement) is at least
    *min_distance* Hamming distance from every other, has GC content within
    *gc_bounds* and no homopolymer longer than *max_run*.

    Raises :class:`RuntimeError` when the constraints cannot be satisfied
    within *max_attempts* candidate draws.
    """
    if pairs <= 0:
        raise ValueError(f"pairs must be positive, got {pairs}")
    if min_distance > length:
        raise ValueError("min_distance cannot exceed primer length")
    rng = rng or random.Random()
    accepted: List[str] = []
    attempts = 0
    while len(accepted) < pairs * 2:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not design {pairs} primer pairs within "
                f"{max_attempts} attempts; relax the constraints"
            )
        candidate = random_sequence(length, rng)
        if _is_acceptable(candidate, accepted, min_distance, gc_bounds, max_run):
            accepted.append(candidate)
    return [
        PrimerPair(forward=accepted[2 * i], reverse=accepted[2 * i + 1])
        for i in range(pairs)
    ]
