"""Index-keyed data whitening.

Unconstrained coding relies on randomization to make long homopolymers rare
and to balance GC content on average (Section II-D).  Every molecule's
payload is XORed with a keystream derived from the molecule's index, so the
transform is deterministic, self-inverse, and needs no side information
beyond the index already stored in the strand.
"""

from __future__ import annotations


def _xorshift32(state: int) -> int:
    state ^= (state << 13) & 0xFFFFFFFF
    state ^= state >> 17
    state ^= (state << 5) & 0xFFFFFFFF
    return state & 0xFFFFFFFF


class Randomizer:
    """Deterministic XOR whitening keyed by ``(seed, index)``.

    The keystream is produced by a xorshift32 generator; applying the
    transform twice with the same key is the identity, so the same method
    serves for both randomization and de-randomization.
    """

    def __init__(self, seed: int = 0x5EED5EED):
        if not 0 <= seed < 2**32:
            raise ValueError(f"seed must fit in 32 bits, got {seed}")
        self.seed = seed

    def _keystream(self, index: int, length: int) -> bytes:
        # Mix seed and index through a couple of rounds so that adjacent
        # indices produce unrelated keystreams.
        state = (self.seed ^ (index * 0x9E3779B9)) & 0xFFFFFFFF
        if state == 0:
            state = 0xDEADBEEF
        stream = bytearray()
        while len(stream) < length:
            state = _xorshift32(state)
            stream += state.to_bytes(4, "big")
        return bytes(stream[:length])

    def apply(self, payload: bytes, index: int) -> bytes:
        """Whiten (or un-whiten) *payload* with the keystream for *index*."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        keystream = self._keystream(index, len(payload))
        return bytes(a ^ b for a, b in zip(payload, keystream))
