"""Index-keyed data whitening.

Unconstrained coding relies on randomization to make long homopolymers rare
and to balance GC content on average (Section II-D).  Every molecule's
payload is XORed with a keystream derived from the molecule's index, so the
transform is deterministic, self-inverse, and needs no side information
beyond the index already stored in the strand.
"""

from __future__ import annotations

import numpy as np


def _xorshift32(state: int) -> int:
    state ^= (state << 13) & 0xFFFFFFFF
    state ^= state >> 17
    state ^= (state << 5) & 0xFFFFFFFF
    return state & 0xFFFFFFFF


class Randomizer:
    """Deterministic XOR whitening keyed by ``(seed, index)``.

    The keystream is produced by a xorshift32 generator; applying the
    transform twice with the same key is the identity, so the same method
    serves for both randomization and de-randomization.
    """

    def __init__(self, seed: int = 0x5EED5EED):
        if not 0 <= seed < 2**32:
            raise ValueError(f"seed must fit in 32 bits, got {seed}")
        self.seed = seed

    def _keystream(self, index: int, length: int) -> bytes:
        # Mix seed and index through a couple of rounds so that adjacent
        # indices produce unrelated keystreams.
        state = (self.seed ^ (index * 0x9E3779B9)) & 0xFFFFFFFF
        if state == 0:
            state = 0xDEADBEEF
        stream = bytearray()
        while len(stream) < length:
            state = _xorshift32(state)
            stream += state.to_bytes(4, "big")
        return bytes(stream[:length])

    def apply(self, payload: bytes, index: int) -> bytes:
        """Whiten (or un-whiten) *payload* with the keystream for *index*."""
        if index < 0:
            raise ValueError(f"index must be non-negative, got {index}")
        keystream = self._keystream(index, len(payload))
        return bytes(a ^ b for a, b in zip(payload, keystream))

    # ------------------------------------------------------------------
    # Batched path (one xorshift32 lane per molecule)
    # ------------------------------------------------------------------

    def keystream_batch(self, indices: np.ndarray, length: int) -> np.ndarray:
        """Keystreams for many indices at once: ``(len(indices), length)`` uint8.

        Bit-identical to :meth:`_keystream` per lane — the xorshift32
        recurrence runs on a vector of uint32 states, one per index.
        """
        indices = np.asarray(indices, dtype=np.uint64)
        if indices.size and bool((indices.astype(np.int64) < 0).any()):
            raise ValueError("indices must be non-negative")
        state = (
            (np.uint64(self.seed) ^ (indices * np.uint64(0x9E3779B9)))
            & np.uint64(0xFFFFFFFF)
        ).astype(np.uint32)
        state[state == 0] = np.uint32(0xDEADBEEF)
        words = -(-length // 4)
        stream = np.empty((indices.shape[0], words * 4), dtype=np.uint8)
        for word in range(words):
            state = state ^ (state << np.uint32(13))
            state = state ^ (state >> np.uint32(17))
            state = state ^ (state << np.uint32(5))
            for offset, shift in enumerate((24, 16, 8, 0)):
                stream[:, word * 4 + offset] = (
                    state >> np.uint32(shift)
                ).astype(np.uint8)
        return stream[:, :length]

    def apply_batch(self, payloads: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Whiten a ``(molecules, payload_bytes)`` matrix row-by-row.

        Row ``i`` is XORed with the keystream for ``indices[i]``; equivalent
        to calling :meth:`apply` per row.
        """
        payloads = np.asarray(payloads, dtype=np.uint8)
        if payloads.ndim != 2:
            raise ValueError(f"expected a 2-D payload matrix, got {payloads.shape}")
        if payloads.shape[0] != np.asarray(indices).shape[0]:
            raise ValueError("one index per payload row required")
        return payloads ^ self.keystream_batch(indices, payloads.shape[1])
