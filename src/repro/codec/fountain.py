"""A DNA-Fountain-style Luby Transform codec (Erlich & Zielinski, 2017).

The toolkit's default architecture is fixed-rate (Reed-Solomon over a
molecule matrix).  DNA Fountain is the best-known *rateless* alternative:
the file is cut into equal blocks, and each molecule carries a *droplet* —
the XOR of a pseudo-random subset of blocks, determined entirely by a seed
stored in the molecule.  Any sufficiently large subset of droplets decodes
the file via belief-propagation peeling, which makes the scheme naturally
robust to molecule dropout: you simply synthesize a few percent more
droplets than blocks.

This module provides the codec level (blocks <-> droplets <-> strands);
pair it with the toolkit's primers/simulation/clustering/reconstruction
stages to build a full fountain pipeline.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.codec.bits import bases_to_bytes, bytes_to_bases

_SEED_BYTES = 4
_CRC_BYTES = 2


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE, used to screen damaged droplets.

    A droplet whose strand was mis-reconstructed would otherwise poison
    the XOR peeling; DNA Fountain likewise protects every oligo with an
    inner code.
    """
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def robust_soliton(num_blocks: int, c: float = 0.05, delta: float = 0.05) -> List[float]:
    """The robust soliton degree distribution over 1..num_blocks."""
    if num_blocks <= 0:
        raise ValueError("num_blocks must be positive")
    k = num_blocks
    ripple = c * math.log(k / delta) * math.sqrt(k)
    ripple = max(ripple, 1.0)
    pivot = max(1, min(k, int(round(k / ripple))))

    ideal = [0.0] * (k + 1)
    ideal[1] = 1.0 / k
    for degree in range(2, k + 1):
        ideal[degree] = 1.0 / (degree * (degree - 1))

    extra = [0.0] * (k + 1)
    for degree in range(1, pivot):
        extra[degree] = ripple / (degree * k)
    if pivot <= k:
        extra[pivot] = ripple * math.log(ripple / delta) / k
        extra[pivot] = max(extra[pivot], 0.0)

    weights = [ideal[d] + extra[d] for d in range(k + 1)]
    total = sum(weights)
    return [w / total for w in weights]


@dataclass(frozen=True)
class Droplet:
    """One fountain symbol: a seed and the XOR of its chosen blocks."""

    seed: int
    payload: bytes


class FountainCodec:
    """Rateless LT coding between byte blocks and DNA strands.

    Parameters
    ----------
    block_bytes:
        Size of every data block (and droplet payload).
    c, delta:
        Robust soliton parameters; the defaults follow DNA Fountain.
    """

    def __init__(self, block_bytes: int = 32, c: float = 0.05, delta: float = 0.05):
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.block_bytes = block_bytes
        self.c = c
        self.delta = delta

    # ------------------------------------------------------------------
    # Blocks
    # ------------------------------------------------------------------

    def split_blocks(self, data: bytes) -> List[bytes]:
        """Length-prefix and zero-pad *data* into equal blocks."""
        framed = len(data).to_bytes(8, "big") + data
        padding = (-len(framed)) % self.block_bytes
        framed += bytes(padding)
        return [
            framed[start : start + self.block_bytes]
            for start in range(0, len(framed), self.block_bytes)
        ]

    @staticmethod
    def join_blocks(blocks: Sequence[bytes]) -> bytes:
        """Invert :meth:`split_blocks`."""
        framed = b"".join(blocks)
        length = int.from_bytes(framed[:8], "big")
        if length > len(framed) - 8:
            raise ValueError("corrupt length prefix in fountain blocks")
        return framed[8 : 8 + length]

    # ------------------------------------------------------------------
    # Droplets
    # ------------------------------------------------------------------

    def _blocks_for_seed(self, seed: int, num_blocks: int) -> List[int]:
        rng = random.Random(seed)
        distribution = robust_soliton(num_blocks, self.c, self.delta)
        degree = rng.choices(range(len(distribution)), weights=distribution)[0]
        degree = max(1, degree)
        return rng.sample(range(num_blocks), min(degree, num_blocks))

    def make_droplet(self, blocks: Sequence[bytes], seed: int) -> Droplet:
        """XOR the seed-chosen blocks into one droplet."""
        if not 0 <= seed < 256**_SEED_BYTES:
            raise ValueError(f"seed must fit in {_SEED_BYTES} bytes")
        chosen = self._blocks_for_seed(seed, len(blocks))
        payload = bytearray(self.block_bytes)
        for block_index in chosen:
            for position, value in enumerate(blocks[block_index]):
                payload[position] ^= value
        return Droplet(seed=seed, payload=bytes(payload))

    def encode(self, data: bytes, overhead: float = 1.6, start_seed: int = 1) -> List[Droplet]:
        """Produce ``ceil(overhead * num_blocks)`` droplets for *data*."""
        if overhead < 1.0:
            raise ValueError("overhead must be at least 1.0")
        blocks = self.split_blocks(data)
        count = math.ceil(overhead * len(blocks))
        return [
            self.make_droplet(blocks, seed)
            for seed in range(start_seed, start_seed + count)
        ]

    def decode(self, droplets: Sequence[Droplet], num_blocks: int) -> bytes:
        """Peel the droplets back into the original data.

        Raises :class:`ValueError` when the droplets are insufficient to
        resolve every block.
        """
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        pending: List[Set[int]] = []
        payloads: List[bytearray] = []
        for droplet in droplets:
            if len(droplet.payload) != self.block_bytes:
                continue  # damaged droplet: wrong payload size
            pending.append(set(self._blocks_for_seed(droplet.seed, num_blocks)))
            payloads.append(bytearray(droplet.payload))

        solved: Dict[int, bytes] = {}
        progress = True
        while progress and len(solved) < num_blocks:
            progress = False
            for index, members in enumerate(pending):
                if not members:
                    continue
                # Subtract already-solved blocks from this droplet.
                for block_index in list(members):
                    if block_index in solved:
                        block = solved[block_index]
                        payload = payloads[index]
                        for position, value in enumerate(block):
                            payload[position] ^= value
                        members.discard(block_index)
                if len(members) == 1:
                    block_index = members.pop()
                    solved[block_index] = bytes(payloads[index])
                    progress = True
        if len(solved) < num_blocks:
            raise ValueError(
                f"insufficient droplets: solved {len(solved)}/{num_blocks} blocks"
            )
        return self.join_blocks([solved[i] for i in range(num_blocks)])

    # ------------------------------------------------------------------
    # Strands
    # ------------------------------------------------------------------

    def droplet_to_strand(self, droplet: Droplet) -> str:
        """Serialize ``seed || payload || crc16`` as DNA (4 nt per byte)."""
        raw = droplet.seed.to_bytes(_SEED_BYTES, "big") + droplet.payload
        raw += crc16(raw).to_bytes(_CRC_BYTES, "big")
        return bytes_to_bases(raw)

    def strand_to_droplet(self, strand: str) -> Droplet:
        """Invert :meth:`droplet_to_strand`, rejecting damaged droplets.

        Raises :class:`ValueError` on length or checksum mismatch; callers
        simply discard such strands — the fountain's surplus covers them.
        """
        raw = bases_to_bytes(strand)
        if len(raw) != _SEED_BYTES + self.block_bytes + _CRC_BYTES:
            raise ValueError(
                f"strand decodes to {len(raw)} bytes, expected "
                f"{_SEED_BYTES + self.block_bytes + _CRC_BYTES}"
            )
        body, checksum = raw[:-_CRC_BYTES], raw[-_CRC_BYTES:]
        if crc16(body) != int.from_bytes(checksum, "big"):
            raise ValueError("droplet checksum mismatch (damaged strand)")
        return Droplet(
            seed=int.from_bytes(body[:_SEED_BYTES], "big"),
            payload=body[_SEED_BYTES:],
        )

    @property
    def strand_nt(self) -> int:
        """Nucleotides per droplet strand (seed + payload + checksum)."""
        return (_SEED_BYTES + self.block_bytes + _CRC_BYTES) * 4
