"""Columnar read-pool storage: one flat byte array for a whole read set.

The pipeline's hot stages (signature screening, gray-zone edit verdicts,
consensus voting) all iterate over *every* read.  Keeping reads as a Python
``list[str]`` makes each of those passes pay per-object interpreter tax; the
:class:`ReadPool` instead stores the pool as

* ``data`` — every read's bytes concatenated into one ``uint8`` array, and
* ``offsets`` — ``int64`` prefix offsets (``n + 1`` entries) delimiting reads,

which is exactly the radix layout :func:`repro.dna.qgram` batch signatures
already build internally.  Base codes (A=0, C=1, G=2, T=3 via
``_BASE_CODES``; 255 marks anything off the alphabet) are derived lazily and
cached, so batched kernels (:mod:`repro.dna.distance_batch`, matrix
consensus) can gather lanes without re-encoding, while ``from_strings`` /
``to_strings`` round-trip losslessly for arbitrary latin-1 payloads.

A :class:`ReadPool` is a ``Sequence[str]`` — ``len``, indexing, and slicing
behave like the list of reads it replaces — so it drops into every existing
API (clustering, :class:`repro.parallel.WorkerPool` chunking, provenance)
without adapters.  :meth:`ReadPool.view` produces a zero-copy
:class:`ReadPoolView` over a subset of reads (e.g. one cluster), which
pickles as a compact standalone pool so process fan-out ships only the reads
it needs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

#: code used for padding positions in dense per-cluster matrices; distinct
#: from the 0..3 base codes and from the 255 non-ACGT sentinel.
PAD_CODE = 4

#: sentinel marking bytes outside ACGT in :attr:`ReadPool.codes`.
NON_ACGT_CODE = 255


def _base_codes_table() -> np.ndarray:
    # Import deferred: qgram imports ReadPool for its batch fast path.
    from repro.dna.qgram import _BASE_CODES

    return _BASE_CODES


class ReadPool(Sequence[str]):
    """Immutable columnar pool of reads (flat bytes + offsets)."""

    __slots__ = ("data", "offsets", "_codes", "_strings", "_acgt_per_read")

    def __init__(self, data: np.ndarray, offsets: np.ndarray) -> None:
        self.data = np.ascontiguousarray(data, dtype=np.uint8)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size == 0:
            raise ValueError("offsets must be a non-empty 1-d array")
        if self.offsets[0] != 0 or self.offsets[-1] != self.data.size:
            raise ValueError("offsets must start at 0 and end at len(data)")
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        self._codes: np.ndarray | None = None
        self._strings: List[str] | None = None
        self._acgt_per_read: np.ndarray | None = None

    # -- construction -------------------------------------------------

    @classmethod
    def from_strings(cls, reads: Iterable[str]) -> "ReadPool":
        """Build a pool from reads; lossless for any latin-1 text.

        Raises :class:`ValueError` when a read contains characters outside
        latin-1 (no single-byte encoding exists for it).
        """
        materialised = list(reads)
        try:
            chunks = [read.encode("latin-1") for read in materialised]
        except UnicodeEncodeError as exc:
            raise ValueError(
                "ReadPool only stores single-byte (latin-1) strings"
            ) from exc
        offsets = np.zeros(len(chunks) + 1, dtype=np.int64)
        if chunks:
            np.cumsum([len(chunk) for chunk in chunks], out=offsets[1:])
        data = np.frombuffer(b"".join(chunks), dtype=np.uint8).copy()
        pool = cls(data, offsets)
        pool._strings = [str(read) for read in materialised]
        return pool

    # -- derived columns ----------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """Base codes (0..3, 255 = non-ACGT) for the flat data, cached."""
        if self._codes is None:
            self._codes = _base_codes_table()[self.data]
        return self._codes

    @property
    def lengths(self) -> np.ndarray:
        """Per-read lengths as ``int64``."""
        return np.diff(self.offsets)

    @property
    def acgt_per_read(self) -> np.ndarray:
        """Boolean per read: ``True`` when the read is pure ACGT."""
        if self._acgt_per_read is None:
            bad = np.concatenate(
                ([0], np.cumsum((self.codes == NON_ACGT_CODE).astype(np.int64)))
            )
            self._acgt_per_read = (bad[self.offsets[1:]] - bad[self.offsets[:-1]]) == 0
        return self._acgt_per_read

    @property
    def is_acgt(self) -> bool:
        """``True`` when every read in the pool is pure ACGT."""
        return bool(self.acgt_per_read.all())

    # -- Sequence[str] protocol ---------------------------------------

    def __len__(self) -> int:
        return self.offsets.size - 1

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                return [self[position] for position in range(start, stop, step)]
            offsets = self.offsets[start : stop + 1] - self.offsets[start]
            data = self.data[self.offsets[start] : self.offsets[stop]]
            sliced = ReadPool(data, offsets)
            if self._strings is not None:
                sliced._strings = self._strings[start:stop]
            return sliced
        position = int(index)
        if position < 0:
            position += len(self)
        if not 0 <= position < len(self):
            raise IndexError("read index out of range")
        if self._strings is not None:
            return self._strings[position]
        lo, hi = self.offsets[position], self.offsets[position + 1]
        return self.data[lo:hi].tobytes().decode("latin-1")

    def to_strings(self) -> List[str]:
        """All reads as Python strings (cached after first call)."""
        if self._strings is None:
            text = self.data.tobytes().decode("latin-1")
            offsets = self.offsets
            self._strings = [
                text[offsets[index] : offsets[index + 1]]
                for index in range(len(self))
            ]
        return self._strings

    # -- subsetting ---------------------------------------------------

    def subset(self, indices: Sequence[int]) -> "ReadPool":
        """Compact standalone pool holding ``reads[i] for i in indices``."""
        index_array = np.asarray(indices, dtype=np.int64)
        lengths = self.lengths[index_array]
        offsets = np.zeros(index_array.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        data = np.empty(int(offsets[-1]), dtype=np.uint8)
        starts = self.offsets[index_array]
        for position in range(index_array.size):
            length = lengths[position]
            lo = offsets[position]
            data[lo : lo + length] = self.data[
                starts[position] : starts[position] + length
            ]
        return ReadPool(data, offsets)

    def view(self, indices: Sequence[int]) -> "ReadPoolView":
        """Zero-copy view of a subset of reads (e.g. one cluster)."""
        return ReadPoolView(self, np.asarray(indices, dtype=np.int64))

    def padded_codes(self, pad: int = PAD_CODE) -> "tuple[np.ndarray, np.ndarray]":
        """Dense ``(n, max_len)`` code matrix padded with *pad*, plus lengths."""
        return _padded_codes(self.codes, self.offsets[:-1], self.lengths, pad)

    def __getstate__(self):
        # Ship only the columnar arrays; caches (codes, strings, flags) are
        # cheap to rebuild and would bloat worker-chunk pickles.
        return (self.data, self.offsets)

    def __setstate__(self, state) -> None:
        self.data, self.offsets = state
        self._codes = None
        self._strings = None
        self._acgt_per_read = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReadPool(reads={len(self)}, bytes={self.data.size})"


def _padded_codes(
    codes: np.ndarray, starts: np.ndarray, lengths: np.ndarray, pad: int
) -> "tuple[np.ndarray, np.ndarray]":
    count = starts.size
    width = int(lengths.max()) if count else 0
    matrix = np.full((count, width), pad, dtype=np.uint8)
    if width and codes.size:
        columns = np.arange(width)
        valid = columns[None, :] < lengths[:, None]
        matrix[valid] = codes[(starts[:, None] + columns[None, :])[valid]]
    return matrix, lengths.copy()


def _rebuild_view(pool: ReadPool) -> "ReadPoolView":
    return ReadPoolView(pool, np.arange(len(pool), dtype=np.int64))


class ReadPoolView(Sequence[str]):
    """Lazy ``Sequence[str]`` over a subset of a :class:`ReadPool`.

    Holds only the parent pool reference and an index array, so building one
    per cluster is O(cluster size) ints — no string copies.  Pickling
    compacts the view into a standalone pool carrying just its own reads, so
    worker fan-out does not ship the whole parent pool per cluster.
    """

    __slots__ = ("pool", "indices")

    def __init__(self, pool: ReadPool, indices: np.ndarray) -> None:
        self.pool = pool
        self.indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return self.indices.size

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            return ReadPoolView(self.pool, self.indices[index])
        return self.pool[int(self.indices[index])]

    @property
    def lengths(self) -> np.ndarray:
        return self.pool.lengths[self.indices]

    @property
    def is_acgt(self) -> bool:
        return bool(self.pool.acgt_per_read[self.indices].all())

    def to_strings(self) -> List[str]:
        return [self.pool[int(position)] for position in self.indices]

    def padded_codes(self, pad: int = PAD_CODE) -> "tuple[np.ndarray, np.ndarray]":
        return _padded_codes(
            self.pool.codes,
            self.pool.offsets[:-1][self.indices],
            self.pool.lengths[self.indices],
            pad,
        )

    def __reduce__(self):
        return (_rebuild_view, (self.pool.subset(self.indices),))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReadPoolView(reads={len(self)})"


def as_read_pool(reads: Sequence[str]) -> "ReadPool | None":
    """Coerce *reads* to a :class:`ReadPool`, or ``None`` when impossible."""
    if isinstance(reads, ReadPool):
        return reads
    if isinstance(reads, ReadPoolView):
        return reads.pool.subset(reads.indices)
    try:
        return ReadPool.from_strings(reads)
    except ValueError:
        return None
