"""String distance metrics: the pipeline's hottest inner loops.

Levenshtein (edit) distance is the similarity metric of record for DNA-read
clustering (Section VI), but it is expensive; the clustering module therefore
gates edit-distance calls behind cheap signature comparisons and, when it
does call :func:`levenshtein_distance`, passes a *bound* so the kernel can
bail out early.

Three kernels live here, from slowest to fastest:

* :func:`levenshtein_reference` — the textbook O(nm) dynamic program.  It
  exists as the oracle the fast kernels are property-tested against and is
  never called on a hot path.
* :func:`banded_levenshtein` — Ukkonen's diagonal band: only cells within
  ``bound`` of the main diagonal are filled, giving O(n * bound) work and an
  early exit as soon as a full row exceeds the bound.
* :func:`myers_levenshtein` — Myers' bit-parallel algorithm (Myers 1999, in
  Hyyrö's formulation): the DP column is packed into the bits of a single
  Python integer, advancing a whole column of cells per word-sized bitwise
  operation.  Python integers are arbitrary precision, so patterns longer
  than 64 characters are handled by the same code path — CPython carries
  the extra blocks in its C big-int limbs, which is far faster than any
  explicit Python-level blocking loop.  A bounded call additionally bails
  out as soon as the best still-reachable final score exceeds the bound.

:func:`levenshtein_distance` is the public dispatcher every caller goes
through (clustering edit verdicts, threshold auto-configuration,
reconstruction quality scoring); it picks the bit-parallel kernel and keeps
the historical ``bound`` semantics (values above the bound are reported as
``bound + 1``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def hamming_distance(left: str, right: str) -> int:
    """Return the number of positions at which two equal-length strings differ.

    Raises :class:`ValueError` when the lengths differ, because Hamming
    distance is undefined there (callers that want a length-tolerant metric
    should use :func:`levenshtein_distance`).
    """
    if len(left) != len(right):
        raise ValueError(
            f"hamming_distance requires equal lengths, got {len(left)} and {len(right)}"
        )
    return sum(1 for a, b in zip(left, right) if a != b)


# ----------------------------------------------------------------------
# Reference kernel (oracle)
# ----------------------------------------------------------------------


def levenshtein_reference(left: str, right: str) -> int:
    """Textbook O(nm) edit distance; the oracle for the fast kernels.

    Kept deliberately naive — property tests compare the bit-parallel and
    banded kernels against this implementation, so it must stay obviously
    correct rather than fast.
    """
    previous = list(range(len(right) + 1))
    for row, char_left in enumerate(left, start=1):
        current = [row]
        for col, char_right in enumerate(right, start=1):
            current.append(
                min(
                    previous[col] + 1,
                    current[col - 1] + 1,
                    previous[col - 1] + (char_left != char_right),
                )
            )
        previous = current
    return previous[-1]


# ----------------------------------------------------------------------
# Myers bit-parallel kernel
# ----------------------------------------------------------------------


def _pattern_masks(pattern: str) -> Dict[str, int]:
    """Per-character match bit-masks (``Peq`` in Myers' paper).

    Bit *i* of ``masks[c]`` is set when ``pattern[i] == c``.  A plain dict
    keyed by the character makes the kernel alphabet-agnostic: DNA, IUPAC
    ambiguity codes, or arbitrary unicode all work without a translation
    table.
    """
    masks: Dict[str, int] = {}
    bit = 1
    for char in pattern:
        masks[char] = masks.get(char, 0) | bit
        bit <<= 1
    return masks


def _myers_columns(pattern: str, text: str, masks: Optional[Dict[str, int]] = None):
    """Yield ``D[len(pattern)][j]`` for ``j = 1 .. len(text)``.

    One iteration advances the whole DP column with a constant number of
    bitwise operations on ``len(pattern)``-bit integers (Hyyrö's variant of
    Myers' algorithm).  The generator form lets both the full-distance and
    the best-prefix consumers share the kernel.  *masks* lets callers that
    sweep one pattern against many texts pass :func:`_pattern_masks` output
    computed once instead of re-deriving it per text.
    """
    length = len(pattern)
    if masks is None:
        masks = _pattern_masks(pattern)
    mask = (1 << length) - 1
    high = 1 << (length - 1)
    vertical_pos = mask  # VP: every cell starts one above its upper neighbour
    vertical_neg = 0  # VN
    score = length
    for char in text:
        matches = masks.get(char, 0)
        diag_zero = (
            (((matches & vertical_pos) + vertical_pos) ^ vertical_pos)
            | matches
            | vertical_neg
        )
        horizontal_pos = vertical_neg | (~(diag_zero | vertical_pos) & mask)
        horizontal_neg = vertical_pos & diag_zero
        if horizontal_pos & high:
            score += 1
        elif horizontal_neg & high:
            score -= 1
        shifted_pos = ((horizontal_pos << 1) | 1) & mask
        shifted_neg = (horizontal_neg << 1) & mask
        vertical_pos = shifted_neg | (~(diag_zero | shifted_pos) & mask)
        vertical_neg = shifted_pos & diag_zero
        yield score


def myers_levenshtein(left: str, right: str, bound: Optional[int] = None) -> int:
    """Bit-parallel edit distance; the production kernel.

    With *bound*, iteration stops as soon as no suffix can bring the final
    score back within the bound (the score can drop by at most one per
    remaining text character), and any value above the bound is reported as
    ``bound + 1``.
    """
    # The shorter string becomes the bit-packed pattern: fewer bits per word
    # and the text loop runs over the longer string either way.
    if len(left) < len(right):
        left, right = right, left
    if not right:
        distance = len(left)
        if bound is not None and distance > bound:
            return bound + 1
        return distance
    remaining = len(left)
    score = len(right)
    for score in _myers_columns(right, left):
        remaining -= 1
        if bound is not None and score - remaining > bound:
            return bound + 1
    if bound is not None and score > bound:
        return bound + 1
    return score


def myers_levenshtein_fixed(
    pattern: str,
    text: str,
    bound: Optional[int] = None,
    masks: Optional[Dict[str, int]] = None,
) -> int:
    """Bounded edit distance with a *fixed* pattern and reusable masks.

    Semantically identical to :func:`levenshtein_distance` (same clamp to
    ``bound + 1``, same shortcuts), but never swaps its arguments: the
    pattern stays the pattern, so callers comparing one representative
    against many candidates can build :func:`_pattern_masks` once and pass
    it in, skipping the per-pair mask derivation.  Levenshtein distance is
    symmetric, so skipping the shorter-side swap changes cost, not results.
    """
    if bound is not None and bound < 0:
        raise ValueError(f"bound must be non-negative, got {bound}")
    if pattern == text:
        return 0
    if bound is not None and abs(len(pattern) - len(text)) > bound:
        return bound + 1
    if not pattern:
        distance = len(text)
    elif not text:
        distance = len(pattern)
    else:
        remaining = len(text)
        score = len(pattern)
        for score in _myers_columns(pattern, text, masks=masks):
            remaining -= 1
            if bound is not None and score - remaining > bound:
                return bound + 1
        distance = score
    if bound is not None and distance > bound:
        return bound + 1
    return distance


# ----------------------------------------------------------------------
# Banded (Ukkonen) kernel
# ----------------------------------------------------------------------


def banded_levenshtein(left: str, right: str, bound: int) -> int:
    """Edit distance restricted to a diagonal band of half-width *bound*.

    Any value larger than *bound* is reported as ``bound + 1``.  The band
    plus the per-row early exit give O(len * bound) worst-case work, which
    made this the production kernel before the bit-parallel one; it is kept
    as an independently-implemented cross-check and for callers that want
    band semantics explicitly.
    """
    if bound < 0:
        raise ValueError(f"bound must be non-negative, got {bound}")
    if left == right:
        return 0
    if len(left) < len(right):
        left, right = right, left
    len_long, len_short = len(left), len(right)
    if len_long - len_short > bound:
        return bound + 1
    if len_short == 0:
        return len_long if len_long <= bound else bound + 1

    previous = list(range(len_short + 1))
    current = [0] * (len_short + 1)
    for row in range(1, len_long + 1):
        col_start = max(1, row - bound)
        col_end = min(len_short, row + bound)
        # Seed cells just outside the band with a value that cannot win.
        if col_start > 1:
            current[col_start - 1] = bound + 1
        current[0] = row
        char_long = left[row - 1]
        best_in_row = current[0]
        for col in range(col_start, col_end + 1):
            cost = 0 if char_long == right[col - 1] else 1
            value = min(
                previous[col] + 1,  # deletion
                current[col - 1] + 1,  # insertion
                previous[col - 1] + cost,  # substitution / match
            )
            current[col] = value
            if value < best_in_row:
                best_in_row = value
        if col_end < len_short:
            current[col_end + 1] = bound + 1
        if best_in_row > bound:
            return bound + 1
        previous, current = current, previous
    distance = previous[len_short]
    return distance if distance <= bound else bound + 1


# ----------------------------------------------------------------------
# Public dispatcher
# ----------------------------------------------------------------------


def levenshtein_distance(left: str, right: str, bound: Optional[int] = None) -> int:
    """Return the edit distance between two strings.

    Parameters
    ----------
    left, right:
        The strings to compare.
    bound:
        Optional inclusive upper bound.  When given, any value larger than
        *bound* is reported as ``bound + 1`` and the kernel bails out as
        soon as the bound is provably exceeded.  This is how the clustering
        module avoids paying the full cost for obviously-dissimilar reads.

    The work is done by the Myers bit-parallel kernel
    (:func:`myers_levenshtein`); see the module docstring for the kernel
    menu and :func:`levenshtein_reference` for the oracle.
    """
    if bound is not None and bound < 0:
        raise ValueError(f"bound must be non-negative, got {bound}")
    if left == right:
        return 0
    if bound is not None and abs(len(left) - len(right)) > bound:
        return bound + 1
    return myers_levenshtein(left, right, bound=bound)


def prefix_edit_distance(pattern: str, text: str) -> Tuple[int, int]:
    """Best edit distance of *pattern* against any prefix of *text*.

    Returns ``(distance, end)`` where ``text[:end]`` is the prefix that
    matches *pattern* with the fewest edits (ties prefer the longest
    prefix).  Used to locate primer sites at read boundaries, where indels
    make fixed-width comparisons unreliable.

    Runs on the bit-parallel kernel: the scores Myers' algorithm tracks per
    text position are exactly the DP table's last row — the distance of the
    full pattern against every prefix of the text.
    """
    if not pattern:
        return 0, 0
    best_distance = len(pattern)  # the empty prefix: delete the whole pattern
    best_end = 0
    for end, score in enumerate(_myers_columns(pattern, text), start=1):
        # ">= " (not ">") pins the documented tie-break: among equally good
        # prefixes the longest wins, so a trailing match extends the site.
        if best_distance >= score:
            best_distance = score
            best_end = end
    return best_distance, best_end


def levenshtein_row(pattern: str, text: str) -> List[int]:
    """The DP table's last row: ``pattern`` vs every prefix of ``text``.

    ``row[j]`` is the edit distance between the full pattern and
    ``text[:j]``.  Exposed for diagnostics and tests; computed with the
    same bit-parallel kernel as :func:`prefix_edit_distance`.
    """
    if not pattern:
        return list(range(len(text) + 1))
    row = [len(pattern)]
    row.extend(_myers_columns(pattern, text))
    return row
