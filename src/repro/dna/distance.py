"""String distance metrics.

Levenshtein (edit) distance is the similarity metric of record for DNA-read
clustering (Section VI), but it is expensive; the clustering module therefore
gates edit-distance calls behind cheap signature comparisons and, when it
does call :func:`levenshtein_distance`, passes a *bound* so the banded
(Ukkonen) variant can bail out early.
"""

from __future__ import annotations

from typing import Optional, Tuple


def hamming_distance(left: str, right: str) -> int:
    """Return the number of positions at which two equal-length strings differ.

    Raises :class:`ValueError` when the lengths differ, because Hamming
    distance is undefined there (callers that want a length-tolerant metric
    should use :func:`levenshtein_distance`).
    """
    if len(left) != len(right):
        raise ValueError(
            f"hamming_distance requires equal lengths, got {len(left)} and {len(right)}"
        )
    return sum(1 for a, b in zip(left, right) if a != b)


def prefix_edit_distance(pattern: str, text: str) -> Tuple[int, int]:
    """Best edit distance of *pattern* against any prefix of *text*.

    Returns ``(distance, end)`` where ``text[:end]`` is the prefix that
    matches *pattern* with the fewest edits (ties prefer the longest
    prefix).  Used to locate primer sites at read boundaries, where indels
    make fixed-width comparisons unreliable.
    """
    if not pattern:
        return 0, 0
    previous = list(range(len(text) + 1))
    current = [0] * (len(text) + 1)
    for row in range(1, len(pattern) + 1):
        current[0] = row
        pattern_char = pattern[row - 1]
        for col in range(1, len(text) + 1):
            cost = 0 if pattern_char == text[col - 1] else 1
            current[col] = min(
                previous[col] + 1,
                current[col - 1] + 1,
                previous[col - 1] + cost,
            )
        previous, current = current, previous
    best_end = max(range(len(text) + 1), key=lambda col: (-previous[col], col))
    return previous[best_end], best_end


def levenshtein_distance(left: str, right: str, bound: Optional[int] = None) -> int:
    """Return the edit distance between two strings.

    Parameters
    ----------
    left, right:
        The strings to compare.
    bound:
        Optional inclusive upper bound.  When given, the computation is
        restricted to a diagonal band of width ``2 * bound + 1`` (Ukkonen's
        optimisation) and any value larger than *bound* is reported as
        ``bound + 1``.  This is how the clustering module avoids paying the
        full quadratic cost for obviously-dissimilar reads.
    """
    if left == right:
        return 0
    # Keep the shorter string in the inner loop.
    if len(left) < len(right):
        left, right = right, left
    len_long, len_short = len(left), len(right)
    if bound is not None:
        if bound < 0:
            raise ValueError(f"bound must be non-negative, got {bound}")
        if len_long - len_short > bound:
            return bound + 1
    if len_short == 0:
        return len_long

    previous = list(range(len_short + 1))
    current = [0] * (len_short + 1)
    for row in range(1, len_long + 1):
        if bound is None:
            col_start, col_end = 1, len_short
        else:
            col_start = max(1, row - bound)
            col_end = min(len_short, row + bound)
            # Seed cells just outside the band with a value that cannot win.
            if col_start > 1:
                current[col_start - 1] = bound + 1
        current[0] = row
        char_long = left[row - 1]
        best_in_row = current[0] if bound is not None else 0
        for col in range(col_start, col_end + 1):
            cost = 0 if char_long == right[col - 1] else 1
            value = min(
                previous[col] + 1,  # deletion
                current[col - 1] + 1,  # insertion
                previous[col - 1] + cost,  # substitution / match
            )
            current[col] = value
            if bound is not None and value < best_in_row:
                best_in_row = value
        if bound is not None:
            if col_end < len_short:
                current[col_end + 1] = bound + 1
            if best_in_row > bound:
                return bound + 1
        previous, current = current, previous
    distance = previous[len_short]
    if bound is not None and distance > bound:
        return bound + 1
    return distance
