"""q-gram and w-gram signatures for cheap read similarity tests.

The clustering module (Section VI of the paper) avoids expensive edit
distance computations by first comparing *signatures* of cluster
representatives:

* a **q-gram signature** (baseline, Rashtchian et al.) is a binary vector
  marking which of a random set of q-grams occur in the read; signatures are
  compared with Hamming distance;
* a **w-gram signature** (the paper's novel variant) records the *position of
  the first occurrence* of each gram instead of mere presence, and signatures
  are compared with the L1 norm.  This spreads dissimilar reads further
  apart, cutting down the number of edit-distance calls the clusterer must
  fall back to.

Signature construction is vectorised: when every gram has the same length
and read + grams are plain ACGT, the read is radix-encoded once and every
window becomes a base-4 integer, so one :func:`numpy.isin` (presence) or one
stable argsort + :func:`numpy.searchsorted` (first occurrence) answers all
grams at once instead of one Python ``str.find`` per gram.  Reads or gram
sets outside that fast path (mixed gram lengths, non-ACGT characters) fall
back to the scalar loop with identical results.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import numpy as np

from repro.dna.alphabet import BASES

#: byte value -> base code (0..3); 255 marks characters outside ACGT
_BASE_CODES = np.full(256, 255, dtype=np.uint8)
for _code, _base in enumerate(BASES):
    _BASE_CODES[ord(_base)] = _code


def sample_grams(
    count: int, gram_length: int, rng: Optional[random.Random] = None
) -> List[str]:
    """Return *count* distinct random grams of the given length.

    Raises :class:`ValueError` when more distinct grams are requested than
    exist (``4 ** gram_length``).
    """
    if gram_length <= 0:
        raise ValueError(f"gram_length must be positive, got {gram_length}")
    if count > 4**gram_length:
        raise ValueError(
            f"cannot sample {count} distinct grams of length {gram_length}"
        )
    rng = rng or random.Random()
    grams = set()
    while len(grams) < count:
        grams.add("".join(rng.choice(BASES) for _ in range(gram_length)))
    return sorted(grams)


def _encode_acgt(sequence: str) -> Optional[np.ndarray]:
    """Base codes (0..3) of *sequence*, or ``None`` off the ACGT alphabet."""
    try:
        raw = sequence.encode("ascii")
    except UnicodeEncodeError:
        return None
    codes = _BASE_CODES[np.frombuffer(raw, dtype=np.uint8)]
    if codes.size and codes.max(initial=0) == 255:
        return None
    return codes


def _window_values(codes: np.ndarray, gram_length: int) -> np.ndarray:
    """Base-4 integer value of every length-``gram_length`` window."""
    windows = codes.shape[0] - gram_length + 1
    if windows <= 0:
        return np.empty(0, dtype=np.int64)
    values = np.zeros(windows, dtype=np.int64)
    for offset in range(gram_length):
        values *= 4
        values += codes[offset : offset + windows]
    return values


class _GramSet:
    """Shared fast-path machinery of the two signature flavours."""

    def __init__(self, grams: Sequence[str]):
        if not grams:
            raise ValueError("signature requires at least one gram")
        self.grams = list(grams)
        # The vectorised path needs uniform-length, pure-ACGT grams; any
        # other gram set silently keeps the scalar path.
        self._gram_length = len(self.grams[0])
        encoded = []
        for gram in self.grams:
            codes = _encode_acgt(gram) if len(gram) == self._gram_length else None
            if codes is None or codes.size == 0:
                encoded = None
                break
            encoded.append(codes)
        if encoded is None:
            self._gram_values: Optional[np.ndarray] = None
            self._sort_perm: Optional[np.ndarray] = None
            self._sorted_values: Optional[np.ndarray] = None
        else:
            stacked = np.stack(encoded).astype(np.int64)
            weights = 4 ** np.arange(self._gram_length - 1, -1, -1, dtype=np.int64)
            self._gram_values = stacked @ weights
            # Grams are distinct, so their values are too; sorting them once
            # here turns every per-read lookup into a single searchsorted.
            self._sort_perm = np.argsort(self._gram_values).astype(np.int64)
            self._sorted_values = self._gram_values[self._sort_perm]

    def _read_windows(self, sequence: str) -> Optional[np.ndarray]:
        """Window values of *sequence*, or ``None`` when off the fast path."""
        if self._gram_values is None:
            return None
        codes = _encode_acgt(sequence)
        if codes is None:
            return None
        return _window_values(codes, self._gram_length)

    def _gram_hits(self, windows: np.ndarray):
        """``(window_index, original_gram_index)`` of every gram occurrence."""
        slots = np.searchsorted(self._sorted_values, windows)
        slots = np.minimum(slots, self._sorted_values.shape[0] - 1)
        hits = self._sorted_values[slots] == windows
        return np.nonzero(hits)[0], self._sort_perm[slots[hits]]

    def _batch_hits(self, sequences: Sequence[str]):
        """Gram occurrences of a whole batch in one vectorised pass.

        Returns ``(read_ids, window_positions, gram_indices, lengths)`` —
        one entry per gram occurrence anywhere in the batch — or ``None``
        when any read (or the gram set) is off the ACGT fast path.  Reads
        are concatenated so the window radix-encoding and the gram lookup
        each run once over the whole batch; windows that straddle a read
        boundary are excluded by construction.
        """
        if self._gram_values is None:
            return None
        gram_length = self._gram_length
        from repro.dna.readpool import ReadPool

        if isinstance(sequences, ReadPool):
            # Columnar input: the pool *is* the concatenated radix encoding
            # this path otherwise builds — reuse it without re-encoding.
            if not sequences.is_acgt:
                return None
            codes_all = sequences.codes
            lengths = sequences.lengths
        else:
            codes_list = []
            for sequence in sequences:
                codes = _encode_acgt(sequence)
                if codes is None:
                    return None
                codes_list.append(codes)
            lengths = np.fromiter(
                (codes.shape[0] for codes in codes_list),
                dtype=np.int64,
                count=len(codes_list),
            )
            codes_all = (
                np.concatenate(codes_list)
                if codes_list
                else np.empty(0, dtype=np.uint8)
            )
        empty = np.empty(0, dtype=np.int64)
        window_counts = np.maximum(lengths - gram_length + 1, 0)
        total_windows = int(window_counts.sum())
        if total_windows == 0:
            return empty, empty, empty, lengths
        values = _window_values(codes_all, gram_length)
        read_ids = np.repeat(np.arange(len(sequences), dtype=np.int64), window_counts)
        first_window = np.cumsum(window_counts) - window_counts
        positions = np.arange(total_windows, dtype=np.int64) - np.repeat(
            first_window, window_counts
        )
        offsets = np.cumsum(lengths) - lengths
        starts = offsets[read_ids] + positions
        window_values = values[starts]
        slots = np.searchsorted(self._sorted_values, window_values)
        slots = np.minimum(slots, self._sorted_values.shape[0] - 1)
        hits = self._sorted_values[slots] == window_values
        return (
            read_ids[hits],
            positions[hits],
            self._sort_perm[slots[hits]],
            lengths,
        )


class QGramSignature(_GramSet):
    """Binary presence/absence signatures over a fixed gram set."""

    def compute(self, sequence: str) -> np.ndarray:
        """Return the uint8 presence vector of this signature's grams."""
        windows = self._read_windows(sequence)
        if windows is None:
            return np.fromiter(
                (1 if gram in sequence else 0 for gram in self.grams),
                dtype=np.uint8,
                count=len(self.grams),
            )
        presence = np.zeros(len(self.grams), dtype=np.uint8)
        if windows.size:
            _, gram_indices = self._gram_hits(windows)
            presence[gram_indices] = 1
        return presence

    def compute_batch(self, sequences: Sequence[str]) -> List[np.ndarray]:
        """Signatures of many reads (one array per read, in order)."""
        batch = self._batch_hits(sequences)
        if batch is None:
            return [self.compute(sequence) for sequence in sequences]
        read_ids, _, gram_indices, _ = batch
        presence = np.zeros((len(sequences), len(self.grams)), dtype=np.uint8)
        presence[read_ids, gram_indices] = 1
        return list(presence)

    @staticmethod
    def distance(left: np.ndarray, right: np.ndarray) -> int:
        """Hamming distance between two presence vectors."""
        return int(np.count_nonzero(left != right))


class WGramSignature(_GramSet):
    """First-occurrence-position signatures over a fixed gram set.

    A gram that does not occur is assigned the sentinel position
    ``len(sequence)`` ("past the end"), which keeps the L1 distance
    well-defined and penalises presence/absence disagreements in proportion
    to strand length.
    """

    def compute(self, sequence: str) -> np.ndarray:
        """Return the int32 first-occurrence-position vector."""
        sentinel = len(sequence)
        windows = self._read_windows(sequence)
        if windows is None:
            positions = np.empty(len(self.grams), dtype=np.int32)
            for index, gram in enumerate(self.grams):
                found = sequence.find(gram)
                positions[index] = sentinel if found < 0 else found
            return positions
        positions = np.full(len(self.grams), sentinel, dtype=np.int32)
        if windows.size:
            window_indices, gram_indices = self._gram_hits(windows)
            # Assign occurrences in reverse read order: with duplicate gram
            # indices the last assignment wins, so the earliest occurrence
            # is what sticks.
            positions[gram_indices[::-1]] = window_indices[::-1]
        return positions

    def compute_batch(self, sequences: Sequence[str]) -> List[np.ndarray]:
        """Signatures of many reads (one array per read, in order)."""
        batch = self._batch_hits(sequences)
        if batch is None:
            return [self.compute(sequence) for sequence in sequences]
        read_ids, window_positions, gram_indices, lengths = batch
        positions = np.repeat(
            lengths[:, np.newaxis], len(self.grams), axis=1
        ).astype(np.int32)
        # Fancy-index assignment order with duplicate indices is not
        # defined, so first occurrences are selected explicitly: hits come
        # out in read order, and np.unique's stable sort keeps the first
        # hit of every (read, gram) cell.
        cells = read_ids * len(self.grams) + gram_indices
        first_cells, first_hits = np.unique(cells, return_index=True)
        positions.reshape(-1)[first_cells] = window_positions[first_hits]
        return list(positions)

    @staticmethod
    def distance(left: np.ndarray, right: np.ndarray) -> int:
        """L1 distance between two position vectors."""
        return int(np.abs(left.astype(np.int64) - right.astype(np.int64)).sum())
