"""q-gram and w-gram signatures for cheap read similarity tests.

The clustering module (Section VI of the paper) avoids expensive edit
distance computations by first comparing *signatures* of cluster
representatives:

* a **q-gram signature** (baseline, Rashtchian et al.) is a binary vector
  marking which of a random set of q-grams occur in the read; signatures are
  compared with Hamming distance;
* a **w-gram signature** (the paper's novel variant) records the *position of
  the first occurrence* of each gram instead of mere presence, and signatures
  are compared with the L1 norm.  This spreads dissimilar reads further
  apart, cutting down the number of edit-distance calls the clusterer must
  fall back to.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

import numpy as np

from repro.dna.alphabet import BASES


def sample_grams(
    count: int, gram_length: int, rng: Optional[random.Random] = None
) -> List[str]:
    """Return *count* distinct random grams of the given length.

    Raises :class:`ValueError` when more distinct grams are requested than
    exist (``4 ** gram_length``).
    """
    if gram_length <= 0:
        raise ValueError(f"gram_length must be positive, got {gram_length}")
    if count > 4**gram_length:
        raise ValueError(
            f"cannot sample {count} distinct grams of length {gram_length}"
        )
    rng = rng or random.Random()
    grams = set()
    while len(grams) < count:
        grams.add("".join(rng.choice(BASES) for _ in range(gram_length)))
    return sorted(grams)


class QGramSignature:
    """Binary presence/absence signatures over a fixed gram set."""

    def __init__(self, grams: Sequence[str]):
        if not grams:
            raise ValueError("signature requires at least one gram")
        self.grams = list(grams)

    def compute(self, sequence: str) -> np.ndarray:
        """Return the uint8 presence vector of this signature's grams."""
        return np.fromiter(
            (1 if gram in sequence else 0 for gram in self.grams),
            dtype=np.uint8,
            count=len(self.grams),
        )

    @staticmethod
    def distance(left: np.ndarray, right: np.ndarray) -> int:
        """Hamming distance between two presence vectors."""
        return int(np.count_nonzero(left != right))


class WGramSignature:
    """First-occurrence-position signatures over a fixed gram set.

    A gram that does not occur is assigned the sentinel position
    ``len(sequence)`` ("past the end"), which keeps the L1 distance
    well-defined and penalises presence/absence disagreements in proportion
    to strand length.
    """

    def __init__(self, grams: Sequence[str]):
        if not grams:
            raise ValueError("signature requires at least one gram")
        self.grams = list(grams)

    def compute(self, sequence: str) -> np.ndarray:
        """Return the int32 first-occurrence-position vector."""
        sentinel = len(sequence)
        positions = np.empty(len(self.grams), dtype=np.int32)
        for index, gram in enumerate(self.grams):
            found = sequence.find(gram)
            positions[index] = sentinel if found < 0 else found
        return positions

    @staticmethod
    def distance(left: np.ndarray, right: np.ndarray) -> int:
        """L1 distance between two position vectors."""
        return int(np.abs(left.astype(np.int64) - right.astype(np.int64)).sum())
