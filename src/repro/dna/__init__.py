"""DNA sequence primitives shared by every pipeline stage.

This subpackage contains the substrate that the codec, the wetlab simulator,
the clustering module and the trace-reconstruction module are built on:
alphabet utilities, distance metrics, pairwise and multiple sequence
alignment, partial-order alignment, q-gram/w-gram signatures, and fastq I/O.
"""

from repro.dna.alphabet import (
    BASES,
    BASE_TO_INDEX,
    INDEX_TO_BASE,
    complement,
    is_dna,
    random_sequence,
    reverse_complement,
)
from repro.dna.sequence import gc_content, homopolymer_runs, kmers, max_homopolymer
from repro.dna.distance import (
    banded_levenshtein,
    hamming_distance,
    levenshtein_distance,
    levenshtein_reference,
    levenshtein_row,
    myers_levenshtein,
    myers_levenshtein_fixed,
    prefix_edit_distance,
)
from repro.dna.distance_batch import myers_levenshtein_batch
from repro.dna.readpool import PAD_CODE, ReadPool, ReadPoolView, as_read_pool
from repro.dna.alignment import NWAligner, align_pair, edit_operations
from repro.dna.poa import PartialOrderGraph, poa_consensus
from repro.dna.qgram import QGramSignature, WGramSignature, sample_grams
from repro.dna.fastq import FastqRecord, read_fastq, write_fastq

__all__ = [
    "BASES",
    "BASE_TO_INDEX",
    "INDEX_TO_BASE",
    "complement",
    "is_dna",
    "random_sequence",
    "reverse_complement",
    "gc_content",
    "homopolymer_runs",
    "kmers",
    "max_homopolymer",
    "banded_levenshtein",
    "hamming_distance",
    "levenshtein_distance",
    "levenshtein_reference",
    "levenshtein_row",
    "myers_levenshtein",
    "myers_levenshtein_fixed",
    "myers_levenshtein_batch",
    "PAD_CODE",
    "ReadPool",
    "ReadPoolView",
    "as_read_pool",
    "prefix_edit_distance",
    "NWAligner",
    "align_pair",
    "edit_operations",
    "PartialOrderGraph",
    "poa_consensus",
    "QGramSignature",
    "WGramSignature",
    "sample_grams",
    "FastqRecord",
    "read_fastq",
    "write_fastq",
]
