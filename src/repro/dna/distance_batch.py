"""Batched Myers edit distance: one pattern against many texts in uint64 lanes.

The gray-zone phase of clustering compares each bucket representative
against many candidate reads with the same bound.  The scalar kernel
(:func:`repro.dna.distance.myers_levenshtein`) packs the DP column into one
Python big integer per *pair*; this module instead packs the pattern's
Myers bit-vectors into ``ceil(m / 64)`` numpy ``uint64`` words and advances
*all* candidate texts at once — one numpy op updates one word of every
lane's DP column, so interpreter overhead is paid per column, not per pair.

The update sequence mirrors ``distance._myers_columns`` word-for-word
(Hyyrö's formulation), with two extra mechanics the big-int version gets
for free:

* the ``(Eq & VP) + VP`` addition propagates carries across words manually
  (detected via unsigned wraparound), and
* the ``<< 1`` shifts feed bit 63 of word *w* into bit 0 of word ``w + 1``
  (``HP`` shifts in a 1 at the very bottom, ``HN`` a 0).

Texts are processed longest-first so finished lanes fall off the end of the
active prefix instead of needing per-lane freeze masks.  Results are exact:
``myers_levenshtein_batch(p, texts, bound)[i] ==
levenshtein_distance(p, texts[i], bound)`` for every input (property-tested
against the scalar oracle), including the ``bound + 1`` saturation
semantics.  Inputs off the ACGT alphabet fall back to the scalar kernel
with identical results.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.dna.distance import _pattern_masks, myers_levenshtein_fixed
from repro.dna.qgram import _encode_acgt

_WORD = 64


def _pack_pattern(codes: np.ndarray) -> np.ndarray:
    """Myers ``Peq`` masks as a ``(4, ceil(m / 64))`` uint64 array.

    Bit ``i`` of word ``w`` in row *b* is set when
    ``codes[w * 64 + i] == b``.
    """
    length = codes.shape[0]
    words = (length + _WORD - 1) // _WORD
    peq = np.zeros((4, words), dtype=np.uint64)
    positions = np.arange(length, dtype=np.int64)
    bits = np.uint64(1) << (positions % _WORD).astype(np.uint64)
    np.bitwise_or.at(peq, (codes.astype(np.int64), positions // _WORD), bits)
    return peq


def _texts_to_matrix(texts) -> "Optional[tuple[np.ndarray, np.ndarray]]":
    """Dense code matrix + lengths for *texts*, or ``None`` off the fast path."""
    padded = getattr(texts, "padded_codes", None)
    if padded is not None and hasattr(texts, "is_acgt"):
        if not texts.is_acgt:
            return None
        return padded()
    encoded = []
    for text in texts:
        codes = _encode_acgt(text)
        if codes is None:
            return None
        encoded.append(codes)
    lengths = np.fromiter(
        (codes.size for codes in encoded), dtype=np.int64, count=len(encoded)
    )
    width = int(lengths.max()) if lengths.size else 0
    matrix = np.full((len(encoded), width), 4, dtype=np.uint8)
    for row, codes in enumerate(encoded):
        matrix[row, : codes.size] = codes
    return matrix, lengths


def myers_levenshtein_batch(
    pattern: str,
    texts: Sequence[str],
    bound: Optional[int] = None,
) -> np.ndarray:
    """Edit distance of *pattern* against every text, as an int64 array.

    Exactly matches ``levenshtein_distance(pattern, text, bound=bound)``
    per lane, including the saturation of values above *bound* to
    ``bound + 1``.  *texts* may be any ``Sequence[str]``; a
    :class:`~repro.dna.readpool.ReadPool` (or view) skips re-encoding by
    reusing its cached code matrix.
    """
    if bound is not None and bound < 0:
        raise ValueError(f"bound must be non-negative, got {bound}")
    count = len(texts)
    if count == 0:
        return np.empty(0, dtype=np.int64)

    pattern_codes = _encode_acgt(pattern)
    prepared = _texts_to_matrix(texts) if pattern_codes is not None else None
    if pattern_codes is None or prepared is None:
        masks = _pattern_masks(pattern)
        return np.fromiter(
            (
                myers_levenshtein_fixed(pattern, text, bound=bound, masks=masks)
                for text in texts
            ),
            dtype=np.int64,
            count=count,
        )
    matrix, lengths = prepared

    length = pattern_codes.size
    if length == 0:
        distances = lengths.astype(np.int64)
        if bound is not None:
            distances = np.minimum(distances, bound + 1)
        return distances

    # Longest-first: finished lanes become a shrinking suffix, so the kernel
    # always operates on a contiguous active prefix.
    order = np.argsort(-lengths, kind="stable")
    sorted_lengths = lengths[order]
    max_len = int(sorted_lengths[0]) if count else 0
    # Column-major text codes: row j holds every lane's j-th character, so
    # the per-column slice is contiguous.
    columns = np.ascontiguousarray(matrix[order].T.astype(np.int64))
    # Lanes with text longer than column j (still active while processing j).
    active_counts = np.searchsorted(
        -sorted_lengths, -np.arange(max_len, dtype=np.int64), side="left"
    )

    words = (length + _WORD - 1) // _WORD
    # Word-major (words, 4) Peq so the per-column gather lands word rows
    # contiguously; state arrays are likewise (words, lanes).
    peq = np.ascontiguousarray(_pack_pattern(pattern_codes).T)
    top_bits = length - _WORD * (words - 1)
    top_mask = np.uint64(2**top_bits - 1) if top_bits < _WORD else np.uint64(2**64 - 1)
    high_bit = np.uint64(1) << np.uint64((length - 1) % _WORD)
    zero = np.uint64(0)
    one = np.uint64(1)
    word_top = np.uint64(_WORD - 1)

    vp = np.full((words, count), np.uint64(2**64 - 1), dtype=np.uint64)
    vp[-1] = top_mask
    vn = np.zeros((words, count), dtype=np.uint64)
    score = np.full(count, length, dtype=np.int64)
    result = np.empty(count, dtype=np.int64)

    active = count
    for column in range(max_len):
        k = int(active_counts[column])
        if k < active:
            result[k:active] = score[k:active]
            vp = np.ascontiguousarray(vp[:, :k])
            vn = np.ascontiguousarray(vn[:, :k])
            score_k = score[:k]
            active = k
        elif column == 0:
            score_k = score[:k]
        if k == 0:
            break
        eq = peq[:, columns[column, :k]]
        x = eq & vp
        # Multi-word (Eq & VP) + VP: manual carry propagation between words
        # (unsigned wraparound flags the carry; a carry out of the top word
        # is beyond bit m-1 and irrelevant).
        total = x + vp
        if words > 1:
            # Carry-out of each word = raw-add wraparound OR the carry-in
            # pushing a word of all-ones over the edge (total becomes 0).
            carry = total[0] < x[0]
            for word in range(1, words):
                row = total[word]
                overflow = row < x[word]
                row += carry
                if word < words - 1:
                    overflow |= row < carry
                    carry = overflow
        diag_zero = total  # reused in place: total is dead after this point
        diag_zero ^= vp
        diag_zero |= eq
        diag_zero |= vn
        horizontal_pos = diag_zero | vp
        np.invert(horizontal_pos, out=horizontal_pos)
        horizontal_pos |= vn
        horizontal_neg = vp & diag_zero
        score_k += (horizontal_pos[-1] & high_bit) != zero
        score_k -= (horizontal_neg[-1] & high_bit) != zero
        # << 1 across words: bit 63 of word w feeds bit 0 of word w + 1; HP
        # shifts a 1 into the very bottom (the scalar kernel's `| 1`).
        if words > 1:
            pos_carries = horizontal_pos[:-1] >> word_top
            neg_carries = horizontal_neg[:-1] >> word_top
        horizontal_pos <<= one
        horizontal_neg <<= one
        if words > 1:
            horizontal_pos[1:] |= pos_carries
            horizontal_neg[1:] |= neg_carries
        horizontal_pos[0] |= one
        horizontal_pos[-1] &= top_mask
        horizontal_neg[-1] &= top_mask
        vp = diag_zero | horizontal_pos
        np.invert(vp, out=vp)
        vp |= horizontal_neg
        vp[-1] &= top_mask
        np.bitwise_and(horizontal_pos, diag_zero, out=vn)
        if bound is not None and (column & 15) == 15:
            # The score drops by at most 1 per remaining character, so once
            # every active lane's floor exceeds the bound nothing can recover.
            floors = score_k - (sorted_lengths[:k] - column - 1)
            if int(floors.min()) > bound:
                result[:k] = bound + 1
                active = 0
                break
    if active:
        result[:active] = score[:active]

    if bound is not None:
        np.minimum(result, bound + 1, out=result)
    unsorted = np.empty(count, dtype=np.int64)
    unsorted[order] = result
    return unsorted
