"""The DNA alphabet and elementary sequence operations.

Strands are plain Python ``str`` objects over the alphabet ``{A, C, G, T}``.
Keeping strands as strings (rather than a wrapper class) makes every module
in the toolkit trivially interoperable with user-supplied sequences and with
fastq data read from disk.
"""

from __future__ import annotations

import random
from typing import Optional

#: The four nucleotides, in the canonical order used by the 2-bit codec.
BASES = "ACGT"

#: Mapping from base character to its 2-bit value (A=0, C=1, G=2, T=3).
BASE_TO_INDEX = {base: index for index, base in enumerate(BASES)}

#: Inverse of :data:`BASE_TO_INDEX`.
INDEX_TO_BASE = dict(enumerate(BASES))

_COMPLEMENT = str.maketrans("ACGT", "TGCA")

_BASE_SET = frozenset(BASES)


def is_dna(sequence: str) -> bool:
    """Return ``True`` if *sequence* contains only ``A``, ``C``, ``G``, ``T``.

    The empty string is considered valid DNA (an empty strand).
    """
    return all(char in _BASE_SET for char in sequence)


def complement(sequence: str) -> str:
    """Return the base-wise Watson-Crick complement of *sequence*."""
    return sequence.translate(_COMPLEMENT)


def reverse_complement(sequence: str) -> str:
    """Return the reverse complement (the opposite-direction strand).

    Sequencers report reads in both orientations; the wetlab preprocessing
    module uses this to normalise 3'->5' reads into the 5'->3' convention
    used throughout the pipeline.
    """
    return complement(sequence)[::-1]


def random_sequence(length: int, rng: Optional[random.Random] = None) -> str:
    """Return a uniformly random DNA strand of the given *length*.

    Parameters
    ----------
    length:
        Number of bases; must be non-negative.
    rng:
        Optional :class:`random.Random` for reproducibility.  A fresh
        non-deterministic generator is used when omitted.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    rng = rng or random.Random()
    return "".join(rng.choice(BASES) for _ in range(length))
