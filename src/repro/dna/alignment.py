"""Pairwise global alignment (Needleman-Wunsch) with traceback.

Used in three places:

* the learned channel models align (clean, noisy) strand pairs to attribute
  observed errors to positions and error types;
* the analysis module aligns reconstructed strands against references to
  compute per-index error profiles (Figures 3 and 6 of the paper);
* the partial-order-alignment consensus builds on the same scoring scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

#: Traceback codes.
_DIAG, _UP, _LEFT = 0, 1, 2


@dataclass(frozen=True)
class EditOp:
    """One elementary edit that transforms the reference into the query.

    ``kind`` is one of ``"match"``, ``"sub"``, ``"ins"``, ``"del"``.
    ``ref_pos`` is the index in the reference the operation applies at
    (for insertions, the reference index *before which* the base was
    inserted).  ``ref_base``/``query_base`` are empty strings when the
    operation has no base on that side.
    """

    kind: str
    ref_pos: int
    ref_base: str
    query_base: str


class NWAligner:
    """Needleman-Wunsch global aligner with affine-free linear gap costs.

    Scores default to match=+1, mismatch=-1, gap=-1, the classical scheme
    used by the toolkit's consensus algorithms.  Instances are stateless and
    reusable.
    """

    def __init__(self, match: int = 1, mismatch: int = -1, gap: int = -1):
        self.match = match
        self.mismatch = mismatch
        self.gap = gap

    def align(self, reference: str, query: str) -> Tuple[str, str, int]:
        """Globally align *query* against *reference*.

        Returns ``(aligned_reference, aligned_query, score)`` where the two
        aligned strings have equal length and use ``-`` for gaps.
        """
        n, m = len(reference), len(query)
        score = np.zeros((n + 1, m + 1), dtype=np.int32)
        trace = np.zeros((n + 1, m + 1), dtype=np.int8)
        score[:, 0] = np.arange(n + 1) * self.gap
        score[0, :] = np.arange(m + 1) * self.gap
        trace[1:, 0] = _UP
        trace[0, 1:] = _LEFT

        ref_codes = np.frombuffer(reference.encode("ascii"), dtype=np.uint8)
        query_codes = np.frombuffer(query.encode("ascii"), dtype=np.uint8)
        for i in range(1, n + 1):
            match_scores = np.where(
                query_codes == ref_codes[i - 1], self.match, self.mismatch
            )
            prev_row = score[i - 1]
            row = score[i]
            trace_row = trace[i]
            # The row recurrence has a serial dependency through the LEFT
            # move, so compute diagonal/up vectorised and resolve left
            # in a scalar pass.
            diag = prev_row[:-1] + match_scores
            up = prev_row[1:] + self.gap
            best = np.maximum(diag, up)
            choice = np.where(diag >= up, _DIAG, _UP)
            running = row[0]
            for j in range(1, m + 1):
                left = running + self.gap
                if left > best[j - 1]:
                    row[j] = left
                    trace_row[j] = _LEFT
                else:
                    row[j] = best[j - 1]
                    trace_row[j] = choice[j - 1]
                running = row[j]

        aligned_ref: List[str] = []
        aligned_query: List[str] = []
        i, j = n, m
        while i > 0 or j > 0:
            move = trace[i, j]
            if move == _DIAG:
                aligned_ref.append(reference[i - 1])
                aligned_query.append(query[j - 1])
                i -= 1
                j -= 1
            elif move == _UP:
                aligned_ref.append(reference[i - 1])
                aligned_query.append("-")
                i -= 1
            else:
                aligned_ref.append("-")
                aligned_query.append(query[j - 1])
                j -= 1
        return (
            "".join(reversed(aligned_ref)),
            "".join(reversed(aligned_query)),
            int(score[n, m]),
        )


_DEFAULT_ALIGNER = NWAligner()


def align_pair(reference: str, query: str) -> Tuple[str, str]:
    """Align *query* to *reference* with default scores; return aligned strings."""
    aligned_ref, aligned_query, _ = _DEFAULT_ALIGNER.align(reference, query)
    return aligned_ref, aligned_query


def edit_operations(reference: str, query: str) -> List[EditOp]:
    """Return the edit script implied by the optimal global alignment.

    The script transforms *reference* into *query*; match operations are
    included so callers can compute per-position statistics directly.
    """
    aligned_ref, aligned_query = align_pair(reference, query)
    ops: List[EditOp] = []
    ref_pos = 0
    for ref_base, query_base in zip(aligned_ref, aligned_query):
        if ref_base == "-":
            ops.append(EditOp("ins", ref_pos, "", query_base))
        elif query_base == "-":
            ops.append(EditOp("del", ref_pos, ref_base, ""))
            ref_pos += 1
        elif ref_base == query_base:
            ops.append(EditOp("match", ref_pos, ref_base, query_base))
            ref_pos += 1
        else:
            ops.append(EditOp("sub", ref_pos, ref_base, query_base))
            ref_pos += 1
    return ops
