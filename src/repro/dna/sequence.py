"""Sequence statistics used by constrained-coding checks and primer design.

The toolkit's codec is *unconstrained* (Section II-D of the paper): it relies
on randomization rather than constrained coding, so these statistics are used
to validate randomizer behaviour and to screen candidate PCR primers.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


def gc_content(sequence: str) -> float:
    """Return the fraction of ``G``/``C`` bases in *sequence*.

    Raises :class:`ValueError` for the empty strand, for which GC content is
    undefined.
    """
    if not sequence:
        raise ValueError("GC content is undefined for an empty sequence")
    gc = sum(1 for base in sequence if base in "GC")
    return gc / len(sequence)


def homopolymer_runs(sequence: str) -> List[Tuple[str, int]]:
    """Return maximal homopolymer runs as ``(base, run_length)`` pairs.

    ``"AACGGG"`` yields ``[("A", 2), ("C", 1), ("G", 3)]``.
    """
    runs: List[Tuple[str, int]] = []
    for base in sequence:
        if runs and runs[-1][0] == base:
            runs[-1] = (base, runs[-1][1] + 1)
        else:
            runs.append((base, 1))
    return runs


def max_homopolymer(sequence: str) -> int:
    """Return the length of the longest homopolymer run (0 if empty)."""
    longest = 0
    for _, run_length in homopolymer_runs(sequence):
        longest = max(longest, run_length)
    return longest


def kmers(sequence: str, k: int) -> Iterator[str]:
    """Yield every (overlapping) substring of length *k* in order.

    Yields nothing when ``k > len(sequence)``; raises for ``k <= 0``.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    for start in range(len(sequence) - k + 1):
        yield sequence[start : start + k]
