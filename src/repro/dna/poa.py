"""Partial-order alignment (POA) and column-majority consensus.

This is a pure-Python/numpy reimplementation of the algorithm behind spoa
(Lee, *Bioinformatics* 2002/2003), which the paper's Needleman-Wunsch
reconstruction module builds on.  Reads are aligned one at a time against a
growing DAG; bases that align to an existing node with the same base are
fused into it, mismatching bases branch within the node's *aligned group*
(the POA notion of a column), and insertions create fresh nodes.

Consensus (Section VII-C of the paper) takes a majority vote in every column
of the implied multiple sequence alignment; when the result exceeds the
expected strand length, the surplus columns with the most indel alignments
are omitted.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_NEG_INF = np.int32(-(2**30))


class PartialOrderGraph:
    """A partial-order alignment graph built incrementally from reads.

    Parameters
    ----------
    match, mismatch, gap:
        Alignment scores (linear gap model), defaulting to +2/-2/-2 which
        behaves well for the short, moderately noisy reads produced by DNA
        data storage channels.
    free_graph_ends:
        When true (the default) reads may start and end anywhere in the
        graph without terminal gap penalties, which makes the alignment
        robust to truncated reads.
    """

    def __init__(
        self,
        match: int = 2,
        mismatch: int = -2,
        gap: int = -2,
        free_graph_ends: bool = True,
    ):
        self.match = match
        self.mismatch = mismatch
        self.gap = gap
        self.free_graph_ends = free_graph_ends
        self.bases: List[str] = []
        self.preds: List[List[int]] = []
        self.succs: List[List[int]] = []
        self.group_of: List[int] = []
        self.group_members: Dict[int, List[int]] = {}
        self.paths: List[List[int]] = []
        self._next_group = 0

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------

    def _new_node(self, base: str, group: Optional[int] = None) -> int:
        node = len(self.bases)
        self.bases.append(base)
        self.preds.append([])
        self.succs.append([])
        if group is None:
            group = self._next_group
            self._next_group += 1
            self.group_members[group] = []
        self.group_of.append(group)
        self.group_members[group].append(node)
        return node

    def _add_edge(self, src: int, dst: int) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)
            self.preds[dst].append(src)

    def add_sequence(self, sequence: str) -> None:
        """Align *sequence* against the graph and merge it in."""
        if not sequence:
            raise ValueError("cannot add an empty sequence to a POA graph")
        if not self.bases:
            path = [self._new_node(base) for base in sequence]
            for src, dst in zip(path, path[1:]):
                self._add_edge(src, dst)
            self.paths.append(path)
            return
        ops = self._align(sequence)
        self._merge(sequence, ops)

    def topological_order(self) -> List[int]:
        """Return node ids in a topological order (Kahn's algorithm)."""
        in_degree = [len(p) for p in self.preds]
        queue = deque(node for node, deg in enumerate(in_degree) if deg == 0)
        order: List[int] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for succ in self.succs[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self.bases):
            raise RuntimeError("POA graph contains a cycle; this is a bug")
        return order

    # ------------------------------------------------------------------
    # Alignment of one read against the graph
    # ------------------------------------------------------------------

    def _align(self, sequence: str) -> List[Tuple[str, int, int]]:
        """Return the optimal edit script for *sequence* against the graph.

        The script is a forward-ordered list of ``(op, node_id, read_pos)``
        tuples with op in {"diag", "vert", "horiz"}; node_id is -1 for
        "horiz" (insertions attach to the path, not to an existing node).
        """
        order = self.topological_order()
        rank = {node: index + 1 for index, node in enumerate(order)}
        n, m = len(order), len(sequence)
        gap = self.gap
        read_codes = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
        positions = np.arange(m + 1, dtype=np.int32)

        score = np.empty((n + 1, m + 1), dtype=np.int32)
        score[0] = positions * gap  # virtual start: read prefix is insertions
        for row, node in enumerate(order, start=1):
            base_code = ord(self.bases[node])
            match_scores = np.where(
                read_codes == base_code, self.match, self.mismatch
            ).astype(np.int32)
            pred_rows = [rank[p] for p in self.preds[node]]
            if not pred_rows or self.free_graph_ends:
                pred_rows = pred_rows + [0]
            best = np.full(m + 1, _NEG_INF, dtype=np.int32)
            for pred_row in pred_rows:
                prev = score[pred_row]
                np.maximum(best[1:], prev[:-1] + match_scores, out=best[1:])
                np.maximum(best, prev + gap, out=best)
            # Resolve the serial horizontal (insertion) chain with a prefix
            # max: row[j] = max(best[j], max_{k<j} best[k] + (j-k)*gap).
            shifted = np.maximum.accumulate(best - positions * gap)
            row_scores = best.copy()
            np.maximum(
                row_scores[1:], shifted[:-1] + positions[1:] * gap, out=row_scores[1:]
            )
            score[row] = row_scores

        if self.free_graph_ends:
            end_rows = list(range(1, n + 1))
        else:
            end_rows = [rank[node] for node in order if not self.succs[node]]
        end_row = max(end_rows, key=lambda r: score[r, m])

        # Traceback by re-checking which transition achieves each score.
        ops: List[Tuple[str, int, int]] = []
        row, j = end_row, m
        order_by_row = {rank[node]: node for node in order}
        while row != 0 or j != 0:
            if row == 0:
                ops.append(("horiz", -1, j - 1))
                j -= 1
                continue
            node = order_by_row[row]
            current = score[row, j]
            pred_rows = [rank[p] for p in self.preds[node]]
            if not pred_rows or self.free_graph_ends:
                pred_rows = pred_rows + [0]
            moved = False
            if j > 0:
                base_match = (
                    self.match if sequence[j - 1] == self.bases[node] else self.mismatch
                )
                for pred_row in pred_rows:
                    if score[pred_row, j - 1] + base_match == current:
                        ops.append(("diag", node, j - 1))
                        row, j = pred_row, j - 1
                        moved = True
                        break
            if moved:
                continue
            for pred_row in pred_rows:
                if score[pred_row, j] + self.gap == current:
                    ops.append(("vert", node, j))
                    row = pred_row
                    moved = True
                    break
            if moved:
                continue
            if j > 0 and score[row, j - 1] + self.gap == current:
                ops.append(("horiz", -1, j - 1))
                j -= 1
                continue
            raise RuntimeError("POA traceback failed; this is a bug")
        ops.reverse()
        return ops

    def _merge(self, sequence: str, ops: Sequence[Tuple[str, int, int]]) -> None:
        """Fuse an aligned read into the graph following its edit script."""
        path: List[int] = []
        for op, node, read_pos in ops:
            if op == "vert":
                continue  # graph node skipped by this read
            base = sequence[read_pos]
            if op == "horiz":
                path.append(self._new_node(base))
                continue
            # Diagonal: read base aligned to an existing node.
            if self.bases[node] == base:
                path.append(node)
                continue
            group = self.group_of[node]
            for member in self.group_members[group]:
                if self.bases[member] == base:
                    path.append(member)
                    break
            else:
                path.append(self._new_node(base, group=group))
        for src, dst in zip(path, path[1:]):
            self._add_edge(src, dst)
        self.paths.append(path)

    # ------------------------------------------------------------------
    # Consensus
    # ------------------------------------------------------------------

    def columns(self) -> List[List[int]]:
        """Return the MSA columns (aligned groups) in topological order."""
        seen = set()
        ordered: List[List[int]] = []
        for node in self.topological_order():
            group = self.group_of[node]
            if group not in seen:
                seen.add(group)
                ordered.append(self.group_members[group])
        return ordered

    def consensus(self, expected_length: Optional[int] = None) -> str:
        """Return the majority-vote consensus across MSA columns.

        In every column each read votes for the base it carries there (or a
        gap when its path skips the column); the plurality symbol wins, with
        non-gap preferred on ties.  Columns won by the gap symbol are
        omitted.  When *expected_length* is given and the consensus exceeds
        it by ``x`` bases, the ``x`` kept columns with the most indel votes
        are dropped (Section VII-C of the paper).
        """
        if not self.paths:
            raise ValueError("consensus of an empty POA graph is undefined")
        node_to_column: Dict[int, int] = {}
        ordered_columns = self.columns()
        for column_index, members in enumerate(ordered_columns):
            for member in members:
                node_to_column[member] = column_index

        num_columns = len(ordered_columns)
        total_reads = len(self.paths)
        base_votes: List[Dict[str, int]] = [dict() for _ in range(num_columns)]
        presence = np.zeros(num_columns, dtype=np.int32)
        for path in self.paths:
            for node in path:
                column = node_to_column[node]
                base = self.bases[node]
                base_votes[column][base] = base_votes[column].get(base, 0) + 1
                presence[column] += 1

        kept: List[Tuple[str, int]] = []  # (base, gap_votes)
        for column in range(num_columns):
            votes = base_votes[column]
            if not votes:
                continue  # column supported by no surviving path
            gap_votes = total_reads - int(presence[column])
            best_base = max(votes, key=lambda b: (votes[b], b))
            if votes[best_base] >= gap_votes:
                kept.append((best_base, gap_votes))
        if expected_length is not None and len(kept) > expected_length:
            surplus = len(kept) - expected_length
            by_gappiness = sorted(
                range(len(kept)), key=lambda i: kept[i][1], reverse=True
            )
            drop = set(by_gappiness[:surplus])
            kept = [entry for index, entry in enumerate(kept) if index not in drop]
        return "".join(base for base, _ in kept)


def poa_consensus(
    reads: Sequence[str],
    expected_length: Optional[int] = None,
    match: int = 2,
    mismatch: int = -2,
    gap: int = -2,
) -> str:
    """Build a POA graph over *reads* and return its majority consensus."""
    if not reads:
        raise ValueError("poa_consensus requires at least one read")
    graph = PartialOrderGraph(match=match, mismatch=mismatch, gap=gap)
    for read in reads:
        if read:
            graph.add_sequence(read)
    if not graph.paths:
        raise ValueError("poa_consensus requires at least one non-empty read")
    return graph.consensus(expected_length=expected_length)
