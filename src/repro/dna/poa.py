"""Partial-order alignment (POA) and column-majority consensus.

This is a pure-Python/numpy reimplementation of the algorithm behind spoa
(Lee, *Bioinformatics* 2002/2003), which the paper's Needleman-Wunsch
reconstruction module builds on.  Reads are aligned one at a time against a
growing DAG; bases that align to an existing node with the same base are
fused into it, mismatching bases branch within the node's *aligned group*
(the POA notion of a column), and insertions create fresh nodes.

Consensus (Section VII-C of the paper) takes a majority vote in every column
of the implied multiple sequence alignment; when the result exceeds the
expected strand length, the surplus columns with the most indel alignments
are omitted.

The alignment DP supports an optional **band**: each graph row only
evaluates read positions within ``band`` columns of the backbone diagonal
(row rank scaled to read length).  Reads produced by DNA storage channels
drift from the backbone only by their accumulated indels, so a band a few
dozen columns wide almost always contains the optimal path; when the
traceback touches the band boundary — the signal that the path may have
been clipped — the alignment transparently falls back to the exact
full-width DP and the graph counts a ``band_saturations`` event.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

_NEG_INF = np.int32(-(2**30))


class PartialOrderGraph:
    """A partial-order alignment graph built incrementally from reads.

    Parameters
    ----------
    match, mismatch, gap:
        Alignment scores (linear gap model), defaulting to +2/-2/-2 which
        behaves well for the short, moderately noisy reads produced by DNA
        data storage channels.
    free_graph_ends:
        When true (the default) reads may start and end anywhere in the
        graph without terminal gap penalties, which makes the alignment
        robust to truncated reads.
    band:
        Half-width of the alignment band around the backbone diagonal, or
        ``None`` (the default) for the exact full-width DP.  Banded
        alignments that touch the band boundary during traceback are
        recomputed exactly, so a band can only ever cost accuracy when the
        optimal path leaves the band without its in-band substitute
        grazing the edge — rare in practice, and bounded by the
        ``band_saturations`` counter plus the kernel bench's
        ``matches_scalar`` gate.
    """

    def __init__(
        self,
        match: int = 2,
        mismatch: int = -2,
        gap: int = -2,
        free_graph_ends: bool = True,
        band: Optional[int] = None,
    ):
        if band is not None and band < 1:
            raise ValueError(f"band must be positive when given, got {band}")
        self.match = match
        self.mismatch = mismatch
        self.gap = gap
        self.free_graph_ends = free_graph_ends
        self.band = band
        self.bases: List[str] = []
        self.preds: List[List[int]] = []
        self.succs: List[List[int]] = []
        self.group_of: List[int] = []
        self.group_members: Dict[int, List[int]] = {}
        self.paths: List[List[int]] = []
        self._next_group = 0
        #: banded alignments that touched the band edge and were redone
        #: exactly (drained into metrics by the NW reconstructors)
        self.band_saturations = 0

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------

    def _new_node(self, base: str, group: Optional[int] = None) -> int:
        node = len(self.bases)
        self.bases.append(base)
        self.preds.append([])
        self.succs.append([])
        if group is None:
            group = self._next_group
            self._next_group += 1
            self.group_members[group] = []
        self.group_of.append(group)
        self.group_members[group].append(node)
        return node

    def _add_edge(self, src: int, dst: int) -> None:
        if dst not in self.succs[src]:
            self.succs[src].append(dst)
            self.preds[dst].append(src)

    def add_sequence(self, sequence: str) -> None:
        """Align *sequence* against the graph and merge it in."""
        if not sequence:
            raise ValueError("cannot add an empty sequence to a POA graph")
        if not self.bases:
            path = [self._new_node(base) for base in sequence]
            for src, dst in zip(path, path[1:]):
                self._add_edge(src, dst)
            self.paths.append(path)
            return
        ops = self._align(sequence)
        self._merge(sequence, ops)

    def topological_order(self) -> List[int]:
        """Return node ids in a topological order (Kahn's algorithm)."""
        in_degree = [len(p) for p in self.preds]
        queue = deque(node for node, deg in enumerate(in_degree) if deg == 0)
        order: List[int] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for succ in self.succs[node]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    queue.append(succ)
        if len(order) != len(self.bases):
            raise RuntimeError("POA graph contains a cycle; this is a bug")
        return order

    # ------------------------------------------------------------------
    # Alignment of one read against the graph
    # ------------------------------------------------------------------

    def _align(self, sequence: str) -> List[Tuple[str, int, int]]:
        """Return the optimal edit script for *sequence* against the graph.

        The script is a forward-ordered list of ``(op, node_id, read_pos)``
        tuples with op in {"diag", "vert", "horiz"}; node_id is -1 for
        "horiz" (insertions attach to the path, not to an existing node).
        """
        if self.band is not None:
            result = self._align_dp(sequence, self.band)
            if result is not None:
                return result
            self.band_saturations += 1
        result = self._align_dp(sequence, None)
        if result is None:  # pragma: no cover - unbanded traceback is total
            raise RuntimeError("POA traceback failed; this is a bug")
        return result

    def _align_dp(
        self, sequence: str, band: Optional[int]
    ) -> Optional[List[Tuple[str, int, int]]]:
        """One DP + traceback pass, full-width (``band=None``) or banded.

        Returns ``None`` when the banded pass is unreliable: no in-band
        path reached the end, or the traceback touched the band boundary
        (the optimal path may have been clipped).
        """
        order = self.topological_order()
        rank = {node: index + 1 for index, node in enumerate(order)}
        n, m = len(order), len(sequence)
        gap = self.gap
        read_codes = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
        positions = np.arange(m + 1, dtype=np.int32)
        insert_cost = positions * gap

        # Per-base match-score rows, built once per alignment instead of
        # one np.where per graph row (graphs hold only a handful of
        # distinct bases).
        match_rows: Dict[int, np.ndarray] = {}
        for base in set(self.bases):
            code = ord(base)
            match_rows[code] = np.where(
                read_codes == code, self.match, self.mismatch
            ).astype(np.int32)

        if band is None:
            lo = np.zeros(n + 1, dtype=np.int64)
            hi = np.full(n + 1, m, dtype=np.int64)
        else:
            # Band centre: row rank scaled onto the read — the diagonal a
            # read that spans the whole graph would follow.
            centers = np.round(
                np.arange(n + 1, dtype=np.float64) * (m / max(n, 1))
            ).astype(np.int64)
            lo = np.maximum(centers - band, 0)
            hi = np.minimum(centers + band, m)

        score = np.full((n + 1, m + 1), _NEG_INF, dtype=np.int32)
        score[0, lo[0] : hi[0] + 1] = insert_cost[lo[0] : hi[0] + 1]
        for row, node in enumerate(order, start=1):
            row_lo, row_hi = int(lo[row]), int(hi[row])
            width = row_hi - row_lo + 1
            match_scores = match_rows[ord(self.bases[node])]
            pred_rows = [rank[p] for p in self.preds[node]]
            if not pred_rows or self.free_graph_ends:
                pred_rows = pred_rows + [0]
            best = np.full(width, _NEG_INF, dtype=np.int32)
            for pred_row in pred_rows:
                prev = score[pred_row]
                if row_lo > 0:
                    np.maximum(
                        best,
                        prev[row_lo - 1 : row_hi]
                        + match_scores[row_lo - 1 : row_hi],
                        out=best,
                    )
                else:
                    np.maximum(
                        best[1:],
                        prev[row_lo : row_hi] + match_scores[row_lo:row_hi],
                        out=best[1:],
                    )
                np.maximum(best, prev[row_lo : row_hi + 1] + gap, out=best)
            # Resolve the serial horizontal (insertion) chain with a prefix
            # max: row[j] = max(best[j], max_{k<j} best[k] + (j-k)*gap).
            window_cost = insert_cost[row_lo : row_hi + 1]
            shifted = np.maximum.accumulate(best - window_cost)
            row_scores = best
            np.maximum(
                row_scores[1:], shifted[:-1] + window_cost[1:], out=row_scores[1:]
            )
            score[row, row_lo : row_hi + 1] = row_scores

        if self.free_graph_ends:
            end_rows = list(range(1, n + 1))
        else:
            end_rows = [rank[node] for node in order if not self.succs[node]]
        end_row = max(end_rows, key=lambda r: score[r, m])
        if score[end_row, m] <= _NEG_INF // 2:
            return None  # no in-band path reaches the read's end

        # Traceback by re-checking which transition achieves each score.
        ops: List[Tuple[str, int, int]] = []
        row, j = end_row, m
        order_by_row = {rank[node]: node for node in order}
        while row != 0 or j != 0:
            if band is not None:
                # A path hugging the band edge may have been clipped by
                # it; hand the alignment back for an exact re-run.  The
                # j == 0 / j == m walls are genuine DP borders, not band
                # clipping.
                if (j == lo[row] and j > 0) or (j == hi[row] and j < m):
                    return None
            if row == 0:
                ops.append(("horiz", -1, j - 1))
                j -= 1
                continue
            node = order_by_row[row]
            current = score[row, j]
            pred_rows = [rank[p] for p in self.preds[node]]
            if not pred_rows or self.free_graph_ends:
                pred_rows = pred_rows + [0]
            moved = False
            if j > 0:
                base_match = (
                    self.match if sequence[j - 1] == self.bases[node] else self.mismatch
                )
                for pred_row in pred_rows:
                    if score[pred_row, j - 1] + base_match == current:
                        ops.append(("diag", node, j - 1))
                        row, j = pred_row, j - 1
                        moved = True
                        break
            if moved:
                continue
            for pred_row in pred_rows:
                if score[pred_row, j] + self.gap == current:
                    ops.append(("vert", node, j))
                    row = pred_row
                    moved = True
                    break
            if moved:
                continue
            if j > 0 and score[row, j - 1] + self.gap == current:
                ops.append(("horiz", -1, j - 1))
                j -= 1
                continue
            if band is not None:
                return None  # in-band scores are inconsistent: path clipped
            raise RuntimeError("POA traceback failed; this is a bug")
        ops.reverse()
        return ops

    def _merge(self, sequence: str, ops: Sequence[Tuple[str, int, int]]) -> None:
        """Fuse an aligned read into the graph following its edit script."""
        path: List[int] = []
        for op, node, read_pos in ops:
            if op == "vert":
                continue  # graph node skipped by this read
            base = sequence[read_pos]
            if op == "horiz":
                path.append(self._new_node(base))
                continue
            # Diagonal: read base aligned to an existing node.
            if self.bases[node] == base:
                path.append(node)
                continue
            group = self.group_of[node]
            for member in self.group_members[group]:
                if self.bases[member] == base:
                    path.append(member)
                    break
            else:
                path.append(self._new_node(base, group=group))
        for src, dst in zip(path, path[1:]):
            self._add_edge(src, dst)
        self.paths.append(path)

    # ------------------------------------------------------------------
    # Consensus
    # ------------------------------------------------------------------

    def columns(self) -> List[List[int]]:
        """Return the MSA columns (aligned groups) in topological order."""
        seen = set()
        ordered: List[List[int]] = []
        for node in self.topological_order():
            group = self.group_of[node]
            if group not in seen:
                seen.add(group)
                ordered.append(self.group_members[group])
        return ordered

    def consensus(self, expected_length: Optional[int] = None) -> str:
        """Return the majority-vote consensus across MSA columns.

        In every column each read votes for the base it carries there (or a
        gap when its path skips the column); the plurality symbol wins, with
        non-gap preferred on ties.  Columns won by the gap symbol are
        omitted.  When *expected_length* is given and the consensus exceeds
        it by ``x`` bases, the ``x`` kept columns with the most indel votes
        are dropped (Section VII-C of the paper).
        """
        if not self.paths:
            raise ValueError("consensus of an empty POA graph is undefined")
        node_to_column: Dict[int, int] = {}
        ordered_columns = self.columns()
        for column_index, members in enumerate(ordered_columns):
            for member in members:
                node_to_column[member] = column_index

        num_columns = len(ordered_columns)
        total_reads = len(self.paths)
        base_votes: List[Dict[str, int]] = [dict() for _ in range(num_columns)]
        presence = np.zeros(num_columns, dtype=np.int32)
        for path in self.paths:
            for node in path:
                column = node_to_column[node]
                base = self.bases[node]
                base_votes[column][base] = base_votes[column].get(base, 0) + 1
                presence[column] += 1

        kept: List[Tuple[str, int]] = []  # (base, gap_votes)
        for column in range(num_columns):
            votes = base_votes[column]
            if not votes:
                continue  # column supported by no surviving path
            gap_votes = total_reads - int(presence[column])
            best_base = max(votes, key=lambda b: (votes[b], b))
            if votes[best_base] >= gap_votes:
                kept.append((best_base, gap_votes))
        if expected_length is not None and len(kept) > expected_length:
            surplus = len(kept) - expected_length
            by_gappiness = sorted(
                range(len(kept)), key=lambda i: kept[i][1], reverse=True
            )
            drop = set(by_gappiness[:surplus])
            kept = [entry for index, entry in enumerate(kept) if index not in drop]
        return "".join(base for base, _ in kept)


def poa_consensus(
    reads: Sequence[str],
    expected_length: Optional[int] = None,
    match: int = 2,
    mismatch: int = -2,
    gap: int = -2,
    band: Optional[int] = None,
) -> str:
    """Build a POA graph over *reads* and return its majority consensus."""
    if not reads:
        raise ValueError("poa_consensus requires at least one read")
    graph = PartialOrderGraph(match=match, mismatch=mismatch, gap=gap, band=band)
    for read in reads:
        if read:
            graph.add_sequence(read)
    if not graph.paths:
        raise ValueError("poa_consensus requires at least one non-empty read")
    return graph.consensus(expected_length=expected_length)
