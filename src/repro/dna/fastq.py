"""Minimal fastq reading and writing.

Sequencing runs (Illumina or Nanopore) deliver reads in fastq format; the
wetlab-data module (Section VIII of the paper) ingests these files in place
of the simulation module.  We implement the standard four-line record format
with Phred+33 quality scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, List, TextIO, Union

_PHRED_OFFSET = 33


@dataclass(frozen=True)
class FastqRecord:
    """One sequencing read: identifier, bases and per-base Phred qualities."""

    identifier: str
    sequence: str
    qualities: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.qualities and len(self.qualities) != len(self.sequence):
            raise ValueError(
                "quality string length must match sequence length "
                f"({len(self.qualities)} != {len(self.sequence)})"
            )

    def mean_quality(self) -> float:
        """Return the average Phred quality (0.0 for a read with no scores)."""
        if not self.qualities:
            return 0.0
        return sum(self.qualities) / len(self.qualities)


def _parse_quality(text: str) -> List[int]:
    return [ord(char) - _PHRED_OFFSET for char in text]


def _format_quality(qualities: Iterable[int]) -> str:
    return "".join(chr(q + _PHRED_OFFSET) for q in qualities)


def parse_fastq(stream: Iterable[str]) -> Iterator[FastqRecord]:
    """Yield :class:`FastqRecord` objects from an iterable of fastq lines."""
    lines = iter(stream)
    while True:
        try:
            header = next(lines).rstrip("\n")
        except StopIteration:
            return
        if not header:
            continue
        if not header.startswith("@"):
            raise ValueError(f"malformed fastq: expected '@' header, got {header!r}")
        try:
            sequence = next(lines).rstrip("\n")
            separator = next(lines).rstrip("\n")
            quality = next(lines).rstrip("\n")
        except StopIteration:
            raise ValueError("malformed fastq: truncated record") from None
        if not separator.startswith("+"):
            raise ValueError(f"malformed fastq: expected '+' line, got {separator!r}")
        if len(quality) != len(sequence):
            raise ValueError(
                "malformed fastq: quality length does not match sequence length"
            )
        yield FastqRecord(header[1:], sequence, _parse_quality(quality))


def read_fastq(path: Union[str, Path]) -> List[FastqRecord]:
    """Read every record from the fastq file at *path*."""
    with open(path, "r", encoding="ascii") as handle:
        return list(parse_fastq(handle))


def write_fastq(
    records: Iterable[FastqRecord], destination: Union[str, Path, TextIO]
) -> None:
    """Write *records* to a path or an open text stream in fastq format.

    Records without quality scores are written with a constant placeholder
    quality of 40 ("I"), matching common simulator conventions.
    """
    if hasattr(destination, "write"):
        _write_records(records, destination)  # type: ignore[arg-type]
        return
    with open(destination, "w", encoding="ascii") as handle:
        _write_records(records, handle)


def _write_records(records: Iterable[FastqRecord], handle: TextIO) -> None:
    for record in records:
        qualities = record.qualities or [40] * len(record.sequence)
        handle.write(f"@{record.identifier}\n")
        handle.write(f"{record.sequence}\n")
        handle.write("+\n")
        handle.write(f"{_format_quality(qualities)}\n")
