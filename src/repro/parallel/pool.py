"""The pipeline's unified worker-pool abstraction.

Every embarrassingly-parallel stage (signature precomputation, gray-zone
edit verdicts, per-strand sequencing, per-cluster reconstruction, scalar
RS fallback) fans out through one :class:`WorkerPool` instead of carrying
its own ad-hoc ``ProcessPoolExecutor`` plumbing.  The pool owns exactly
the decisions those call sites used to duplicate:

* **backend** — ``workers <= 1`` runs in-process with zero overhead;
  anything above lazily starts a :class:`~concurrent.futures.ProcessPoolExecutor`
  that is reused across calls and shut down by :meth:`close` (the pool is
  a context manager);
* **chunking** — items are split into one contiguous chunk per worker
  (never more chunks than workers — :func:`plan_chunks`); small batches
  (below ``min_items``) stay serial because process round-trips would
  cost more than they save;
* **determinism** — the pool never touches RNG state.  Stages that need
  randomness derive per-item seeds via
  :func:`~repro.parallel.seeding.derive_seed`, so results are identical
  at any worker count and any chunking;
* **observability** — given a recording tracer (``tracer=`` at
  construction, or assign :attr:`tracer` later), every chunk — serial or
  process-pool — runs under a
  :class:`~repro.observability.trace.WorkerTracer`.  The chunk's spans
  (at minimum one ``worker.chunk`` root, plus whatever the worker
  function adds via :func:`~repro.observability.trace.worker_span`) are
  stitched back under the calling span annotated with
  ``pid``/``chunk_index``/``items``, per-chunk durations feed the
  ``worker_chunk_seconds{span=...}`` histogram, and each fan-out records
  a ``worker_load_imbalance{span=...}`` gauge (max/mean chunk duration).

Worker functions must be module-level (picklable) and take
``(chunk, extra)``: a contiguous slice of the items plus one static
argument shared by every chunk.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.observability.metrics import load_imbalance
from repro.observability.trace import Tracer, capture_worker_spans

Item = TypeVar("Item")
ChunkResult = TypeVar("ChunkResult")

#: Below this many items a batch stays serial: pickling the chunk plus the
#: static argument both ways costs more than the work it would spread.
DEFAULT_MIN_ITEMS = 64


def plan_chunks(count: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``(start, stop)`` chunk bounds for *count* items.

    Always between 1 and *workers* chunks (``ceil(count / ceil(count /
    workers))`` can never exceed *workers*), covering every item exactly
    once and in order.
    """
    if count <= 0:
        return [(0, 0)]
    chunk_size = -(-count // workers)
    return [
        (start, min(start + chunk_size, count))
        for start in range(0, count, chunk_size)
    ]


def _run_captured(fn, chunk, extra):
    """Run one chunk under worker-span capture.

    Returns ``(result, export, seconds)``: the chunk result, the
    serialized :class:`~repro.observability.trace.WorkerTracer` export
    (spans + gauges + counters), and the chunk's wall-clock duration.
    The whole chunk runs inside a ``worker.chunk`` root span so every
    fan-out contributes worker-side spans even when the worker function
    itself adds none.
    """
    with capture_worker_spans() as worker_tracer:
        with worker_tracer.span("worker.chunk", items=len(chunk)) as span:
            result = fn(chunk, extra)
    return result, worker_tracer.export(), span.duration


def _invoke(payload):
    """Process-pool trampoline: unpack ``(fn, chunk, extra, capture)`` and call."""
    fn, chunk, extra, capture = payload
    if not capture:
        return fn(chunk, extra)
    return _run_captured(fn, chunk, extra)


class WorkerPool:
    """Chunked fan-out over serial or process-pool backends.

    ``WorkerPool(1)`` is a true no-op wrapper — every call runs inline —
    so callers thread one code path and let configuration pick the
    backend.  After each fan-out :attr:`last_shards` records how many
    chunks actually ran (1 on the serial path) and, when tracing,
    :attr:`last_chunk_seconds` their individual durations; tracer spans
    report both so ``repro trace`` shows where the parallelism landed and
    how evenly it spread.
    """

    def __init__(
        self,
        workers: int = 1,
        min_items: int = DEFAULT_MIN_ITEMS,
        tracer: Optional[Tracer] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if min_items < 1:
            raise ValueError(f"min_items must be at least 1, got {min_items}")
        self.workers = workers
        self.min_items = min_items
        self.tracer = tracer
        self.last_shards = 0
        self.last_chunk_seconds: List[float] = []
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------

    def run_chunks(
        self,
        fn: Callable[[Sequence[Item], object], ChunkResult],
        items: Sequence[Item],
        extra: object = None,
        min_items: Optional[int] = None,
    ) -> List[ChunkResult]:
        """Apply *fn* to contiguous chunks of *items*; one result per chunk.

        The serial path (one worker, or fewer than ``min_items`` items)
        makes a single ``fn(items, extra)`` call, so worker functions see
        the exact same interface either way.  *min_items* overrides the
        pool-level threshold for this call only: stages whose items are
        individually heavy (per-window POA tasks, kb-scale alignments)
        pass a small value so even a handful of them fans out.
        """
        # Reset up front: a raising fn must not leave the previous
        # fan-out's values behind for span attributes to pick up.
        self.last_shards = 0
        self.last_chunk_seconds = []
        tracer = self.tracer
        if tracer is None or not tracer.enabled:
            tracer = None
        if min_items is None:
            min_items = self.min_items
        elif min_items < 1:
            raise ValueError(f"min_items must be at least 1, got {min_items}")

        if self.workers <= 1 or len(items) < min_items:
            if tracer is None:
                result = fn(items, extra)
                self.last_shards = 1
                return [result]
            base_offset = time.perf_counter() - tracer.epoch
            result, export, seconds = _run_captured(fn, items, extra)
            self.last_shards = 1
            self._stitch(tracer, [(export, seconds, len(items))], base_offset)
            return [result]

        bounds = plan_chunks(len(items), self.workers)
        if len(bounds) > self.workers:  # pragma: no cover - pinned by plan_chunks
            raise AssertionError(
                f"{len(bounds)} chunks for {self.workers} workers "
                f"({len(items)} items)"
            )
        # Slices of the original sequence go straight into the pickle —
        # wrapping them in list() again would only copy them twice.
        chunks = [items[start:stop] for start, stop in bounds]
        executor = self._ensure_executor()
        capture = tracer is not None
        base_offset = (
            time.perf_counter() - tracer.epoch if capture else 0.0
        )
        outputs = list(
            executor.map(_invoke, [(fn, chunk, extra, capture) for chunk in chunks])
        )
        self.last_shards = len(chunks)
        if not capture:
            return outputs
        self._stitch(
            tracer,
            [
                (export, seconds, len(chunk))
                for (_, export, seconds), chunk in zip(outputs, chunks)
            ],
            base_offset,
        )
        return [result for result, _, _ in outputs]

    def map_chunks(
        self,
        fn: Callable[[Sequence[Item], object], List],
        items: Sequence[Item],
        extra: object = None,
        min_items: Optional[int] = None,
    ) -> List:
        """Like :meth:`run_chunks` but concatenates the per-chunk lists.

        This is the right call when *fn* returns one result per input item
        (signatures, verdicts, reads): the concatenation restores the
        original item order.
        """
        results: List = []
        for chunk_result in self.run_chunks(fn, items, extra, min_items=min_items):
            results.extend(chunk_result)
        return results

    # ------------------------------------------------------------------
    # Worker-span stitching
    # ------------------------------------------------------------------

    def _stitch(self, tracer: Tracer, chunk_exports, base_offset: float) -> None:
        """Merge worker exports into *tracer* and record balance metrics.

        Chunk spans land under the currently open span; the per-chunk
        duration histogram and the fan-out's load-imbalance gauge are
        labelled with that span's name so every fan-out site gets its own
        series.
        """
        durations: List[float] = []
        for chunk_index, (export, seconds, item_count) in enumerate(chunk_exports):
            tracer.attach_worker_export(
                export,
                chunk_index=chunk_index,
                items=item_count,
                base_offset=base_offset,
            )
            durations.append(seconds)
        self.last_chunk_seconds = durations
        calling = tracer.current_span()
        stage = calling.name if calling is not None else "unscoped"
        histogram = tracer.metrics.histogram("worker_chunk_seconds", span=stage)
        for seconds in durations:
            histogram.observe(seconds)
        imbalance = load_imbalance(durations)
        # The gauge keeps the *worst* fan-out at this site (imbalance is
        # always >= 1.0, gauges default to 0.0), so one lopsided round is
        # not papered over by a balanced later one.
        gauge = tracer.metrics.gauge("worker_load_imbalance", span=stage)
        gauge.set(max(gauge.value, imbalance))
        if calling is not None:
            calling.set("load_imbalance", round(imbalance, 3))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        """Shut down the backing executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        backend = "serial" if self.workers <= 1 else "process"
        return f"WorkerPool(workers={self.workers}, backend={backend!r})"


def as_pool(pool: Optional[WorkerPool], workers: int = 1) -> WorkerPool:
    """*pool* itself, or a serial/process pool built from *workers*.

    Stages accept an optional pool so the pipeline can share one executor
    across all of them; standalone callers (CLI subcommands, direct API
    use) pass ``None`` and get a pool matching their own ``workers`` knob.
    """
    return pool if pool is not None else WorkerPool(workers)
