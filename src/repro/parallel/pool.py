"""The pipeline's unified worker-pool abstraction.

Every embarrassingly-parallel stage (signature precomputation, gray-zone
edit verdicts, per-strand sequencing, per-cluster reconstruction) fans out
through one :class:`WorkerPool` instead of carrying its own ad-hoc
``ProcessPoolExecutor`` plumbing.  The pool owns exactly the decisions
those call sites used to duplicate:

* **backend** — ``workers <= 1`` runs in-process with zero overhead;
  anything above lazily starts a :class:`~concurrent.futures.ProcessPoolExecutor`
  that is reused across calls and shut down by :meth:`close` (the pool is
  a context manager);
* **chunking** — items are split into one contiguous chunk per worker;
  small batches (below ``min_items``) stay serial because process
  round-trips would cost more than they save;
* **determinism** — the pool never touches RNG state.  Stages that need
  randomness derive per-item seeds via
  :func:`~repro.parallel.seeding.derive_seed`, so results are identical
  at any worker count and any chunking.

Worker functions must be module-level (picklable) and take
``(chunk, extra)``: a contiguous slice of the items plus one static
argument shared by every chunk.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

Item = TypeVar("Item")
ChunkResult = TypeVar("ChunkResult")

#: Below this many items a batch stays serial: pickling the chunk plus the
#: static argument both ways costs more than the work it would spread.
DEFAULT_MIN_ITEMS = 64


def _invoke(payload):
    """Process-pool trampoline: unpack ``(fn, chunk, extra)`` and call."""
    fn, chunk, extra = payload
    return fn(chunk, extra)


class WorkerPool:
    """Chunked fan-out over serial or process-pool backends.

    ``WorkerPool(1)`` is a true no-op wrapper — every call runs inline —
    so callers thread one code path and let configuration pick the
    backend.  After each fan-out :attr:`last_shards` records how many
    chunks actually ran (1 on the serial path), which tracer spans report
    so ``repro trace`` shows where the parallelism landed.
    """

    def __init__(self, workers: int = 1, min_items: int = DEFAULT_MIN_ITEMS):
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if min_items < 1:
            raise ValueError(f"min_items must be at least 1, got {min_items}")
        self.workers = workers
        self.min_items = min_items
        self.last_shards = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------

    def run_chunks(
        self,
        fn: Callable[[Sequence[Item], object], ChunkResult],
        items: Sequence[Item],
        extra: object = None,
    ) -> List[ChunkResult]:
        """Apply *fn* to contiguous chunks of *items*; one result per chunk.

        The serial path (one worker, or fewer than ``min_items`` items)
        makes a single ``fn(items, extra)`` call, so worker functions see
        the exact same interface either way.
        """
        if self.workers <= 1 or len(items) < self.min_items:
            self.last_shards = 1
            return [fn(items, extra)]
        chunk_size = -(-len(items) // self.workers)
        # Slices of the original sequence go straight into the pickle —
        # wrapping them in list() again would only copy them twice.
        chunks = [
            items[start : start + chunk_size]
            for start in range(0, len(items), chunk_size)
        ]
        self.last_shards = len(chunks)
        executor = self._ensure_executor()
        return list(executor.map(_invoke, [(fn, chunk, extra) for chunk in chunks]))

    def map_chunks(
        self,
        fn: Callable[[Sequence[Item], object], List],
        items: Sequence[Item],
        extra: object = None,
    ) -> List:
        """Like :meth:`run_chunks` but concatenates the per-chunk lists.

        This is the right call when *fn* returns one result per input item
        (signatures, verdicts, reads): the concatenation restores the
        original item order.
        """
        results: List = []
        for chunk_result in self.run_chunks(fn, items, extra):
            results.extend(chunk_result)
        return results

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        """Shut down the backing executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        backend = "serial" if self.workers <= 1 else "process"
        return f"WorkerPool(workers={self.workers}, backend={backend!r})"


def as_pool(pool: Optional[WorkerPool], workers: int = 1) -> WorkerPool:
    """*pool* itself, or a serial/process pool built from *workers*.

    Stages accept an optional pool so the pipeline can share one executor
    across all of them; standalone callers (CLI subcommands, direct API
    use) pass ``None`` and get a pool matching their own ``workers`` knob.
    """
    return pool if pool is not None else WorkerPool(workers)
