"""Deterministic seed derivation for parallel pipeline stages.

Sharded stages must produce byte-identical output at any worker count,
which rules out handing a shared ``random.Random`` to workers (the draw
order would depend on the chunking).  Instead every parallel unit of work
— a strand being sequenced, a shuffle, an orientation pass — derives its
own seed from the pipeline seed plus a stable label path.  The derivation
is a cryptographic hash, so nearby labels ("strand", 1) / ("strand", 2)
yield statistically independent streams, unlike small arithmetic schemes
(``base + index``) where neighbouring ``random.Random`` states correlate.
"""

from __future__ import annotations

import hashlib


def derive_seed(base: int, *path: object) -> int:
    """A 64-bit seed derived from *base* and a label path.

    The same ``(base, *path)`` always yields the same seed; any change to
    the base or any path component yields an unrelated one.  Components
    are joined by their ``str()`` with a separator that cannot appear in
    ints or the short labels used here, so ("ab", "c") never collides
    with ("a", "bc").
    """
    text = "\x1f".join(str(component) for component in (base, *path))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
