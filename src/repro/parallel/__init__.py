"""Unified parallel execution layer for the pipeline.

One :class:`WorkerPool` (serial or process-pool backend, chunked fan-out)
serves every embarrassingly-parallel stage, and
:func:`derive_seed` gives sharded stages per-item RNG streams so outputs
are byte-identical at any worker count.  See the module docstrings of
:mod:`repro.parallel.pool` and :mod:`repro.parallel.seeding` for the
design notes.
"""

from repro.parallel.pool import DEFAULT_MIN_ITEMS, WorkerPool, as_pool
from repro.parallel.seeding import derive_seed

__all__ = ["DEFAULT_MIN_ITEMS", "WorkerPool", "as_pool", "derive_seed"]
