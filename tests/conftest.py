"""Shared fixtures and hypothesis configuration."""

import random

import pytest
from hypothesis import HealthCheck, settings

# Property tests exercise algorithmic code whose runtime varies widely per
# example; wall-clock deadlines only produce flaky failures there.
settings.register_profile(
    "toolkit",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("toolkit")


@pytest.fixture
def rng():
    """A deterministic random generator per test."""
    return random.Random(0xC0FFEE)
