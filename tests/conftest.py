"""Shared fixtures and hypothesis configuration."""

import random

import pytest
from hypothesis import HealthCheck, settings

# Property tests exercise algorithmic code whose runtime varies widely per
# example; wall-clock deadlines only produce flaky failures there.
settings.register_profile(
    "toolkit",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("toolkit")


@pytest.fixture
def rng():
    """A deterministic random generator per test."""
    return random.Random(0xC0FFEE)


@pytest.fixture(autouse=True)
def _isolated_runs_dir(tmp_path, monkeypatch):
    """Point the run registry at a per-test directory.

    ``repro pipeline`` / ``repro bench`` record by default; without this
    every CLI test would append to ``.repro/runs`` in the checkout.
    """
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs-registry"))
