"""Tracer behaviour: nesting, durations, attributes, and the no-op path."""

import time

import pytest

from repro.observability import NULL_TRACER, NullTracer, Tracer, as_tracer
from repro.observability.metrics import NULL_REGISTRY


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [child.name for child in tracer.roots[0].children] == [
            "inner.a",
            "inner.b",
        ]

    def test_deep_nesting_and_walk_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert [span.name for span in tracer.walk()] == ["a", "b", "c"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_find_matches_every_occurrence(self):
        tracer = Tracer()
        with tracer.span("loop"):
            for _ in range(3):
                with tracer.span("iteration"):
                    pass
        assert len(tracer.find("iteration")) == 3

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("inner failure")
        # The span closed with a duration and the stack unwound: the next
        # span becomes a new root, not a child of the failed one.
        assert tracer.roots[0].duration > 0
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["boom", "after"]


class TestSpanDuration:
    def test_duration_measures_wall_clock(self):
        tracer = Tracer()
        with tracer.span("sleepy") as span:
            time.sleep(0.02)
        assert span.duration >= 0.015

    def test_parent_covers_children(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                time.sleep(0.01)
        assert parent.duration >= child.duration

    def test_start_offsets_increase(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        first, second = tracer.roots
        assert second.start >= first.start + first.duration


class TestSpanAttributes:
    def test_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("stage", reads=42) as span:
            span.set("clusters", 7)
        assert span.attributes == {"reads": 42, "clusters": 7}

    def test_set_overwrites(self):
        tracer = Tracer()
        with tracer.span("stage", value=1) as span:
            span.set("value", 2)
        assert span.attributes["value"] == 2


class TestNullTracer:
    def test_as_tracer_normalises_none(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert as_tracer(tracer) is tracer

    def test_records_nothing(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set("more", 2)
        assert NULL_TRACER.roots == []
        assert list(NULL_TRACER.walk()) == []
        assert NULL_TRACER.find("anything") == []

    def test_null_span_still_measures_duration(self):
        # Stage rollups (StageTimings etc.) read span.duration even when
        # tracing is disabled, so the no-op span must keep the clock.
        with NULL_TRACER.span("timed") as span:
            time.sleep(0.01)
        assert span.duration >= 0.005

    def test_metrics_are_shared_noops(self):
        assert NULL_TRACER.metrics is NULL_REGISTRY
        counter = NULL_TRACER.metrics.counter("x", label="y")
        counter.inc(10)
        assert counter.value == 0
        assert counter is NULL_TRACER.metrics.counter("other")

    def test_disabled_flag(self):
        assert not NullTracer.enabled
        assert Tracer.enabled

    def test_no_memory_growth(self):
        # The overhead contract: a disabled tracer retains no state no
        # matter how many spans or metric updates run through it.
        registry_size_before = len(NULL_TRACER.metrics._counters)
        for index in range(1000):
            with NULL_TRACER.span("hot.loop", index=index):
                NULL_TRACER.metrics.counter("events").inc()
        assert NULL_TRACER.roots == []
        assert len(NULL_TRACER.metrics._counters) == registry_size_before


class TestReset:
    def test_reset_drops_spans(self):
        tracer = Tracer()
        with tracer.span("old"):
            pass
        tracer.metrics.counter("kept").inc()
        tracer.reset()
        assert tracer.roots == []
        assert tracer.metrics.counter("kept").value == 1
