"""Tracer behaviour: nesting, durations, attributes, and the no-op path."""

import os
import time

import pytest

from repro.observability import NULL_TRACER, NullTracer, Tracer, as_tracer
from repro.observability.metrics import NULL_REGISTRY
from repro.observability.trace import (
    WorkerTracer,
    _NullSpan,
    capture_worker_spans,
    current_worker_tracer,
    worker_span,
)


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [child.name for child in tracer.roots[0].children] == [
            "inner.a",
            "inner.b",
        ]

    def test_deep_nesting_and_walk_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        assert [span.name for span in tracer.walk()] == ["a", "b", "c"]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_find_matches_every_occurrence(self):
        tracer = Tracer()
        with tracer.span("loop"):
            for _ in range(3):
                with tracer.span("iteration"):
                    pass
        assert len(tracer.find("iteration")) == 3

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("inner failure")
        # The span closed with a duration and the stack unwound: the next
        # span becomes a new root, not a child of the failed one.
        assert tracer.roots[0].duration > 0
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["boom", "after"]


class TestSpanDuration:
    def test_duration_measures_wall_clock(self):
        tracer = Tracer()
        with tracer.span("sleepy") as span:
            time.sleep(0.02)
        assert span.duration >= 0.015

    def test_parent_covers_children(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("child") as child:
                time.sleep(0.01)
        assert parent.duration >= child.duration

    def test_start_offsets_increase(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        first, second = tracer.roots
        assert second.start >= first.start + first.duration


class TestSpanAttributes:
    def test_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("stage", reads=42) as span:
            span.set("clusters", 7)
        assert span.attributes == {"reads": 42, "clusters": 7}

    def test_set_overwrites(self):
        tracer = Tracer()
        with tracer.span("stage", value=1) as span:
            span.set("value", 2)
        assert span.attributes["value"] == 2


class TestNullTracer:
    def test_as_tracer_normalises_none(self):
        assert as_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert as_tracer(tracer) is tracer

    def test_records_nothing(self):
        with NULL_TRACER.span("anything", attr=1) as span:
            span.set("more", 2)
        assert NULL_TRACER.roots == []
        assert list(NULL_TRACER.walk()) == []
        assert NULL_TRACER.find("anything") == []

    def test_null_span_still_measures_duration(self):
        # Stage rollups (StageTimings etc.) read span.duration even when
        # tracing is disabled, so the no-op span must keep the clock.
        with NULL_TRACER.span("timed") as span:
            time.sleep(0.01)
        assert span.duration >= 0.005

    def test_metrics_are_shared_noops(self):
        assert NULL_TRACER.metrics is NULL_REGISTRY
        counter = NULL_TRACER.metrics.counter("x", label="y")
        counter.inc(10)
        assert counter.value == 0
        assert counter is NULL_TRACER.metrics.counter("other")

    def test_disabled_flag(self):
        assert not NullTracer.enabled
        assert Tracer.enabled

    def test_no_memory_growth(self):
        # The overhead contract: a disabled tracer retains no state no
        # matter how many spans or metric updates run through it.
        registry_size_before = len(NULL_TRACER.metrics._counters)
        for index in range(1000):
            with NULL_TRACER.span("hot.loop", index=index):
                NULL_TRACER.metrics.counter("events").inc()
        assert NULL_TRACER.roots == []
        assert len(NULL_TRACER.metrics._counters) == registry_size_before


class TestNullSpanIsolation:
    def test_instances_do_not_share_attributes(self):
        # Regression: class-level mutable attributes/children meant one
        # caller writing span.attributes[...] polluted every null span.
        first = _NullSpan()
        second = _NullSpan()
        first.attributes["leak"] = True
        first.children.append(object())
        assert second.attributes == {}
        assert second.children == []

    def test_null_tracer_vends_fresh_spans(self):
        a = NULL_TRACER.span("a")
        b = NULL_TRACER.span("b")
        a.attributes["x"] = 1
        assert b.attributes == {}


class TestReset:
    def test_reset_drops_spans(self):
        tracer = Tracer()
        with tracer.span("old"):
            pass
        tracer.metrics.counter("kept").inc()
        tracer.reset()
        assert tracer.roots == []
        assert tracer.metrics.counter("kept").value == 1

    def test_reset_rebases_epoch(self):
        tracer = Tracer()
        time.sleep(0.03)
        tracer.reset()
        with tracer.span("fresh") as span:
            pass
        # Start offsets are relative to the *new* epoch, not the old one.
        assert span.start < 0.02

    def test_spans_after_reset_become_roots(self):
        tracer = Tracer()
        with tracer.span("before"):
            tracer.reset()
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["after"]


class TestOutOfOrderExit:
    def test_parent_exit_before_child_unwinds_stack(self):
        # Manual __enter__/__exit__ lets callers close spans out of order;
        # _pop must tolerate it so later spans still root correctly.
        tracer = Tracer()
        parent = tracer.span("parent").__enter__()
        child = tracer.span("child").__enter__()
        parent.__exit__(None, None, None)  # parent first: removed mid-stack
        assert tracer.current_span() is child
        child.__exit__(None, None, None)
        assert tracer.current_span() is None
        with tracer.span("later"):
            pass
        assert [root.name for root in tracer.roots] == ["parent", "later"]

    def test_pop_of_unknown_span_is_harmless(self):
        tracer = Tracer()
        with tracer.span("open"):
            stray = tracer.span("stray")
            tracer._pop(stray)  # never pushed: must not corrupt the stack
            assert tracer.current_span().name == "open"


class TestWorkerTracer:
    def test_export_flattens_depth_first_with_parent_indices(self):
        worker = WorkerTracer()
        with worker.span("chunk", items=3):
            with worker.span("inner.a"):
                pass
            with worker.span("inner.b"):
                pass
        worker.inc_counter("calls", 2)
        worker.set_gauge("items_seen", 3)
        export = worker.export()
        assert export["pid"] == os.getpid()
        assert [record["name"] for record in export["spans"]] == [
            "chunk",
            "inner.a",
            "inner.b",
        ]
        assert [record["parent"] for record in export["spans"]] == [-1, 0, 0]
        assert export["counters"] == {"calls": 2}
        assert export["gauges"] == {"items_seen": 3.0}

    def test_attach_round_trip_rebases_and_annotates(self):
        worker = WorkerTracer()
        with worker.span("worker.chunk"):
            with worker.span("nested"):
                pass
        export = worker.export()

        tracer = Tracer()
        with tracer.span("fanout") as calling:
            roots = tracer.attach_worker_export(
                export, chunk_index=2, items=17, base_offset=1.5
            )
        assert len(roots) == 1
        grafted = roots[0]
        assert grafted in calling.children
        assert grafted.attributes["pid"] == os.getpid()
        assert grafted.attributes["chunk_index"] == 2
        assert grafted.attributes["items"] == 17
        assert grafted.start >= 1.5
        assert [child.name for child in grafted.children] == ["nested"]
        # Only roots get the fan-out annotations.
        assert "pid" not in grafted.children[0].attributes

    def test_attach_sums_counters_and_sets_gauges(self):
        tracer = Tracer()
        tracer.metrics.counter("calls").inc(1)
        for value in (2, 3):
            worker = WorkerTracer()
            worker.inc_counter("calls", value)
            worker.set_gauge("latest", value)
            tracer.attach_worker_export(worker.export(), chunk_index=0, items=0)
        assert tracer.metrics.counter("calls").value == 6
        assert tracer.metrics.gauge("latest").value == 3.0

    def test_attach_outside_span_creates_roots(self):
        worker = WorkerTracer()
        with worker.span("worker.chunk"):
            pass
        tracer = Tracer()
        tracer.attach_worker_export(worker.export(), chunk_index=0, items=1)
        assert [root.name for root in tracer.roots] == ["worker.chunk"]


class TestAmbientWorkerCapture:
    def test_worker_span_is_noop_outside_capture(self):
        assert current_worker_tracer() is None
        with worker_span("anything", n=1) as span:
            pass
        assert isinstance(span, _NullSpan)
        assert span.duration >= 0.0

    def test_capture_installs_and_restores(self):
        with capture_worker_spans() as worker:
            assert current_worker_tracer() is worker
            with worker_span("captured", n=2):
                pass
        assert current_worker_tracer() is None
        assert [root.name for root in worker.roots] == ["captured"]
        assert worker.roots[0].attributes == {"n": 2}

    def test_capture_nests_and_restores_previous(self):
        with capture_worker_spans() as outer:
            with capture_worker_spans() as inner:
                assert current_worker_tracer() is inner
            assert current_worker_tracer() is outer
