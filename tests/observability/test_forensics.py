"""Forensics tests: injected faults must be attributed to the right cause.

The acceptance bar for ``repro why``: on seeded runs with a known injected
failure (dropout beyond erasure capacity, sabotaged cluster thresholds),
at least 90% of the failed RS rows are attributed to the injected root
cause, and every strand receives exactly one verdict.
"""

from repro.clustering import ClusteringConfig
from repro.codec import EncodingParameters
from repro.observability import ProvenanceLedger, VERDICTS
from repro.observability.forensics import (
    render_strand_timeline,
    render_why_summary,
)
from repro.observability.provenance import UnitOutcome
from repro.pipeline import Pipeline, PipelineConfig
from repro.simulation import (
    ConstantCoverage,
    IIDChannel,
    InjectedDropoutCoverage,
)

FAST = EncodingParameters(
    payload_bytes=10, data_columns=12, parity_columns=6, index_bytes=2
)


def run_with_ledger(**overrides):
    defaults = dict(
        encoding=FAST,
        channel=IIDChannel.from_total_rate(0.03),
        coverage=ConstantCoverage(5),
        seed=21,
    )
    defaults.update(overrides)
    ledger = ProvenanceLedger()
    result = Pipeline(PipelineConfig(**defaults)).run(
        b"forensics acceptance payload", ledger=ledger
    )
    return result, result.provenance


def attribution_fraction(report, cause: str) -> float:
    attributed = report.summary.failed_row_causes.get(cause, 0)
    return attributed / report.summary.failed_rows


class TestInjectedDropout:
    def test_dropped_strands_are_verdicted_dropout(self):
        dropped = [1, 4, 9]
        result, report = run_with_ledger(
            coverage=InjectedDropoutCoverage(ConstantCoverage(5), dropped)
        )
        for strand_id in dropped:
            assert report.strand(strand_id).verdict == "dropout"
        # Within erasure capacity: the file still decodes, but the error
        # budget must keep charging the dropouts (Organick-style accounting).
        assert result.success
        assert report.summary.verdicts["dropout"] == len(dropped)

    def test_dropout_beyond_parity_attributes_failed_rows(self):
        # 7 dropped columns in unit 0 exceed the 6 parity columns: every
        # row of the unit fails, and forensics must say why.
        dropped = list(range(7))
        result, report = run_with_ledger(
            coverage=InjectedDropoutCoverage(ConstantCoverage(5), dropped)
        )
        assert not result.success
        assert report.summary.failed_rows > 0
        assert attribution_fraction(report, "dropout") >= 0.90
        for strand_id in dropped:
            record = report.strand(strand_id)
            assert record.verdict == "dropout"
            assert record.column_fate == "uncorrectable"

    def test_every_strand_gets_exactly_one_verdict(self):
        _, report = run_with_ledger(
            coverage=InjectedDropoutCoverage(ConstantCoverage(5), [0, 1, 2])
        )
        assert all(record.verdict in VERDICTS for record in report.strands)
        assert sum(report.summary.verdicts.values()) == len(report.strands)


class TestSabotagedClustering:
    def test_merge_everything_yields_misclustered(self):
        # Absurd theta_low: every signature distance "matches", so all
        # reads collapse into one cluster; only its dominant strand gets a
        # consensus and everyone else is misclustered.
        _, report = run_with_ledger(
            clustering=ClusteringConfig(
                theta_low=1e9, theta_high=1e9, sweep_max_size=10**6, seed=1
            ),
        )
        assert report.summary.failed_rows > 0
        misclustered = report.summary.verdicts["misclustered"]
        assert misclustered >= 0.8 * len(report.strands)
        assert attribution_fraction(report, "misclustered") >= 0.90

    def test_merge_nothing_yields_underclustered(self):
        # Zero thresholds: nothing merges, every read is a singleton
        # cluster, and min_cluster_size=2 discards them all.
        _, report = run_with_ledger(
            channel=IIDChannel.from_total_rate(0.06),
            clustering=ClusteringConfig(
                theta_low=0.0, theta_high=0.0, edit_threshold=0,
                sweep_max_size=0, seed=1,
            ),
        )
        assert report.summary.failed_rows > 0
        underclustered = report.summary.verdicts["underclustered"]
        assert underclustered >= 0.8 * len(report.strands)
        assert attribution_fraction(report, "underclustered") >= 0.90


class TestVerdictDecisionTree:
    def synthetic_ledger(self) -> ProvenanceLedger:
        ledger = ProvenanceLedger()
        ledger.record_encoding(["AAAA", "CCCC", "GGGG"], 3, 1)
        ledger.origins = [0, 0, 1, 1]
        ledger.read_edits = [0, 1, 0, 0]
        ledger.sequencing_recorded = True
        ledger.record_clustering([[0, 1], [2, 3]], kept_ids=[0, 1])
        ledger.record_reconstruction(["AAAA", "CCCC"])
        ledger.record_strand_parse(0, 0)
        ledger.record_strand_parse(1, 1)
        return ledger

    def test_dropout_wins_even_when_column_was_rescued(self):
        ledger = self.synthetic_ledger()
        ledger.record_unit(UnitOutcome(unit=0, erased_columns=[2], clean_rows=1))
        report = ledger.finalize()
        assert report.strand(2).verdict == "dropout"
        assert report.strand(2).column_fate == "erased"
        assert report.strand(0).verdict == "ok"

    def test_clean_journey_with_corrected_column_is_ecc_overload(self):
        ledger = self.synthetic_ledger()
        ledger.record_unit(
            UnitOutcome(
                unit=0,
                erased_columns=[2],
                corrected_rows=1,
                corrections_by_column={0: 2},
            )
        )
        report = ledger.finalize()
        assert report.strand(0).verdict == "ecc_overload"
        assert report.strand(0).symbols_corrected == 2
        assert report.strand(1).verdict == "ok"

    def test_wrong_consensus_is_consensus_error(self):
        ledger = self.synthetic_ledger()
        ledger.record_reconstruction(["AAAA", "CCGG"])  # strand 1 corrupted
        ledger.record_unit(UnitOutcome(unit=0, erased_columns=[2]))
        report = ledger.finalize()
        assert report.strand(1).verdict == "consensus_error"

    def test_failed_unit_with_no_journey_fault_blames_the_ecc(self):
        ledger = self.synthetic_ledger()
        ledger.origins = [0, 0, 1, 1]
        ledger.record_encoding(["AAAA", "CCCC"], 2, 1)
        ledger.record_unit(
            UnitOutcome(
                unit=0,
                failed_rows=[0],
                corrections_by_column={0: 1},
            )
        )
        report = ledger.finalize()
        assert report.summary.failed_row_causes == {"ecc_overload": 1}


class TestRendering:
    def test_summary_and_timeline_render(self):
        _, report = run_with_ledger(
            coverage=InjectedDropoutCoverage(ConstantCoverage(5), [2])
        )
        summary = render_why_summary(report)
        assert "per-strand verdicts" in summary
        assert "dropout" in summary
        timeline = render_strand_timeline(report.strand(2))
        assert "strand 2" in timeline
        assert "dropout" in timeline
        healthy = render_strand_timeline(report.strand(3))
        assert "verdict: ok" in healthy
