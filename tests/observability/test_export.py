"""JSONL serialisation round trip, chrome export, and report rendering."""

import json

import pytest

from repro.observability import (
    Tracer,
    load_trace,
    render_report,
    render_span_tree,
    render_tracer_report,
    span_structure,
    to_chrome_trace,
    trace_lines,
    write_chrome_trace,
    write_trace,
)
from repro.observability.export import MAIN_LANE_PID
from repro.observability.trace import WorkerTracer


def make_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("pipeline.run", input_bytes=500):
        with tracer.span("pipeline.clustering", reads=20) as span:
            span.set("clusters", 4)
            with tracer.span("clustering.signatures"):
                pass
        with tracer.span("pipeline.decoding"):
            pass
    tracer.metrics.counter("clusters_formed").inc(4)
    tracer.metrics.counter("reads_discarded", stage="clustering").inc(2)
    tracer.metrics.gauge("theta_low").set(19.5)
    for value in (3, 5, 8):
        tracer.metrics.histogram("reconstruction_cluster_size").observe(value)
    return tracer


class TestJsonlRoundTrip:
    def test_every_line_is_json(self):
        for line in trace_lines(make_tracer()):
            json.loads(line)

    def test_span_tree_survives(self, tmp_path):
        tracer = make_tracer()
        path = write_trace(tracer, tmp_path / "trace.jsonl")
        trace = load_trace(path)

        assert [root.name for root in trace.roots] == ["pipeline.run"]
        assert [span.name for span in trace.walk()] == [
            "pipeline.run",
            "pipeline.clustering",
            "clustering.signatures",
            "pipeline.decoding",
        ]
        original = {span.name: span for span in tracer.walk()}
        for span in trace.walk():
            assert span.duration == pytest.approx(original[span.name].duration)
            assert span.start == pytest.approx(original[span.name].start)
            assert span.attributes == original[span.name].attributes

    def test_metrics_survive(self, tmp_path):
        path = write_trace(make_tracer(), tmp_path / "trace.jsonl")
        trace = load_trace(path)

        counters = {(name, tuple(sorted(labels.items()))): value
                    for name, labels, value in trace.counters}
        assert counters[("clusters_formed", ())] == 4
        assert counters[("reads_discarded", (("stage", "clustering"),))] == 2
        assert trace.gauges == [("theta_low", {}, 19.5)]
        ((name, labels, summary),) = trace.histograms
        assert name == "reconstruction_cluster_size"
        assert summary["count"] == 3
        assert summary["p50"] == pytest.approx(5.0)

    def test_load_accepts_lines_iterable(self):
        trace = load_trace(trace_lines(make_tracer()))
        assert trace.find("clustering.signatures")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            load_trace(['{"kind": "mystery"}'])

    def test_blank_lines_ignored(self):
        lines = list(trace_lines(make_tracer()))
        trace = load_trace(["", *lines, "  "])
        assert trace.roots


def make_fanout_tracer(chunks: int = 2) -> Tracer:
    """A tracer with worker spans stitched under a fan-out span."""
    tracer = Tracer()
    with tracer.span("pipeline.run"):
        with tracer.span("pipeline.simulation") as fanout:
            durations = []
            for chunk_index in range(chunks):
                worker = WorkerTracer()
                with worker.span("worker.chunk", items=5):
                    with worker.span("simulation.sequence_strands"):
                        pass
                export = worker.export()
                # Fake distinct worker pids so lane assignment is testable.
                export["pid"] = 40000 + chunk_index
                tracer.attach_worker_export(
                    export, chunk_index=chunk_index, items=5, base_offset=0.01
                )
                duration = 0.01 * (chunk_index + 1)
                durations.append(duration)
                tracer.metrics.histogram(
                    "worker_chunk_seconds", span=fanout.name
                ).observe(duration)
            tracer.metrics.gauge(
                "worker_load_imbalance", span=fanout.name
            ).set(max(durations) / (sum(durations) / len(durations)))
    return tracer


class TestChromeTrace:
    def test_events_are_complete_events_in_microseconds(self):
        tracer = make_fanout_tracer()
        document = to_chrome_trace(tracer)
        assert document["displayTimeUnit"] == "ms"
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} >= {
            "pipeline.run",
            "pipeline.simulation",
            "worker.chunk",
            "simulation.sequence_strands",
        }
        run = next(e for e in events if e["name"] == "pipeline.run")
        original = tracer.roots[0]
        assert run["ts"] == pytest.approx(original.start * 1e6, abs=0.01)
        assert run["dur"] == pytest.approx(original.duration * 1e6, abs=0.01)
        assert run["pid"] == MAIN_LANE_PID

    def test_worker_spans_get_their_own_pid_lanes(self):
        document = to_chrome_trace(make_fanout_tracer(chunks=3))
        chunk_events = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "worker.chunk"
        ]
        assert len(chunk_events) == 3
        assert {e["pid"] for e in chunk_events} == {40000, 40001, 40002}
        # tid = chunk_index + 1, so chunks sharing an OS pid never overlap.
        assert [e["tid"] for e in sorted(chunk_events, key=lambda e: e["pid"])] == [
            1,
            2,
            3,
        ]
        # Descendants of a worker root inherit its lane.
        nested = [
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "simulation.sequence_strands"
        ]
        assert {e["pid"] for e in nested} == {40000, 40001, 40002}

    def test_process_name_metadata_for_main_and_workers(self):
        document = to_chrome_trace(make_fanout_tracer(chunks=2))
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        names = {e["pid"]: e["args"]["name"] for e in metadata}
        assert names[MAIN_LANE_PID] == "main"
        assert names[40000] == "worker 40000"
        assert names[40001] == "worker 40001"

    def test_round_trips_through_jsonl(self, tmp_path):
        tracer = make_fanout_tracer()
        trace = load_trace(write_trace(tracer, tmp_path / "t.jsonl"))
        assert to_chrome_trace(trace) == to_chrome_trace(tracer)

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        path = write_chrome_trace(make_fanout_tracer(), tmp_path / "chrome.json")
        document = json.loads(path.read_text())
        assert document["traceEvents"]

    def test_attributes_become_args(self):
        document = to_chrome_trace(make_fanout_tracer())
        chunk = next(
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "worker.chunk"
        )
        assert chunk["args"]["items"] == 5
        assert chunk["args"]["chunk_index"] == 0


class TestSpanStructure:
    def test_collapses_same_named_sibling_multiplicity(self):
        assert span_structure(make_fanout_tracer(chunks=1).roots) == span_structure(
            make_fanout_tracer(chunks=4).roots
        )

    def test_detects_renamed_span(self):
        one = make_fanout_tracer()
        other = make_fanout_tracer()
        other.roots[0].name = "renamed"
        assert span_structure(one.roots) != span_structure(other.roots)

    def test_detects_hierarchy_change(self):
        one = make_fanout_tracer()
        other = make_fanout_tracer()
        # Hoist the fan-out's children up a level.
        fanout = other.roots[0].children[0]
        other.roots[0].children = fanout.children
        assert span_structure(one.roots) != span_structure(other.roots)

    def test_empty(self):
        assert span_structure([]) == ()


class TestFanoutBalanceSection:
    def test_report_includes_balance_table(self, tmp_path):
        tracer = make_fanout_tracer(chunks=2)
        trace = load_trace(write_trace(tracer, tmp_path / "t.jsonl"))
        report = render_report(trace)
        assert "fan-out balance" in report
        section = report[report.index("fan-out balance") :]
        row = next(
            line
            for line in section.splitlines()
            if line.startswith("pipeline.simulation") and "|" in line
        )
        columns = [cell.strip() for cell in row.split("|")]
        assert columns[1] == "2"  # chunk count from the histogram
        assert float(columns[4]) == pytest.approx(4 / 3, abs=0.001)

    def test_no_section_without_imbalance_gauges(self, tmp_path):
        trace = load_trace(write_trace(make_tracer(), tmp_path / "t.jsonl"))
        assert "fan-out balance" not in render_report(trace)


class TestReportRendering:
    def test_report_sections(self, tmp_path):
        trace = load_trace(write_trace(make_tracer(), tmp_path / "t.jsonl"))
        report = render_report(trace)
        assert "span latency" in report
        assert "pipeline.clustering" in report
        assert "span tree" in report
        assert "counters" in report
        assert "clusters_formed" in report
        assert "stage=clustering" in report
        assert "gauges" in report
        assert "histograms" in report
        assert "reconstruction_cluster_size" in report

    def test_tree_indentation_follows_nesting(self):
        tracer = make_tracer()
        tree = render_span_tree(tracer.roots)
        lines = tree.splitlines()
        assert lines[0].startswith("pipeline.run")
        assert lines[1].startswith("  pipeline.clustering")
        assert lines[2].startswith("    clustering.signatures")

    def test_render_tracer_report_shortcut(self):
        report = render_tracer_report(make_tracer(), title="live")
        assert report.startswith("live - span latency")

    def test_empty_trace(self):
        assert "empty trace" in render_report(load_trace([]))

    def test_aggregation_counts_repeated_spans(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        report = render_tracer_report(tracer)
        # one aggregated row with calls=3
        row = next(
            line for line in report.splitlines() if line.startswith("repeated")
        )
        assert "| 3 " in row

    def test_equal_duration_spans_sort_by_name(self):
        # Sub-resolution spans routinely tie at duration 0.0; the table
        # must still come out in one deterministic order (name ascending).
        lines = ['{"kind": "meta", "version": 1}']
        for span_id, name in enumerate(["zeta", "alpha", "mid"], start=1):
            lines.append(
                json.dumps(
                    {
                        "kind": "span",
                        "id": span_id,
                        "parent": 0,
                        "name": name,
                        "start": 0.0,
                        "duration": 0.0,
                        "attributes": {},
                    }
                )
            )
        report = render_report(load_trace(lines))
        table = [
            line.split("|")[0].strip()
            for line in report.splitlines()
            if line.startswith(("alpha", "mid", "zeta"))
        ]
        assert table[:3] == ["alpha", "mid", "zeta"]
