"""JSONL serialisation round trip and report rendering."""

import json

import pytest

from repro.observability import (
    Tracer,
    load_trace,
    render_report,
    render_span_tree,
    render_tracer_report,
    trace_lines,
    write_trace,
)


def make_tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("pipeline.run", input_bytes=500):
        with tracer.span("pipeline.clustering", reads=20) as span:
            span.set("clusters", 4)
            with tracer.span("clustering.signatures"):
                pass
        with tracer.span("pipeline.decoding"):
            pass
    tracer.metrics.counter("clusters_formed").inc(4)
    tracer.metrics.counter("reads_discarded", stage="clustering").inc(2)
    tracer.metrics.gauge("theta_low").set(19.5)
    for value in (3, 5, 8):
        tracer.metrics.histogram("reconstruction_cluster_size").observe(value)
    return tracer


class TestJsonlRoundTrip:
    def test_every_line_is_json(self):
        for line in trace_lines(make_tracer()):
            json.loads(line)

    def test_span_tree_survives(self, tmp_path):
        tracer = make_tracer()
        path = write_trace(tracer, tmp_path / "trace.jsonl")
        trace = load_trace(path)

        assert [root.name for root in trace.roots] == ["pipeline.run"]
        assert [span.name for span in trace.walk()] == [
            "pipeline.run",
            "pipeline.clustering",
            "clustering.signatures",
            "pipeline.decoding",
        ]
        original = {span.name: span for span in tracer.walk()}
        for span in trace.walk():
            assert span.duration == pytest.approx(original[span.name].duration)
            assert span.start == pytest.approx(original[span.name].start)
            assert span.attributes == original[span.name].attributes

    def test_metrics_survive(self, tmp_path):
        path = write_trace(make_tracer(), tmp_path / "trace.jsonl")
        trace = load_trace(path)

        counters = {(name, tuple(sorted(labels.items()))): value
                    for name, labels, value in trace.counters}
        assert counters[("clusters_formed", ())] == 4
        assert counters[("reads_discarded", (("stage", "clustering"),))] == 2
        assert trace.gauges == [("theta_low", {}, 19.5)]
        ((name, labels, summary),) = trace.histograms
        assert name == "reconstruction_cluster_size"
        assert summary["count"] == 3
        assert summary["p50"] == pytest.approx(5.0)

    def test_load_accepts_lines_iterable(self):
        trace = load_trace(trace_lines(make_tracer()))
        assert trace.find("clustering.signatures")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            load_trace(['{"kind": "mystery"}'])

    def test_blank_lines_ignored(self):
        lines = list(trace_lines(make_tracer()))
        trace = load_trace(["", *lines, "  "])
        assert trace.roots


class TestReportRendering:
    def test_report_sections(self, tmp_path):
        trace = load_trace(write_trace(make_tracer(), tmp_path / "t.jsonl"))
        report = render_report(trace)
        assert "span latency" in report
        assert "pipeline.clustering" in report
        assert "span tree" in report
        assert "counters" in report
        assert "clusters_formed" in report
        assert "stage=clustering" in report
        assert "gauges" in report
        assert "histograms" in report
        assert "reconstruction_cluster_size" in report

    def test_tree_indentation_follows_nesting(self):
        tracer = make_tracer()
        tree = render_span_tree(tracer.roots)
        lines = tree.splitlines()
        assert lines[0].startswith("pipeline.run")
        assert lines[1].startswith("  pipeline.clustering")
        assert lines[2].startswith("    clustering.signatures")

    def test_render_tracer_report_shortcut(self):
        report = render_tracer_report(make_tracer(), title="live")
        assert report.startswith("live - span latency")

    def test_empty_trace(self):
        assert "empty trace" in render_report(load_trace([]))

    def test_aggregation_counts_repeated_spans(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("repeated"):
                pass
        report = render_tracer_report(tracer)
        # one aggregated row with calls=3
        row = next(
            line for line in report.splitlines() if line.startswith("repeated")
        )
        assert "| 3 " in row

    def test_equal_duration_spans_sort_by_name(self):
        # Sub-resolution spans routinely tie at duration 0.0; the table
        # must still come out in one deterministic order (name ascending).
        lines = ['{"kind": "meta", "version": 1}']
        for span_id, name in enumerate(["zeta", "alpha", "mid"], start=1):
            lines.append(
                json.dumps(
                    {
                        "kind": "span",
                        "id": span_id,
                        "parent": 0,
                        "name": name,
                        "start": 0.0,
                        "duration": 0.0,
                        "attributes": {},
                    }
                )
            )
        report = render_report(load_trace(lines))
        table = [
            line.split("|")[0].strip()
            for line in report.splitlines()
            if line.startswith(("alpha", "mid", "zeta"))
        ]
        assert table[:3] == ["alpha", "mid", "zeta"]
