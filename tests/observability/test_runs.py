"""Run registry: records, fingerprints, concurrency, drift, retention."""

import json
import multiprocessing

import pytest

from repro.clustering import ClusteringConfig
from repro.codec import EncodingParameters
from repro.observability import TelemetrySampler, Tracer
from repro.observability.runs import (
    RUNS_SCHEMA_VERSION,
    RunRecord,
    RunRegistry,
    bench_run_record,
    canonicalize,
    config_fingerprint,
    detect_drift,
    diff_runs,
    flatten_metrics,
    new_run_id,
    pipeline_run_record,
)
from repro.pipeline import Pipeline, PipelineConfig
from repro.simulation import ConstantCoverage, IIDChannel


def make_record(run_id, fingerprint="f" * 64, metrics=None, kind="pipeline",
                created_unix=1_000_000.0, **overrides):
    fields = dict(
        run_id=run_id,
        kind=kind,
        created_unix=created_unix,
        git_sha="deadbeef",
        fingerprint=fingerprint,
        label="payload.bin",
        seed=0,
        workers=1,
        timings={"total": 1.0},
        total_seconds=1.0,
        metrics=metrics or {"success": 1.0, "quality.exact": 0.9},
    )
    fields.update(overrides)
    return RunRecord(**fields)


def fast_config(**overrides):
    defaults = dict(
        encoding=EncodingParameters(
            payload_bytes=12, data_columns=16, parity_columns=8, index_bytes=2
        ),
        channel=IIDChannel.from_total_rate(0.03),
        coverage=ConstantCoverage(8),
        clustering=ClusteringConfig(rounds=12, num_grams=48, seed=1),
        seed=7,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestRunRecord:
    def test_json_round_trip(self):
        record = make_record(
            "20260101T000000Z-aaaa0000",
            load_imbalance={"pipeline.clustering": 1.08},
            peak_rss_bytes=123456,
            samples=[{"t": 0.0, "rss_bytes": 1, "counters": {}, "gauges": {}}],
        )
        clone = RunRecord.from_dict(json.loads(json.dumps(record.as_dict())))
        assert clone == record

    def test_schema_version_leads_the_serialized_form(self):
        payload = make_record("r1").as_dict()
        assert next(iter(payload)) == "schema_version"
        assert payload["schema_version"] == RUNS_SCHEMA_VERSION

    def test_from_dict_rejects_newer_schema(self):
        payload = make_record("r1").as_dict()
        payload["schema_version"] = RUNS_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than supported"):
            RunRecord.from_dict(payload)

    def test_from_dict_ignores_unknown_keys(self):
        payload = make_record("r1").as_dict()
        payload["future_field"] = "whatever"
        assert RunRecord.from_dict(payload).run_id == "r1"

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            make_record("r1", kind="mystery")

    def test_run_ids_are_unique_and_sortable(self):
        ids = {new_run_id(1_700_000_000.0) for _ in range(32)}
        assert len(ids) == 32
        assert all(run_id.startswith("2023") for run_id in ids)


class TestFingerprint:
    def test_identical_configs_fingerprint_equal(self):
        assert config_fingerprint(fast_config()) == config_fingerprint(fast_config())

    def test_seed_change_changes_fingerprint(self):
        assert config_fingerprint(fast_config()) != config_fingerprint(
            fast_config(seed=8)
        )

    def test_channel_class_is_part_of_the_fingerprint(self):
        from repro.simulation import SOLQCChannel

        assert config_fingerprint(fast_config()) != config_fingerprint(
            fast_config(channel=SOLQCChannel())
        )

    def test_dict_key_order_is_canonicalized(self):
        assert config_fingerprint({"a": 1, "b": 2.5}) == config_fingerprint(
            {"b": 2.5, "a": 1}
        )

    def test_canonicalize_tags_object_types(self):
        canon = canonicalize(fast_config())
        assert canon["__type__"].endswith("PipelineConfig")
        assert canon["encoding"]["__type__"].endswith("EncodingParameters")


class TestFlattenMetrics:
    def test_nested_numeric_leaves(self):
        flat = flatten_metrics(
            {"a": {"b": 2, "ok": True}, "s": "skip", "schema_version": 9}
        )
        assert flat == {"a.b": 2.0, "a.ok": 1.0}


class TestRegistry:
    def test_append_and_read_back(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.append(make_record("r1"))
        registry.append(make_record("r2"))
        assert [r.run_id for r in registry.records()] == ["r1", "r2"]
        index = registry.index()
        assert index["count"] == 2
        assert index["last_run_id"] == "r2"
        assert index["fingerprints"] == {"f" * 64: 2}

    def test_get_by_unique_prefix(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.append(make_record("20260101T000000Z-aaaa0000"))
        registry.append(make_record("20260102T000000Z-bbbb0000"))
        assert registry.get("20260102").run_id == "20260102T000000Z-bbbb0000"
        with pytest.raises(KeyError, match="ambiguous"):
            registry.get("2026")
        with pytest.raises(KeyError, match="no run"):
            registry.get("zzz")

    def test_latest_filters_by_kind(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.append(make_record("p1"))
        registry.append(make_record("b1", kind="bench"))
        assert registry.latest().run_id == "b1"
        assert registry.latest(kind="pipeline").run_id == "p1"

    def test_trailing_window_same_fingerprint_only(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        for i in range(5):
            registry.append(make_record(f"a{i}", fingerprint="a" * 64))
        registry.append(make_record("other", fingerprint="b" * 64))
        trailing = registry.trailing("a" * 64, "pipeline", before="a4", window=3)
        assert [r.run_id for r in trailing] == ["a1", "a2", "a3"]

    def test_two_process_concurrent_append(self, tmp_path):
        root = tmp_path / "runs"

        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_append_many, args=(str(root), label, 10))
            for label in ("p", "q")
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
        assert all(proc.exitcode == 0 for proc in procs)
        registry = RunRegistry(root)
        records = registry.records()  # every line parses: no torn writes
        assert len(records) == 20
        assert {r.run_id for r in records} == {
            f"{label}{i}" for label in ("p", "q") for i in range(10)
        }
        assert registry.index()["count"] == 20

    def test_gc_by_count_keeps_newest(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        for i in range(6):
            registry.append(make_record(f"r{i}", created_unix=1000.0 + i))
        kept, removed = registry.gc(max_count=2)
        assert (kept, removed) == (2, 4)
        assert [r.run_id for r in registry.records()] == ["r4", "r5"]
        assert registry.index()["count"] == 2

    def test_gc_by_age(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        day = 86400.0
        registry.append(make_record("old", created_unix=0.0))
        registry.append(make_record("new", created_unix=9 * day))
        kept, removed = registry.gc(max_age_days=2, now=10 * day)
        assert (kept, removed) == (1, 1)
        assert registry.records()[0].run_id == "new"

    def test_gc_requires_a_policy(self, tmp_path):
        with pytest.raises(ValueError):
            RunRegistry(tmp_path / "runs").gc()


def _append_many(root, label, count):
    registry = RunRegistry(root)
    for i in range(count):
        registry.append(make_record(f"{label}{i}"))


class TestDrift:
    def test_empty_registry_is_ok_with_warning(self, tmp_path):
        result = detect_drift(RunRegistry(tmp_path / "runs"))
        assert result.ok
        assert "empty" in result.warnings[0]

    def test_first_run_of_a_fingerprint_cannot_drift(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.append(make_record("r1"))
        result = detect_drift(registry)
        assert result.ok
        assert "first run" in result.warnings[0]

    def test_stable_history_passes(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        for i in range(4):
            registry.append(make_record(f"r{i}"))
        assert detect_drift(registry).ok

    def test_injected_regression_fails(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        for i in range(3):
            registry.append(make_record(f"r{i}"))
        registry.append(
            make_record("bad", metrics={"success": 1.0, "quality.exact": 0.5})
        )
        result = detect_drift(registry)
        assert not result.ok
        assert any("quality.exact" in r for r in result.regressions)

    def test_small_drift_within_tolerance_passes(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.append(make_record("r0"))
        registry.append(
            make_record("r1", metrics={"success": 1.0, "quality.exact": 0.94})
        )
        assert detect_drift(registry, tolerance=0.10).ok
        assert not detect_drift(registry, tolerance=0.01).ok

    def test_different_fingerprint_history_is_ignored(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        registry.append(
            make_record("other", fingerprint="b" * 64, metrics={"success": 0.0})
        )
        registry.append(make_record("r1"))
        result = detect_drift(registry)
        assert result.ok
        assert "first run" in result.warnings[0]

    def test_diff_runs_warns_on_fingerprint_mismatch(self):
        a = make_record("a", fingerprint="a" * 64)
        b = make_record("b", fingerprint="b" * 64)
        result = diff_runs(a, b)
        assert result.ok  # same metrics: no drift, just the warning
        assert any("fingerprints differ" in w for w in result.warnings)


class TestRecordBuilders:
    def test_bench_run_record_from_report(self):
        report = {
            "suite": "smoke",
            "git_sha": "cafebabe",
            "workloads": [
                {
                    "name": "w1",
                    "params": {"coverage": 8},
                    "data_bytes": 500,
                    "repeats": 1,
                    "workers": 1,
                    "success_rate": 1.0,
                    "latency_s": {"total": {"p50": 0.25}},
                    "quality": {"decoding": {"clean_rows": 4}},
                }
            ],
        }
        record = bench_run_record(report, now=1_700_000_000.0)
        assert record.kind == "bench"
        assert record.label == "smoke"
        assert record.metrics["w1.success_rate"] == 1.0
        assert record.metrics["w1.quality.decoding.clean_rows"] == 4.0
        assert record.timings["w1.total_p50"] == 0.25
        # The fingerprint covers suite identity, not measured outcomes.
        report2 = json.loads(json.dumps(report))
        report2["workloads"][0]["success_rate"] = 0.0
        assert bench_run_record(report2).fingerprint == record.fingerprint
        report3 = json.loads(json.dumps(report))
        report3["workloads"][0]["params"]["coverage"] = 9
        assert bench_run_record(report3).fingerprint != record.fingerprint

    def test_pipeline_run_record_end_to_end(self):
        config = fast_config()
        data = b"flight recorder" * 8
        tracer = Tracer()
        with TelemetrySampler(tracer.metrics, interval=0.01) as sampler:
            result = Pipeline(config).run(data, tracer=tracer, sampler=None)
        record = pipeline_run_record(
            config,
            result,
            data_bytes=len(data),
            label="inline",
            samples=sampler.samples,
            tracer=tracer,
        )
        assert record.kind == "pipeline"
        assert record.seed == config.seed
        assert record.fingerprint == config_fingerprint(fast_config())
        assert record.metrics["success"] == 1.0
        assert record.metrics["data_bytes"] == float(len(data))
        assert any(key.startswith("quality.") for key in record.metrics)
        assert set(record.timings) >= {"encoding", "decoding", "total"}
        assert record.total_seconds > 0
        assert record.peak_rss_bytes > 0
        assert len(record.samples) >= 2
        # Same config, fresh run: the fingerprint is reproducible, so the
        # record lands in the same drift stream.
        result2 = Pipeline(fast_config()).run(data)
        record2 = pipeline_run_record(
            fast_config(), result2, data_bytes=len(data)
        )
        assert record2.fingerprint == record.fingerprint
        assert record2.metrics == record.metrics  # seeded: bit-reproducible
