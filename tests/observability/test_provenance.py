"""Provenance ledger tests: recording, export, and worker determinism."""

import json

import pytest

from repro.codec import EncodingParameters
from repro.observability import (
    NULL_LEDGER,
    ProvenanceLedger,
    ProvenanceReport,
    StrandProvenance,
    UnitOutcome,
    as_ledger,
    ledger_lines,
    load_ledger,
    write_ledger,
)
from repro.observability.provenance import ProvenanceSummary
from repro.pipeline import Pipeline, PipelineConfig
from repro.simulation import ConstantCoverage, IIDChannel

FAST = EncodingParameters(
    payload_bytes=10, data_columns=12, parity_columns=6, index_bytes=2
)


def fast_config(**overrides) -> PipelineConfig:
    defaults = dict(
        encoding=FAST,
        channel=IIDChannel.from_total_rate(0.03),
        coverage=ConstantCoverage(5),
        seed=11,
    )
    defaults.update(overrides)
    return PipelineConfig(**defaults)


class TestLedgerRecording:
    def test_pipeline_attaches_report(self):
        ledger = ProvenanceLedger()
        result = Pipeline(fast_config()).run(b"provenance!", ledger=ledger)
        report = result.provenance
        assert report is not None
        assert len(report.strands) == len(result.encoded.references)
        # strand id is the reference index: unit * n + column
        n = FAST.total_columns
        for record in report.strands:
            assert record.strand_id == record.unit * n + record.column
        assert report.summary.strands == len(report.strands)
        assert report.summary.reads == len(result.sequencing.reads)

    def test_every_strand_gets_exactly_one_verdict(self):
        ledger = ProvenanceLedger()
        result = Pipeline(fast_config()).run(b"one verdict each", ledger=ledger)
        summary = result.provenance.summary
        assert sum(summary.verdicts.values()) == summary.strands

    def test_quality_report_carries_verdict_counts(self):
        ledger = ProvenanceLedger()
        result = Pipeline(fast_config()).run(b"quality section", ledger=ledger)
        section = result.quality.provenance
        assert section is not None
        assert section.strands == result.provenance.summary.strands
        assert section.ok + section.failures == section.strands
        payload = result.quality.as_dict()
        assert payload["provenance"]["strands"] == section.strands

    def test_read_edits_recorded_per_read(self):
        ledger = ProvenanceLedger()
        result = Pipeline(fast_config()).run(b"edit distances", ledger=ledger)
        record = result.provenance.strands[0]
        assert len(record.read_edits) == record.reads

    def test_primer_configs_disable_the_ledger(self):
        from repro.codec.primers import PrimerPair

        encoding = EncodingParameters(
            payload_bytes=10,
            data_columns=12,
            parity_columns=6,
            index_bytes=2,
            primer_pair=PrimerPair(
                forward="ACGTACGTACGTACGTACGT", reverse="TGCATGCATGCATGCATGCA"
            ),
        )
        ledger = ProvenanceLedger()
        result = Pipeline(fast_config(encoding=encoding)).run(
            b"primer path", ledger=ledger
        )
        assert result.provenance is None
        assert not ledger.references  # nothing was recorded


class TestWorkerDeterminism:
    def test_ledger_byte_identical_at_any_worker_count(self):
        texts = []
        for workers in (1, 4):
            ledger = ProvenanceLedger()
            Pipeline(fast_config(workers=workers)).run(
                b"determinism across workers", ledger=ledger
            )
            texts.append("\n".join(ledger_lines(ledger.finalize())))
        assert texts[0] == texts[1]


class TestNoOpPath:
    def test_null_ledger_retains_nothing(self):
        NULL_LEDGER.record_encoding(["ACGT"], 1, 1)
        NULL_LEDGER.record_clustering([[0]], [0])
        NULL_LEDGER.record_strand_parse(0, 0)
        NULL_LEDGER.record_unit(UnitOutcome(unit=0))
        assert not NULL_LEDGER.enabled
        assert NULL_LEDGER.finalize().strands == []
        assert not hasattr(NULL_LEDGER, "references")

    def test_as_ledger_normalises_none(self):
        assert as_ledger(None) is NULL_LEDGER
        real = ProvenanceLedger()
        assert as_ledger(real) is real

    def test_pipeline_without_ledger_has_no_provenance(self):
        result = Pipeline(fast_config()).run(b"no ledger")
        assert result.provenance is None
        assert result.quality.provenance is None


class TestJSONLRoundTrip:
    def build_report(self) -> ProvenanceReport:
        ledger = ProvenanceLedger()
        result = Pipeline(fast_config()).run(b"round trip me", ledger=ledger)
        return result.provenance

    def test_round_trip_preserves_everything(self, tmp_path):
        report = self.build_report()
        path = write_ledger(report, tmp_path / "ledger.jsonl")
        loaded = load_ledger(path)
        assert len(loaded.strands) == len(report.strands)
        for original, restored in zip(report.strands, loaded.strands):
            assert restored == original
        assert loaded.units == report.units
        assert loaded.summary.verdicts == {
            v: report.summary.verdicts.get(v, 0)
            for v in loaded.summary.verdicts
        }

    def test_lines_are_self_describing_json(self):
        report = self.build_report()
        kinds = [json.loads(line)["kind"] for line in ledger_lines(report)]
        assert kinds[0] == "meta"
        assert kinds[-1] == "summary"
        assert kinds.count("strand") == len(report.strands)

    def test_newer_schema_rejected(self):
        with pytest.raises(ValueError, match="newer than supported"):
            load_ledger(['{"kind": "meta", "version": 99}'])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown ledger record"):
            load_ledger(['{"kind": "mystery"}'])

    def test_strand_record_round_trips_alone(self):
        record = StrandProvenance(
            strand_id=3, unit=0, column=3, reads=2, read_ids=[1, 9],
            read_edits=[0, 4], column_fate="corrected", symbols_corrected=1,
            verdict="ok",
        )
        assert StrandProvenance.from_dict(record.as_dict()) == record

    def test_summary_orders_keys_deterministically(self):
        summary = ProvenanceSummary(
            strands=2,
            verdicts={"ok": 1, "dropout": 1},
            failed_rows=1,
            failed_row_causes={"dropout": 1},
        )
        payload = summary.as_dict()
        assert list(payload["verdicts"]) == [
            "dropout", "underclustered", "misclustered",
            "consensus_error", "ecc_overload", "ok",
        ]
