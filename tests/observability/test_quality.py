"""QualityReport structure, JSON round-trip, and gauge emission tests."""

import json

import pytest

from repro.observability import (
    QUALITY_SCHEMA_VERSION,
    ChannelQuality,
    ClusteringQuality,
    DecodingQuality,
    MetricsRegistry,
    QualityReport,
    ReconstructionQuality,
)


def full_report() -> QualityReport:
    return QualityReport(
        channel=ChannelQuality(
            reads_sampled=64,
            bases_compared=8448,
            substitution_rate=0.021,
            insertion_rate=0.018,
            deletion_rate=0.019,
            mean_length_delta=-0.125,
            max_length_delta=5,
            expected_substitution_rate=0.02,
            expected_insertion_rate=0.02,
            expected_deletion_rate=0.02,
        ),
        clustering=ClusteringQuality(
            clusters=56,
            true_clusters=56,
            purity=0.98,
            fragmentation=2,
            under_merged=1,
            over_merged=1,
        ),
        reconstruction=ReconstructionQuality(
            strands=56,
            exact_matches=52,
            mean_edit_distance=0.3,
            p90_edit_distance=1.0,
            max_edit_distance=4,
        ),
        decoding=DecodingQuality(
            clean_rows=30,
            corrected_rows=5,
            failed_rows=1,
            symbols_corrected=9,
            erasures=3,
            bytes_recovered=400,
            success=True,
        ),
    )


class TestRoundTrip:
    def test_full_report_survives_json(self):
        report = full_report()
        payload = json.loads(json.dumps(report.as_dict()))
        assert QualityReport.from_dict(payload) == report

    def test_partial_report_survives_json(self):
        report = QualityReport(decoding=DecodingQuality(bytes_recovered=7))
        payload = json.loads(json.dumps(report.as_dict()))
        restored = QualityReport.from_dict(payload)
        assert restored == report
        assert restored.channel is None
        assert restored.clustering is None
        assert restored.reconstruction is None

    def test_as_dict_carries_schema_and_derived_fields(self):
        payload = full_report().as_dict()
        assert payload["schema_version"] == QUALITY_SCHEMA_VERSION
        assert payload["reconstruction"]["exact_recovery_fraction"] == (
            pytest.approx(52 / 56)
        )
        assert payload["decoding"]["clean_row_fraction"] == pytest.approx(30 / 36)

    def test_unknown_keys_ignored(self):
        payload = full_report().as_dict()
        payload["clustering"]["a_future_field"] = 42
        assert QualityReport.from_dict(payload) == full_report()

    def test_newer_schema_rejected(self):
        payload = full_report().as_dict()
        payload["schema_version"] = QUALITY_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            QualityReport.from_dict(payload)


class TestDerived:
    def test_channel_total_rates(self):
        channel = full_report().channel
        assert channel.total_rate == pytest.approx(0.058)
        assert channel.expected_total_rate == pytest.approx(0.06)

    def test_expected_total_none_when_unknown(self):
        assert ChannelQuality(substitution_rate=0.01).expected_total_rate is None

    def test_zero_division_guards(self):
        assert ReconstructionQuality().exact_recovery_fraction == 0.0
        assert DecodingQuality().clean_row_fraction == 0.0


class TestEmit:
    def test_gauges_recorded(self):
        metrics = MetricsRegistry()
        full_report().emit(metrics)
        gauges = {
            (name, tuple(sorted(labels.items()))): gauge.value
            for name, labels, gauge in metrics.gauges()
        }
        assert gauges[("channel_observed_rate", (("kind", "sub"),))] == 0.021
        assert gauges[("cluster_purity", ())] == 0.98
        assert gauges[("reconstruction_exact_recovery", ())] == (
            pytest.approx(52 / 56)
        )
        assert gauges[("decode_bytes_recovered", ())] == 400

    def test_empty_report_emits_nothing(self):
        metrics = MetricsRegistry()
        QualityReport().emit(metrics)
        assert not list(metrics.gauges())
