"""Background telemetry sampler: monotonic series, clean start/stop."""

import threading
import time

import pytest

from repro.observability import MetricsRegistry, TelemetrySampler, current_rss_bytes


class TestCurrentRss:
    def test_positive_on_this_platform(self):
        # A live CPython interpreter is well past a megabyte resident.
        assert current_rss_bytes() > 1024 * 1024


class TestTelemetrySampler:
    def test_collects_at_least_two_monotonic_samples(self):
        registry = MetricsRegistry()
        sampler = TelemetrySampler(registry, interval=0.01)
        sampler.start()
        time.sleep(0.08)
        samples = sampler.stop()
        assert len(samples) >= 2
        times = [sample["t"] for sample in samples]
        assert all(later > earlier for earlier, later in zip(times, times[1:]))
        assert all(sample["rss_bytes"] > 0 for sample in samples)

    def test_samples_carry_counter_and_gauge_values(self):
        registry = MetricsRegistry()
        registry.counter("strands").inc(7)
        registry.gauge("depth", stage="clustering").set(1.5)
        with TelemetrySampler(registry, interval=0.01) as sampler:
            time.sleep(0.03)
        final = sampler.samples[-1]
        assert final["counters"]["strands"] == 7
        assert final["gauges"]["depth{stage=clustering}"] == 1.5

    def test_context_manager_stops_on_exception(self):
        registry = MetricsRegistry()
        sampler = TelemetrySampler(registry, interval=0.01)
        with pytest.raises(RuntimeError):
            with sampler:
                assert sampler.running
                raise RuntimeError("boom")
        assert not sampler.running
        assert len(sampler.samples) >= 2  # first sample + final sample

    def test_start_twice_raises(self):
        sampler = TelemetrySampler(MetricsRegistry(), interval=0.05)
        sampler.start()
        try:
            with pytest.raises(RuntimeError):
                sampler.start()
        finally:
            sampler.stop()

    def test_stop_is_idempotent(self):
        sampler = TelemetrySampler(MetricsRegistry(), interval=0.01)
        assert sampler.stop() == []  # never started: nothing collected
        sampler.start()
        first = sampler.stop()
        assert sampler.stop() == first  # second stop adds no samples

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TelemetrySampler(MetricsRegistry(), interval=0.0)

    def test_writer_thread_races_sampler_cleanly(self):
        # The satellite stress test: a writer hammering the registry while
        # the sampler snapshots it.  No exceptions, no lost increments,
        # and every sampled counter value is a real intermediate state.
        registry = MetricsRegistry()
        counter = registry.counter("work")
        total = 50_000

        def writer():
            for _ in range(total):
                counter.inc()
                registry.gauge("progress").set(counter.value)

        with TelemetrySampler(registry, interval=0.002) as sampler:
            thread = threading.Thread(target=writer)
            thread.start()
            thread.join()
        assert counter.value == total
        observed = [
            sample["counters"].get("work", 0) for sample in sampler.samples
        ]
        assert observed == sorted(observed)  # counters only go up
        assert all(0 <= value <= total for value in observed)
        assert sampler.samples[-1]["counters"]["work"] == total
