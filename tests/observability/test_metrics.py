"""Metrics registry: counters, gauges, histograms and percentile math."""

import pytest

from repro.observability import Histogram, MetricsRegistry, percentile


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_single_value(self):
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0

    def test_median_of_odd_count(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_interpolates_even_count(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_bounds(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_linear_interpolation_matches_numpy_convention(self):
        # numpy.percentile([10,20,30,40], 90, method="linear") == 37.0
        assert percentile([10, 20, 30, 40], 90) == pytest.approx(37.0)

    def test_hundred_values(self):
        values = list(range(1, 101))  # 1..100
        assert percentile(values, 50) == pytest.approx(50.5)
        assert percentile(values, 90) == pytest.approx(90.1)
        assert percentile(values, 99) == pytest.approx(99.01)

    def test_order_independent(self):
        assert percentile([9, 1, 5], 50) == percentile([1, 5, 9], 50)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("events").inc(-1)

    def test_get_or_create_is_keyed_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("reads_discarded", stage="clustering")
        b = registry.counter("reads_discarded", stage="clustering")
        c = registry.counter("reads_discarded", stage="decoding")
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("m", x=1, y=2)
        b = registry.counter("m", y=2, x=1)
        assert a is b


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("queue_depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_summary_percentiles(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["p50"] == pytest.approx(50.5)
        assert summary["p90"] == pytest.approx(90.1)
        assert summary["p99"] == pytest.approx(99.01)

    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0, "sum": 0.0}

    def test_quantile_delegates_to_percentile(self):
        histogram = Histogram()
        for value in (4, 8, 6, 2):
            histogram.observe(value)
        assert histogram.quantile(50) == 5.0


class TestRegistryIteration:
    def test_sorted_stable_iteration(self):
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.counter("alpha").inc(2)
        names = [name for name, _, _ in registry.counters()]
        assert names == ["alpha", "zebra"]

    def test_len_counts_all_instrument_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        assert len(registry) == 3

    def test_merge_sums_counters_and_extends_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("n").inc(2)
        right.counter("n").inc(3)
        right.histogram("h").observe(1.0)
        left.merge(right)
        assert left.counter("n").value == 5
        assert left.histogram("h").count == 1


class TestThreadSafety:
    def test_concurrent_counter_increments_sum_exactly(self):
        import threading

        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def work():
            for _ in range(5000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 20000

    def test_concurrent_histogram_observes_keep_every_sample(self):
        import threading

        histogram = MetricsRegistry().histogram("latency")

        def work():
            for value in range(3000):
                histogram.observe(float(value))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert histogram.count == 12000
        assert histogram.summary()["count"] == 12000

    def test_instrument_creation_races_snapshot(self):
        # A writer thread creating fresh instruments must never corrupt a
        # concurrent snapshot (the classic RuntimeError: dict changed size
        # during iteration without the registry lock).
        import threading

        registry = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                registry.counter(f"c{i % 50}", shard=str(i % 7)).inc()
                registry.gauge(f"g{i % 50}").set(i)
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    registry.snapshot()
            except Exception as error:  # pragma: no cover - the failure mode
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.3)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []

    def test_snapshot_is_a_consistent_copy(self):
        registry = MetricsRegistry()
        registry.counter("reads", stage="clustering").inc(3)
        registry.gauge("depth").set(2.5)
        registry.histogram("lat").observe(1.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"reads{stage=clustering}": 3}
        assert snap["gauges"] == {"depth": 2.5}
        assert snap["histograms"]["lat"]["count"] == 1
        # Mutations after the snapshot must not leak into it.
        registry.counter("reads", stage="clustering").inc()
        assert snap["counters"]["reads{stage=clustering}"] == 3

    def test_null_registry_snapshot_is_empty(self):
        from repro.observability import NULL_REGISTRY

        snap = NULL_REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_registry_survives_pickling(self):
        import pickle

        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        registry.histogram("h").observe(1.5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counter("n").value == 2
        clone.counter("n").inc()  # the recreated lock must work
        assert clone.counter("n").value == 3
        assert clone.histogram("h").count == 1


class TestProcessGauges:
    def test_records_rss_and_cpu(self):
        from repro.observability import emit_process_gauges

        registry = MetricsRegistry()
        emit_process_gauges(registry)
        gauges = {name: gauge.value for name, _, gauge in registry.gauges()}
        # A running Python interpreter has spent memory and CPU.
        assert gauges["process_peak_rss_bytes"] > 1024 * 1024
        assert gauges["process_user_cpu_seconds"] > 0
        assert gauges["process_sys_cpu_seconds"] >= 0

    def test_last_write_wins(self):
        from repro.observability import emit_process_gauges

        registry = MetricsRegistry()
        emit_process_gauges(registry)
        first = registry.gauge("process_peak_rss_bytes").value
        emit_process_gauges(registry)
        assert registry.gauge("process_peak_rss_bytes").value >= first
