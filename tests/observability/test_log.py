"""Structured logging tests: formatters, level resolution, idempotency."""

import io
import json
import logging

import pytest

from repro.observability.log import (
    HumanFormatter,
    JSONFormatter,
    ROOT_LOGGER,
    configure_logging,
    get_logger,
    resolve_level,
)


@pytest.fixture(autouse=True)
def reset_logging():
    """Leave the repro logger tree the way the session found it."""
    logger = logging.getLogger(ROOT_LOGGER)
    saved = list(logger.handlers)
    saved_level = logger.level
    saved_propagate = logger.propagate
    yield
    logger.handlers[:] = saved
    logger.setLevel(saved_level)
    logger.propagate = saved_propagate


class TestLoggerScoping:
    def test_component_loggers_nest_under_repro(self):
        assert get_logger("pipeline").name == "repro.pipeline"
        assert get_logger("cli").parent.name.startswith("repro")

    def test_library_is_silent_without_configuration(self):
        logger = logging.getLogger(ROOT_LOGGER)
        assert any(
            isinstance(handler, logging.NullHandler)
            for handler in logger.handlers
        )


class TestResolveLevel:
    def test_explicit_name_wins(self):
        assert resolve_level("error", verbosity=5) == logging.ERROR
        assert resolve_level("debug") == logging.DEBUG

    def test_verbosity_steps(self):
        assert resolve_level(None, 0) == logging.WARNING
        assert resolve_level(None, 1) == logging.INFO
        assert resolve_level(None, 2) == logging.DEBUG
        assert resolve_level(None, 7) == logging.DEBUG


class TestConfigure:
    def test_human_format(self):
        stream = io.StringIO()
        configure_logging(logging.INFO, fmt="human", stream=stream)
        get_logger("cli").info("trace written to %s", "out.jsonl")
        assert stream.getvalue() == "info cli: trace written to out.jsonl\n"

    def test_json_format_emits_parseable_records(self):
        stream = io.StringIO()
        configure_logging(logging.INFO, fmt="json", stream=stream)
        get_logger("pipeline").warning("cluster %d discarded", 3)
        record = json.loads(stream.getvalue())
        assert record["level"] == "warning"
        assert record["component"] == "repro.pipeline"
        assert record["message"] == "cluster 3 discarded"
        assert "ts" in record

    def test_reconfiguration_replaces_handlers(self):
        first, second = io.StringIO(), io.StringIO()
        configure_logging(logging.INFO, stream=first)
        configure_logging(logging.INFO, stream=second)
        get_logger("cli").info("only once")
        assert first.getvalue() == ""
        assert second.getvalue().count("only once") == 1

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging(logging.WARNING, stream=stream)
        get_logger("cli").info("hidden")
        get_logger("cli").warning("shown")
        assert "hidden" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="log format"):
            configure_logging(fmt="xml")


class TestFormatters:
    def make_record(self, name="repro.cli", msg="hello"):
        return logging.LogRecord(name, logging.INFO, __file__, 1, msg, (), None)

    def test_human_strips_root_prefix(self):
        assert HumanFormatter().format(self.make_record()) == "info cli: hello"

    def test_json_includes_exception_text(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys

            record = self.make_record()
            record.exc_info = sys.exc_info()
        payload = json.loads(JSONFormatter().format(record))
        assert "boom" in payload["exception"]
