"""Per-stage profiling: tracemalloc/GC attributes on top-level spans."""

import tracemalloc

from repro.observability import StageProfiler, Tracer

PROFILE_KEYS = ("mem_current_kb", "mem_peak_kb", "gc_collections")


class TestProfilingTracer:
    def test_top_level_spans_gain_memory_attributes(self):
        tracer = Tracer(profile=True)
        try:
            with tracer.span("pipeline.run"):
                with tracer.span("pipeline.encoding") as stage:
                    payload = bytearray(256 * 1024)
                    del payload
        finally:
            tracer.profiler.close()
        root = tracer.roots[0]
        for span in (root, stage):
            for key in PROFILE_KEYS:
                assert key in span.attributes, (span.name, key)
        assert stage.attributes["mem_peak_kb"] >= 256
        # The child's peak folds into the parent (tracemalloc's peak is
        # process-global and gets reset at every profiled enter).
        assert root.attributes["mem_peak_kb"] >= stage.attributes["mem_peak_kb"]

    def test_deep_spans_are_not_profiled(self):
        tracer = Tracer(profile=True)
        try:
            with tracer.span("root"):
                with tracer.span("stage"):
                    with tracer.span("detail") as deep:
                        pass
        finally:
            tracer.profiler.close()
        assert not any(key in deep.attributes for key in PROFILE_KEYS)

    def test_default_tracer_does_not_profile(self):
        tracer = Tracer()
        assert tracer.profiler is None
        with tracer.span("stage") as span:
            pass
        assert not any(key in span.attributes for key in PROFILE_KEYS)


class TestStageProfiler:
    def test_exit_ignores_spans_it_never_entered(self):
        profiler = StageProfiler()
        try:
            tracer = Tracer()
            with tracer.span("outer") as outer:
                profiler.enter(outer)
                with tracer.span("unprofiled") as inner:
                    pass
                assert profiler.exit(inner) is False
            assert profiler.exit(outer) is True
        finally:
            profiler.close()

    def test_close_is_idempotent_and_stops_own_tracing(self):
        was_tracing = tracemalloc.is_tracing()
        profiler = StageProfiler()
        tracer = Tracer()
        with tracer.span("stage") as span:
            profiler.enter(span)
        profiler.exit(span)
        profiler.close()
        profiler.close()
        # Only stops tracemalloc when it was the one to start it.
        assert tracemalloc.is_tracing() == was_tracing
