"""Tests for the unified worker-pool layer (`repro.parallel`)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import Tracer, span_structure
from repro.parallel import DEFAULT_MIN_ITEMS, WorkerPool, as_pool, derive_seed
from repro.parallel.pool import plan_chunks


def _double_chunk(items, extra):
    """Module-level (picklable) worker: doubles every item, adds extra."""
    return [item * 2 + extra for item in items]


def _summarise_chunk(items, extra):
    """Worker returning one aggregate per chunk (run_chunks interface)."""
    return (len(items), sum(items))


def _traced_chunk(items, extra):
    """Picklable worker that records its own worker-side spans and metrics."""
    from repro.observability.trace import current_worker_tracer, worker_span

    with worker_span("chunk.work", n=len(items)):
        with worker_span("chunk.inner"):
            pass
    tracer = current_worker_tracer()
    if tracer is not None:
        tracer.inc_counter("chunk_calls")
        tracer.set_gauge("chunk_items", len(items))
    return [item + 1 for item in items]


def _raising_chunk(items, extra):
    raise RuntimeError("worker exploded")


class TestWorkerPool:
    def test_serial_map(self):
        with WorkerPool(1) as pool:
            assert pool.map_chunks(_double_chunk, [1, 2, 3], 10) == [12, 14, 16]
            assert pool.last_shards == 1

    def test_process_map_matches_serial(self):
        items = list(range(200))
        with WorkerPool(1) as serial, WorkerPool(3, min_items=1) as parallel:
            expected = serial.map_chunks(_double_chunk, items, 5)
            result = parallel.map_chunks(_double_chunk, items, 5)
        assert result == expected
        assert parallel.last_shards == 3

    def test_small_batches_stay_serial(self):
        with WorkerPool(4) as pool:
            items = list(range(DEFAULT_MIN_ITEMS - 1))
            result = pool.map_chunks(_double_chunk, items, 0)
        assert result == [item * 2 for item in items]
        assert pool.last_shards == 1

    def test_run_chunks_returns_per_chunk_results(self):
        items = list(range(10))
        with WorkerPool(2, min_items=1) as pool:
            chunks = pool.run_chunks(_summarise_chunk, items, None)
        assert len(chunks) == 2
        assert sum(count for count, _ in chunks) == len(items)
        assert sum(total for _, total in chunks) == sum(items)

    def test_empty_items(self):
        with WorkerPool(2, min_items=1) as pool:
            assert pool.map_chunks(_double_chunk, [], 0) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(1, min_items=0)

    def test_close_is_idempotent(self):
        pool = WorkerPool(2, min_items=1)
        pool.map_chunks(_double_chunk, list(range(8)), 0)
        pool.close()
        pool.close()

    def test_as_pool_passthrough_and_default(self):
        existing = WorkerPool(3)
        assert as_pool(existing) is existing
        built = as_pool(None, 2)
        assert built.workers == 2
        built.close()
        existing.close()


class TestPlanChunks:
    def test_empty_yields_single_empty_chunk(self):
        assert plan_chunks(0, 4) == [(0, 0)]

    @settings(max_examples=200, deadline=None)
    @given(count=st.integers(1, 5000), workers=st.integers(1, 64))
    def test_never_more_chunks_than_workers(self, count, workers):
        bounds = plan_chunks(count, workers)
        assert 1 <= len(bounds) <= workers

    @settings(max_examples=200, deadline=None)
    @given(count=st.integers(1, 5000), workers=st.integers(1, 64))
    def test_covers_all_items_contiguously(self, count, workers):
        bounds = plan_chunks(count, workers)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == count
        for (_, stop), (next_start, _) in zip(bounds, bounds[1:]):
            assert stop == next_start
        assert all(start < stop for start, stop in bounds)


class TestWorkerCapture:
    def _assert_stitched(self, tracer, expected_chunks):
        root = tracer.roots[0]
        assert root.name == "fanout"
        chunk_spans = [
            child for child in root.children if child.name == "worker.chunk"
        ]
        assert len(chunk_spans) == expected_chunks
        for index, chunk_span in enumerate(chunk_spans):
            assert isinstance(chunk_span.attributes["pid"], int)
            assert chunk_span.attributes["chunk_index"] == index
            assert chunk_span.attributes["items"] > 0
            names = [child.name for child in chunk_span.children]
            assert "chunk.work" in names
            work = chunk_span.children[names.index("chunk.work")]
            assert [child.name for child in work.children] == ["chunk.inner"]
        assert root.attributes["load_imbalance"] >= 1.0

    def test_serial_path_stitches_worker_spans(self):
        tracer = Tracer()
        with WorkerPool(1, tracer=tracer) as pool:
            with tracer.span("fanout"):
                result = pool.map_chunks(_traced_chunk, list(range(10)), None)
        assert result == list(range(1, 11))
        assert pool.last_shards == 1
        assert len(pool.last_chunk_seconds) == 1
        self._assert_stitched(tracer, expected_chunks=1)
        counters = {
            name: counter.value for name, _, counter in tracer.metrics.counters()
        }
        assert counters["chunk_calls"] == 1
        gauges = {
            (name, labels.get("span")): gauge.value
            for name, labels, gauge in tracer.metrics.gauges()
        }
        assert gauges[("chunk_items", None)] == 10
        assert gauges[("worker_load_imbalance", "fanout")] >= 1.0

    def test_process_path_stitches_worker_spans(self):
        tracer = Tracer()
        with WorkerPool(3, min_items=1, tracer=tracer) as pool:
            with tracer.span("fanout"):
                result = pool.map_chunks(_traced_chunk, list(range(30)), None)
        assert result == list(range(1, 31))
        assert pool.last_shards == 3
        assert len(pool.last_chunk_seconds) == 3
        self._assert_stitched(tracer, expected_chunks=3)
        counters = {
            name: counter.value for name, _, counter in tracer.metrics.counters()
        }
        assert counters["chunk_calls"] == 3
        histograms = {
            (name, labels.get("span")): histogram.count
            for name, labels, histogram in tracer.metrics.histograms()
        }
        assert histograms[("worker_chunk_seconds", "fanout")] == 3

    def test_structure_identical_across_worker_counts(self):
        structures = []
        for workers in (1, 2, 4):
            tracer = Tracer()
            with WorkerPool(workers, min_items=1, tracer=tracer) as pool:
                with tracer.span("fanout"):
                    pool.map_chunks(_traced_chunk, list(range(40)), None)
            structures.append(span_structure(tracer.roots))
        assert structures[0] == structures[1] == structures[2]

    def test_disabled_tracer_skips_capture(self):
        from repro.observability import NULL_TRACER

        with WorkerPool(1, tracer=NULL_TRACER) as pool:
            result = pool.map_chunks(_double_chunk, [1, 2], 0)
        assert result == [2, 4]
        assert pool.last_chunk_seconds == []

    def test_last_shards_reset_when_fn_raises(self):
        with WorkerPool(1) as pool:
            pool.map_chunks(_double_chunk, [1, 2, 3], 0)
            assert pool.last_shards == 1
            with pytest.raises(RuntimeError):
                pool.map_chunks(_raising_chunk, [1, 2, 3], 0)
            assert pool.last_shards == 0
            assert pool.last_chunk_seconds == []


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(13, "strand", 7) == derive_seed(13, "strand", 7)

    def test_distinct_across_components(self):
        seeds = {
            derive_seed(13, "strand", index) for index in range(1000)
        }
        assert len(seeds) == 1000

    def test_distinct_across_labels_and_base(self):
        assert derive_seed(13, "strand", 1) != derive_seed(13, "shuffle", 1)
        assert derive_seed(13, "strand", 1) != derive_seed(14, "strand", 1)

    def test_no_concatenation_collisions(self):
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_streams_are_independent(self):
        # Neighbouring derived seeds must not produce correlated
        # random.Random streams (the failure mode of base+index schemes).
        draws = [
            random.Random(derive_seed(99, "strand", index)).random()
            for index in range(100)
        ]
        assert len(set(draws)) == 100
