"""Tests for the unified worker-pool layer (`repro.parallel`)."""

import random

import pytest

from repro.parallel import DEFAULT_MIN_ITEMS, WorkerPool, as_pool, derive_seed


def _double_chunk(items, extra):
    """Module-level (picklable) worker: doubles every item, adds extra."""
    return [item * 2 + extra for item in items]


def _summarise_chunk(items, extra):
    """Worker returning one aggregate per chunk (run_chunks interface)."""
    return (len(items), sum(items))


class TestWorkerPool:
    def test_serial_map(self):
        with WorkerPool(1) as pool:
            assert pool.map_chunks(_double_chunk, [1, 2, 3], 10) == [12, 14, 16]
            assert pool.last_shards == 1

    def test_process_map_matches_serial(self):
        items = list(range(200))
        with WorkerPool(1) as serial, WorkerPool(3, min_items=1) as parallel:
            expected = serial.map_chunks(_double_chunk, items, 5)
            result = parallel.map_chunks(_double_chunk, items, 5)
        assert result == expected
        assert parallel.last_shards == 3

    def test_small_batches_stay_serial(self):
        with WorkerPool(4) as pool:
            items = list(range(DEFAULT_MIN_ITEMS - 1))
            result = pool.map_chunks(_double_chunk, items, 0)
        assert result == [item * 2 for item in items]
        assert pool.last_shards == 1

    def test_run_chunks_returns_per_chunk_results(self):
        items = list(range(10))
        with WorkerPool(2, min_items=1) as pool:
            chunks = pool.run_chunks(_summarise_chunk, items, None)
        assert len(chunks) == 2
        assert sum(count for count, _ in chunks) == len(items)
        assert sum(total for _, total in chunks) == sum(items)

    def test_empty_items(self):
        with WorkerPool(2, min_items=1) as pool:
            assert pool.map_chunks(_double_chunk, [], 0) == []

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(1, min_items=0)

    def test_close_is_idempotent(self):
        pool = WorkerPool(2, min_items=1)
        pool.map_chunks(_double_chunk, list(range(8)), 0)
        pool.close()
        pool.close()

    def test_as_pool_passthrough_and_default(self):
        existing = WorkerPool(3)
        assert as_pool(existing) is existing
        built = as_pool(None, 2)
        assert built.workers == 2
        built.close()
        existing.close()


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(13, "strand", 7) == derive_seed(13, "strand", 7)

    def test_distinct_across_components(self):
        seeds = {
            derive_seed(13, "strand", index) for index in range(1000)
        }
        assert len(seeds) == 1000

    def test_distinct_across_labels_and_base(self):
        assert derive_seed(13, "strand", 1) != derive_seed(13, "shuffle", 1)
        assert derive_seed(13, "strand", 1) != derive_seed(14, "strand", 1)

    def test_no_concatenation_collisions(self):
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_streams_are_independent(self):
        # Neighbouring derived seeds must not produce correlated
        # random.Random streams (the failure mode of base+index schemes).
        draws = [
            random.Random(derive_seed(99, "strand", index)).random()
            for index in range(100)
        ]
        assert len(set(draws)) == 100
