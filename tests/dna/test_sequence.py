"""Tests for sequence statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dna.sequence import gc_content, homopolymer_runs, kmers, max_homopolymer

dna = st.text(alphabet="ACGT", min_size=1, max_size=100)


class TestGCContent:
    def test_balanced(self):
        assert gc_content("ACGT") == 0.5

    def test_all_gc(self):
        assert gc_content("GGCC") == 1.0

    def test_no_gc(self):
        assert gc_content("ATAT") == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            gc_content("")

    @given(dna)
    def test_bounded(self, sequence):
        assert 0.0 <= gc_content(sequence) <= 1.0


class TestHomopolymerRuns:
    def test_runs(self):
        assert homopolymer_runs("AACGGG") == [("A", 2), ("C", 1), ("G", 3)]

    def test_empty(self):
        assert homopolymer_runs("") == []

    @given(dna)
    def test_runs_reconstruct_sequence(self, sequence):
        rebuilt = "".join(base * length for base, length in homopolymer_runs(sequence))
        assert rebuilt == sequence

    @given(dna)
    def test_adjacent_runs_differ(self, sequence):
        runs = homopolymer_runs(sequence)
        for (base_a, _), (base_b, _) in zip(runs, runs[1:]):
            assert base_a != base_b

    def test_max_homopolymer(self):
        assert max_homopolymer("ACGTTTTA") == 4
        assert max_homopolymer("") == 0


class TestKmers:
    def test_enumerates_all(self):
        assert list(kmers("ACGT", 2)) == ["AC", "CG", "GT"]

    def test_k_equal_length(self):
        assert list(kmers("ACG", 3)) == ["ACG"]

    def test_k_too_large(self):
        assert list(kmers("AC", 3)) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            list(kmers("ACGT", 0))

    @given(dna, st.integers(min_value=1, max_value=10))
    def test_count(self, sequence, k):
        expected = max(0, len(sequence) - k + 1)
        assert len(list(kmers(sequence, k))) == expected
