"""Tests for the columnar ReadPool / ReadPoolView storage."""

import pickle
import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dna.alphabet import BASES
from repro.dna.readpool import (
    NON_ACGT_CODE,
    PAD_CODE,
    ReadPool,
    ReadPoolView,
    as_read_pool,
)

acgt_reads = st.lists(st.text(alphabet="ACGT", max_size=100), max_size=20)
latin1_reads = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=0, max_codepoint=255), max_size=40
    ),
    max_size=12,
)


class TestRoundTrip:
    def test_empty_pool(self):
        pool = ReadPool.from_strings([])
        assert len(pool) == 0
        assert pool.to_strings() == []
        assert pool.is_acgt is True
        assert pool.lengths.tolist() == []

    def test_empty_reads(self):
        reads = ["", "ACGT", "", ""]
        pool = ReadPool.from_strings(reads)
        assert pool.to_strings() == reads
        assert list(pool) == reads
        assert pool.lengths.tolist() == [0, 4, 0, 0]
        assert pool.is_acgt is True

    def test_non_acgt_symbols(self):
        reads = ["ACGT", "ACNT", "acgt", "A-C"]
        pool = ReadPool.from_strings(reads)
        assert pool.to_strings() == reads
        assert pool.acgt_per_read.tolist() == [True, False, False, False]
        assert pool.is_acgt is False
        assert pool.codes[4:8].tolist() == [0, 1, NON_ACGT_CODE, 3]

    def test_long_strands_over_64(self):
        rng = random.Random(5)
        reads = [
            "".join(rng.choice(BASES) for _ in range(length))
            for length in (63, 64, 65, 129, 300)
        ]
        pool = ReadPool.from_strings(reads)
        assert pool.to_strings() == reads
        assert pool.lengths.tolist() == [63, 64, 65, 129, 300]

    def test_rejects_non_latin1(self):
        with pytest.raises(ValueError):
            ReadPool.from_strings(["ACGT", "日本語"])

    @given(reads=latin1_reads)
    def test_round_trip_any_latin1(self, reads):
        pool = ReadPool.from_strings(reads)
        assert pool.to_strings() == reads
        # The strings cache must not mask the byte decode path.
        rebuilt = ReadPool(pool.data, pool.offsets)
        assert rebuilt.to_strings() == reads

    @given(reads=acgt_reads)
    def test_codes_match_per_read_encoding(self, reads):
        pool = ReadPool.from_strings(reads)
        expected = np.concatenate(
            [
                np.array(["ACGT".index(base) for base in read], dtype=np.uint8)
                for read in reads
            ]
            or [np.empty(0, dtype=np.uint8)]
        )
        assert np.array_equal(pool.codes, expected)


class TestSequenceProtocol:
    def test_indexing(self):
        reads = ["AC", "", "GGT"]
        pool = ReadPool.from_strings(reads)
        assert pool[0] == "AC"
        assert pool[-1] == "GGT"
        with pytest.raises(IndexError):
            pool[3]

    def test_index_without_strings_cache(self):
        pool = ReadPool.from_strings(["AC", "GGT"])
        rebuilt = ReadPool(pool.data, pool.offsets)
        assert rebuilt[1] == "GGT"

    def test_contiguous_slice_is_pool(self):
        pool = ReadPool.from_strings(["A", "CC", "GGG", "TTTT"])
        sliced = pool[1:3]
        assert isinstance(sliced, ReadPool)
        assert sliced.to_strings() == ["CC", "GGG"]

    def test_stepped_slice_is_list(self):
        pool = ReadPool.from_strings(["A", "CC", "GGG", "TTTT"])
        assert pool[::2] == ["A", "GGG"]

    def test_sequence_mixins(self):
        pool = ReadPool.from_strings(["A", "CC", "A"])
        assert pool.count("A") == 2
        assert pool.index("CC") == 1

    def test_bad_offsets_rejected(self):
        data = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ValueError):
            ReadPool(data, np.array([0, 2], dtype=np.int64))  # end != len
        with pytest.raises(ValueError):
            ReadPool(data, np.array([1, 4], dtype=np.int64))  # start != 0
        with pytest.raises(ValueError):
            ReadPool(data, np.array([0, 3, 2, 4], dtype=np.int64))


class TestSubsetViewPickle:
    def test_subset_compacts(self):
        pool = ReadPool.from_strings(["AAA", "CC", "G", "TTTT"])
        sub = pool.subset([3, 0])
        assert sub.to_strings() == ["TTTT", "AAA"]
        assert sub.data.size == 7

    def test_view_reads_and_lengths(self):
        pool = ReadPool.from_strings(["AAA", "CC", "G", "TTTT"])
        view = pool.view([1, 3])
        assert isinstance(view, ReadPoolView)
        assert list(view) == ["CC", "TTTT"]
        assert view.to_strings() == ["CC", "TTTT"]
        assert view.lengths.tolist() == [2, 4]
        assert view[1] == "TTTT"
        assert list(view[0:1]) == ["CC"]

    def test_view_padded_codes_match_subset(self):
        pool = ReadPool.from_strings(["AAA", "CC", "G", "TTTT"])
        view_matrix, view_lengths = pool.view([1, 3]).padded_codes()
        sub_matrix, sub_lengths = pool.subset([1, 3]).padded_codes()
        assert np.array_equal(view_matrix, sub_matrix)
        assert np.array_equal(view_lengths, sub_lengths)
        assert view_matrix[0].tolist() == [1, 1, PAD_CODE, PAD_CODE]

    def test_pool_pickle_round_trip(self):
        pool = ReadPool.from_strings(["ACGT", "", "NNX"])
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.to_strings() == pool.to_strings()

    def test_view_pickle_compacts_to_own_reads(self):
        pool = ReadPool.from_strings(["A" * 1000, "CC", "G" * 900, "TT"])
        view = pool.view([1, 3])
        clone = pickle.loads(pickle.dumps(view))
        assert clone.to_strings() == ["CC", "TT"]
        # The unpickled view must not drag the parent pool's bytes along.
        assert clone.pool.data.size == 4

    def test_view_slice_pickles_like_list(self):
        pool = ReadPool.from_strings(["AC", "GT", "CA", "TG"])
        view = pool.view([0, 1, 2, 3])
        assert pickle.loads(pickle.dumps(view[1:3])).to_strings() == ["GT", "CA"]


class TestAsReadPool:
    def test_pool_passthrough(self):
        pool = ReadPool.from_strings(["ACGT"])
        assert as_read_pool(pool) is pool

    def test_view_compacts(self):
        pool = ReadPool.from_strings(["AC", "GT", "CA"])
        result = as_read_pool(pool.view([2, 0]))
        assert isinstance(result, ReadPool)
        assert result.to_strings() == ["CA", "AC"]

    def test_list_converts(self):
        result = as_read_pool(["AC", "NN!"])
        assert isinstance(result, ReadPool)
        assert result.to_strings() == ["AC", "NN!"]

    def test_unpoolable_returns_none(self):
        assert as_read_pool(["ACGT", "日本語"]) is None
