"""Tests for fastq I/O."""

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dna.fastq import FastqRecord, parse_fastq, read_fastq, write_fastq

dna = st.text(alphabet="ACGT", min_size=1, max_size=60)


class TestFastqRecord:
    def test_quality_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            FastqRecord("r1", "ACGT", [40, 40])

    def test_mean_quality(self):
        record = FastqRecord("r1", "ACGT", [10, 20, 30, 40])
        assert record.mean_quality() == 25.0

    def test_mean_quality_empty(self):
        assert FastqRecord("r1", "ACGT").mean_quality() == 0.0


class TestRoundTrip:
    @given(st.lists(dna, min_size=1, max_size=10))
    def test_write_then_parse(self, sequences):
        records = [
            FastqRecord(f"read{i}", sequence, [40] * len(sequence))
            for i, sequence in enumerate(sequences)
        ]
        buffer = io.StringIO()
        write_fastq(records, buffer)
        parsed = list(parse_fastq(io.StringIO(buffer.getvalue())))
        assert [r.sequence for r in parsed] == sequences
        assert [r.identifier for r in parsed] == [r.identifier for r in records]
        assert all(r.qualities == [40] * len(r.sequence) for r in parsed)

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "reads.fastq"
        records = [FastqRecord("a", "ACGT", [1, 2, 3, 4])]
        write_fastq(records, path)
        loaded = read_fastq(path)
        assert loaded == records


class TestMalformed:
    def test_missing_at(self):
        with pytest.raises(ValueError, match="header"):
            list(parse_fastq(["read1\n", "ACGT\n", "+\n", "IIII\n"]))

    def test_truncated_record(self):
        with pytest.raises(ValueError, match="truncated"):
            list(parse_fastq(["@read1\n", "ACGT\n"]))

    def test_bad_separator(self):
        with pytest.raises(ValueError, match=r"\+"):
            list(parse_fastq(["@r\n", "ACGT\n", "x\n", "IIII\n"]))

    def test_quality_length_mismatch(self):
        with pytest.raises(ValueError, match="quality"):
            list(parse_fastq(["@r\n", "ACGT\n", "+\n", "II\n"]))

    def test_blank_lines_skipped(self):
        records = list(parse_fastq(["\n", "@r\n", "AC\n", "+\n", "II\n", "\n"]))
        assert len(records) == 1
