"""Tests for distance metrics, including banded Levenshtein correctness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dna.distance import (
    banded_levenshtein,
    hamming_distance,
    levenshtein_distance,
    levenshtein_reference,
    levenshtein_row,
    myers_levenshtein,
    prefix_edit_distance,
)

dna = st.text(alphabet="ACGT", max_size=60)
#: strands crossing the 64-bit word boundary exercise the big-int blocks
#: of the bit-parallel kernel
long_dna = st.text(alphabet="ACGT", min_size=65, max_size=150)
#: arbitrary unicode guards the kernels' alphabet-agnostic promise
unicode_text = st.text(max_size=40)


def reference_levenshtein(left: str, right: str) -> int:
    """Textbook O(nm) implementation used as the oracle."""
    previous = list(range(len(right) + 1))
    for i, a in enumerate(left, start=1):
        current = [i]
        for j, b in enumerate(right, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (a != b),
                )
            )
        previous = current
    return previous[-1]


class TestHamming:
    def test_zero_on_equal(self):
        assert hamming_distance("ACGT", "ACGT") == 0

    def test_counts_mismatches(self):
        assert hamming_distance("AAAA", "ATAT") == 2

    def test_raises_on_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance("A", "AA")

    @given(dna, dna)
    def test_symmetry(self, a, b):
        if len(a) != len(b):
            return
        assert hamming_distance(a, b) == hamming_distance(b, a)


class TestLevenshtein:
    @given(dna, dna)
    def test_matches_reference(self, a, b):
        assert levenshtein_distance(a, b) == reference_levenshtein(a, b)

    @given(dna, dna)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(dna)
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(dna, dna, dna)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(dna, dna, st.integers(min_value=0, max_value=70))
    def test_banded_agrees_within_bound(self, a, b, bound):
        exact = reference_levenshtein(a, b)
        banded = levenshtein_distance(a, b, bound=bound)
        if exact <= bound:
            assert banded == exact
        else:
            assert banded == bound + 1

    def test_negative_bound_raises(self):
        with pytest.raises(ValueError):
            levenshtein_distance("A", "C", bound=-1)

    def test_empty_strings(self):
        assert levenshtein_distance("", "ACGT") == 4
        assert levenshtein_distance("", "") == 0


class TestMyersKernel:
    @given(dna, dna)
    def test_matches_reference(self, a, b):
        assert myers_levenshtein(a, b) == reference_levenshtein(a, b)

    @given(long_dna, long_dna)
    def test_matches_reference_beyond_64_chars(self, a, b):
        assert myers_levenshtein(a, b) == reference_levenshtein(a, b)

    @given(unicode_text, unicode_text)
    def test_alphabet_agnostic(self, a, b):
        # The kernel's match masks are keyed by character, not by a DNA
        # translation table, so arbitrary unicode must work unchanged.
        assert myers_levenshtein(a, b) == reference_levenshtein(a, b)

    @given(dna, dna, st.integers(min_value=0, max_value=70))
    def test_bound_bail_out(self, a, b, bound):
        exact = reference_levenshtein(a, b)
        bounded = myers_levenshtein(a, b, bound=bound)
        if exact <= bound:
            assert bounded == exact
        else:
            assert bounded == bound + 1

    def test_empty_strings(self):
        assert myers_levenshtein("", "") == 0
        assert myers_levenshtein("", "ACGT") == 4
        assert myers_levenshtein("ACGT", "") == 4
        assert myers_levenshtein("ACGT", "", bound=2) == 3

    def test_module_oracle_matches_local_oracle(self):
        # levenshtein_reference is the in-tree oracle the kernels are
        # documented against; make sure it agrees with this test file's
        # independent copy on a non-trivial pair.
        assert levenshtein_reference("ACGTACGT", "AGTTCGA") == reference_levenshtein(
            "ACGTACGT", "AGTTCGA"
        )


class TestBandedKernel:
    @given(dna, dna, st.integers(min_value=0, max_value=70))
    def test_matches_reference_within_bound(self, a, b, bound):
        exact = reference_levenshtein(a, b)
        banded = banded_levenshtein(a, b, bound)
        if exact <= bound:
            assert banded == exact
        else:
            assert banded == bound + 1

    @given(long_dna, long_dna)
    def test_beyond_64_chars(self, a, b):
        exact = reference_levenshtein(a, b)
        assert banded_levenshtein(a, b, 150) == exact

    @given(dna, dna, st.integers(min_value=0, max_value=70))
    def test_agrees_with_myers(self, a, b, bound):
        # Two independently implemented bounded kernels must agree
        # everywhere, including on the bound+1 saturation.
        assert banded_levenshtein(a, b, bound) == myers_levenshtein(a, b, bound=bound)

    def test_negative_bound_raises(self):
        with pytest.raises(ValueError):
            banded_levenshtein("A", "C", -1)

    def test_empty_strings(self):
        assert banded_levenshtein("", "", 0) == 0
        assert banded_levenshtein("", "ACGT", 4) == 4
        assert banded_levenshtein("", "ACGT", 3) == 4


class TestLevenshteinRow:
    @given(dna, dna)
    def test_matches_reference_per_prefix(self, pattern, text):
        row = levenshtein_row(pattern, text)
        assert len(row) == len(text) + 1
        for end, value in enumerate(row):
            assert value == reference_levenshtein(pattern, text[:end])

    def test_empty_pattern(self):
        assert levenshtein_row("", "ACG") == [0, 1, 2, 3]


class TestPrefixEditDistance:
    def test_exact_prefix(self):
        distance, end = prefix_edit_distance("ACGT", "ACGTTTTT")
        assert distance == 0
        assert end == 4

    def test_empty_pattern(self):
        assert prefix_edit_distance("", "ACGT") == (0, 0)

    def test_insertion_shifts_end(self):
        # Pattern appears with one inserted base inside.
        distance, end = prefix_edit_distance("ACGT", "ACTGTAAA")
        assert distance == 1
        assert end == 5

    def test_deletion_shortens_end(self):
        distance, end = prefix_edit_distance("ACGT", "AGTCCCC")
        assert distance == 1
        assert end == 3

    @given(dna, dna)
    def test_never_worse_than_whole_text(self, pattern, text):
        distance, end = prefix_edit_distance(pattern, text)
        assert 0 <= end <= len(text)
        assert distance <= reference_levenshtein(pattern, text)

    @given(dna)
    def test_self_prefix_is_free(self, pattern):
        distance, end = prefix_edit_distance(pattern, pattern + "ACGT")
        assert distance == 0

    def test_ties_prefer_longest_prefix(self):
        # "A" vs "CA": the empty prefix (delete A), "C" (substitute) and
        # "CA" (insert C) all cost 1 — the documented tie-break picks the
        # longest, so a trailing match extends the located site.
        assert prefix_edit_distance("A", "CA") == (1, 2)
        # "AC" vs "ACAC": both "AC" and "ACAC"... only "AC" is 0; but
        # "ACA" costs 1 while "AC" costs 0, so no tie — end stays at 2.
        assert prefix_edit_distance("AC", "ACAC") == (0, 2)

    @given(dna, dna)
    def test_matches_bruteforce_with_longest_tie_break(self, pattern, text):
        distance, end = prefix_edit_distance(pattern, text)
        per_prefix = [
            reference_levenshtein(pattern, text[:j]) for j in range(len(text) + 1)
        ]
        best = min(per_prefix)
        assert distance == best
        # ties prefer the longest prefix: end is the LAST index achieving
        # the minimum
        assert end == max(j for j, value in enumerate(per_prefix) if value == best)
