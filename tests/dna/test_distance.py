"""Tests for distance metrics, including banded Levenshtein correctness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dna.distance import (
    hamming_distance,
    levenshtein_distance,
    prefix_edit_distance,
)

dna = st.text(alphabet="ACGT", max_size=60)


def reference_levenshtein(left: str, right: str) -> int:
    """Textbook O(nm) implementation used as the oracle."""
    previous = list(range(len(right) + 1))
    for i, a in enumerate(left, start=1):
        current = [i]
        for j, b in enumerate(right, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (a != b),
                )
            )
        previous = current
    return previous[-1]


class TestHamming:
    def test_zero_on_equal(self):
        assert hamming_distance("ACGT", "ACGT") == 0

    def test_counts_mismatches(self):
        assert hamming_distance("AAAA", "ATAT") == 2

    def test_raises_on_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance("A", "AA")

    @given(dna, dna)
    def test_symmetry(self, a, b):
        if len(a) != len(b):
            return
        assert hamming_distance(a, b) == hamming_distance(b, a)


class TestLevenshtein:
    @given(dna, dna)
    def test_matches_reference(self, a, b):
        assert levenshtein_distance(a, b) == reference_levenshtein(a, b)

    @given(dna, dna)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(dna)
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(dna, dna, dna)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(dna, dna, st.integers(min_value=0, max_value=70))
    def test_banded_agrees_within_bound(self, a, b, bound):
        exact = reference_levenshtein(a, b)
        banded = levenshtein_distance(a, b, bound=bound)
        if exact <= bound:
            assert banded == exact
        else:
            assert banded == bound + 1

    def test_negative_bound_raises(self):
        with pytest.raises(ValueError):
            levenshtein_distance("A", "C", bound=-1)

    def test_empty_strings(self):
        assert levenshtein_distance("", "ACGT") == 4
        assert levenshtein_distance("", "") == 0


class TestPrefixEditDistance:
    def test_exact_prefix(self):
        distance, end = prefix_edit_distance("ACGT", "ACGTTTTT")
        assert distance == 0
        assert end == 4

    def test_empty_pattern(self):
        assert prefix_edit_distance("", "ACGT") == (0, 0)

    def test_insertion_shifts_end(self):
        # Pattern appears with one inserted base inside.
        distance, end = prefix_edit_distance("ACGT", "ACTGTAAA")
        assert distance == 1
        assert end == 5

    def test_deletion_shortens_end(self):
        distance, end = prefix_edit_distance("ACGT", "AGTCCCC")
        assert distance == 1
        assert end == 3

    @given(dna, dna)
    def test_never_worse_than_whole_text(self, pattern, text):
        distance, end = prefix_edit_distance(pattern, text)
        assert 0 <= end <= len(text)
        assert distance <= reference_levenshtein(pattern, text)

    @given(dna)
    def test_self_prefix_is_free(self, pattern):
        distance, end = prefix_edit_distance(pattern, pattern + "ACGT")
        assert distance == 0
