"""Tests for partial-order alignment and consensus."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dna.alphabet import random_sequence
from repro.dna.distance import levenshtein_distance
from repro.dna.poa import PartialOrderGraph, poa_consensus
from repro.simulation.iid import IIDChannel

dna = st.text(alphabet="ACGT", min_size=1, max_size=40)


class TestGraphConstruction:
    def test_single_sequence_is_a_chain(self):
        graph = PartialOrderGraph()
        graph.add_sequence("ACGT")
        assert graph.bases == list("ACGT")
        assert graph.topological_order() == [0, 1, 2, 3]

    def test_identical_sequences_fuse(self):
        graph = PartialOrderGraph()
        graph.add_sequence("ACGT")
        graph.add_sequence("ACGT")
        assert len(graph.bases) == 4
        assert len(graph.paths) == 2

    def test_substitution_branches_within_group(self):
        graph = PartialOrderGraph()
        graph.add_sequence("ACGT")
        graph.add_sequence("ATGT")
        # One extra node for the substituted base, same aligned group.
        assert len(graph.bases) == 5
        groups = {graph.group_of[node] for node in range(len(graph.bases))}
        assert len(groups) == 4

    def test_empty_sequence_raises(self):
        graph = PartialOrderGraph()
        with pytest.raises(ValueError):
            graph.add_sequence("")

    @given(st.lists(dna, min_size=1, max_size=6))
    def test_graph_is_acyclic(self, sequences):
        graph = PartialOrderGraph()
        for sequence in sequences:
            graph.add_sequence(sequence)
        order = graph.topological_order()
        assert len(order) == len(graph.bases)


class TestConsensus:
    def test_consensus_of_identical_reads(self):
        assert poa_consensus(["ACGTACGT"] * 5) == "ACGTACGT"

    def test_consensus_outvotes_substitution(self):
        reads = ["ACGTACGT", "ACGAACGT", "ACGTACGT"]
        assert poa_consensus(reads) == "ACGTACGT"

    def test_consensus_outvotes_deletion(self):
        reads = ["ACGTACGT", "ACGACGT", "ACGTACGT"]
        assert poa_consensus(reads) == "ACGTACGT"

    def test_consensus_outvotes_insertion(self):
        reads = ["ACGTACGT", "ACGTTACGT", "ACGTACGT"]
        assert poa_consensus(reads) == "ACGTACGT"

    def test_expected_length_trims(self):
        reads = ["ACGTTACGT", "ACGTTACGT", "ACGTACGT"]
        consensus = poa_consensus(reads, expected_length=8)
        assert len(consensus) <= 9

    def test_empty_cluster_raises(self):
        with pytest.raises(ValueError):
            poa_consensus([])

    def test_all_empty_reads_raise(self):
        with pytest.raises(ValueError):
            poa_consensus(["", ""])

    def test_single_read_consensus_is_the_read(self):
        assert poa_consensus(["GATTACA"]) == "GATTACA"

    def test_noisy_cluster_recovers_reference(self):
        rng = random.Random(3)
        channel = IIDChannel(p_ins=0.02, p_del=0.02, p_sub=0.02)
        reference = random_sequence(80, rng)
        reads = [channel.transmit(reference, rng) for _ in range(12)]
        consensus = poa_consensus(reads, expected_length=80)
        assert levenshtein_distance(consensus, reference) <= 2

    @given(st.lists(dna, min_size=1, max_size=5))
    def test_consensus_is_dna(self, sequences):
        consensus = poa_consensus(sequences)
        assert set(consensus) <= set("ACGT")

    def test_all_gap_columns_are_omitted(self):
        # The majority skips the C column entirely: gap wins it and the
        # consensus contracts to the common subsequence.
        assert poa_consensus(["ACGT", "AGT", "AGT"]) == "AGT"

    def test_anchored_ends_still_align_truncated_reads(self):
        graph = PartialOrderGraph(free_graph_ends=False)
        graph.add_sequence("ACGTACGT")
        graph.add_sequence("ACGTACG")  # forces a real terminal gap
        graph.add_sequence("ACGTACGT")
        assert graph.consensus() == "ACGTACGT"

    def test_anchored_ends_consensus_of_identical_reads(self):
        graph = PartialOrderGraph(free_graph_ends=False)
        for _ in range(3):
            graph.add_sequence("GATTACA")
        assert graph.consensus() == "GATTACA"


class TestBandedAlignment:
    def test_invalid_band_raises(self):
        with pytest.raises(ValueError):
            PartialOrderGraph(band=0)

    def test_banded_matches_exact_on_noisy_clusters(self):
        channel = IIDChannel.from_total_rate(0.04)
        for seed in range(5):
            rng = random.Random(seed)
            reference = random_sequence(120, rng)
            reads = [channel.transmit(reference, rng) for _ in range(8)]
            exact = poa_consensus(reads, expected_length=120)
            banded = poa_consensus(reads, expected_length=120, band=16)
            assert banded == exact

    def test_saturated_band_falls_back_to_exact(self):
        rng = random.Random(11)
        reference = random_sequence(80, rng)
        graph = PartialOrderGraph(band=2)
        graph.add_sequence(reference)
        # A read missing its first 12 bases drifts far off the diagonal,
        # so the 2-wide band must saturate; the fallback realigns exactly
        # and the consensus still matches the full read.
        graph.add_sequence(reference[12:])
        graph.add_sequence(reference)
        assert graph.band_saturations >= 1
        assert graph.consensus() == reference

    def test_band_saturations_zero_for_exact_graph(self):
        graph = PartialOrderGraph()
        graph.add_sequence("ACGTACGT")
        graph.add_sequence("ACGTACGT")
        assert graph.band_saturations == 0
