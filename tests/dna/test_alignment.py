"""Tests for Needleman-Wunsch alignment and edit scripts."""

from hypothesis import given
from hypothesis import strategies as st

from repro.dna.alignment import NWAligner, align_pair, edit_operations
from repro.dna.distance import levenshtein_distance

dna = st.text(alphabet="ACGT", min_size=1, max_size=50)


class TestAlignPair:
    def test_identical(self):
        ref, query = align_pair("ACGT", "ACGT")
        assert ref == query == "ACGT"

    def test_gap_placement_deletion(self):
        ref, query = align_pair("ACGT", "ACT")
        assert ref.replace("-", "") == "ACGT"
        assert query.replace("-", "") == "ACT"
        assert len(ref) == len(query)

    @given(dna, dna)
    def test_alignment_preserves_strings(self, a, b):
        ref, query = align_pair(a, b)
        assert ref.replace("-", "") == a
        assert query.replace("-", "") == b
        assert len(ref) == len(query)

    @given(dna, dna)
    def test_no_double_gap_columns(self, a, b):
        ref, query = align_pair(a, b)
        assert all(not (r == "-" and q == "-") for r, q in zip(ref, query))


class TestScore:
    def test_unit_cost_score_matches_edit_distance(self):
        # With match=0, mismatch=-1, gap=-1 the negated optimal score is
        # exactly the Levenshtein distance.
        aligner = NWAligner(match=0, mismatch=-1, gap=-1)
        for a, b in [("ACGT", "AGT"), ("AAAA", "TTTT"), ("GATTACA", "GCATGCT")]:
            _, _, score = aligner.align(a, b)
            assert -score == levenshtein_distance(a, b)

    @given(dna, dna)
    def test_unit_cost_property(self, a, b):
        aligner = NWAligner(match=0, mismatch=-1, gap=-1)
        _, _, score = aligner.align(a, b)
        assert -score == levenshtein_distance(a, b)


class TestEditOperations:
    @given(dna, dna)
    def test_script_transforms_reference_into_query(self, a, b):
        result = []
        for op in edit_operations(a, b):
            if op.kind in ("match", "sub", "ins"):
                result.append(op.query_base if op.kind != "match" else op.ref_base)
        assert "".join(result) == b

    @given(dna, dna)
    def test_ref_positions_are_monotone(self, a, b):
        positions = [op.ref_pos for op in edit_operations(a, b)]
        assert positions == sorted(positions)

    @given(dna)
    def test_identity_script_is_all_matches(self, a):
        assert all(op.kind == "match" for op in edit_operations(a, a))

    @given(dna, dna)
    def test_edit_count_bounded_by_distance(self, a, b):
        # The NW default scoring may not minimise raw edit count, but the
        # script's non-match ops can never beat the true edit distance.
        edits = sum(1 for op in edit_operations(a, b) if op.kind != "match")
        assert edits >= levenshtein_distance(a, b)
