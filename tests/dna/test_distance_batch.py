"""uint64-lane Myers batch vs the scalar Levenshtein oracle."""

import random

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.dna.alphabet import BASES
from repro.dna.distance import levenshtein_distance, myers_levenshtein_fixed
from repro.dna.distance_batch import myers_levenshtein_batch
from repro.dna.readpool import ReadPool

acgt = st.text(alphabet="ACGT", max_size=150)
bounds = st.one_of(st.none(), st.integers(min_value=0, max_value=40))


def _mutated(reference, rng, edits):
    sequence = list(reference)
    for _ in range(edits):
        kind = rng.choice(("sub", "ins", "del"))
        if kind == "del" and sequence:
            del sequence[rng.randrange(len(sequence))]
        elif kind == "ins":
            sequence.insert(rng.randrange(len(sequence) + 1), rng.choice(BASES))
        elif sequence:
            sequence[rng.randrange(len(sequence))] = rng.choice(BASES)
    return "".join(sequence)


class TestAgainstScalarOracle:
    @given(
        pattern=acgt,
        texts=st.lists(acgt, max_size=12),
        bound=bounds,
    )
    def test_matches_levenshtein_distance(self, pattern, texts, bound):
        result = myers_levenshtein_batch(pattern, texts, bound=bound)
        expected = [
            levenshtein_distance(pattern, text, bound=bound) for text in texts
        ]
        assert result.tolist() == expected
        assert result.dtype == np.int64

    def test_multiword_patterns_cross_word_boundaries(self, rng):
        # Word widths 1..5: the carry/shift plumbing between uint64 words
        # is exactly what these lengths exercise.
        for length in (63, 64, 65, 127, 128, 129, 200, 300):
            pattern = "".join(rng.choice(BASES) for _ in range(length))
            texts = [
                _mutated(pattern, rng, edits)
                for edits in (0, 1, 3, 10, 40)
            ] + ["".join(rng.choice(BASES) for _ in range(length)) for _ in range(3)]
            for bound in (None, 0, 3, 12, 500):
                result = myers_levenshtein_batch(pattern, texts, bound=bound)
                expected = [
                    levenshtein_distance(pattern, text, bound=bound)
                    for text in texts
                ]
                assert result.tolist() == expected, (length, bound)

    def test_mixed_text_lengths_and_empties(self, rng):
        pattern = "".join(rng.choice(BASES) for _ in range(90))
        texts = ["", "A", pattern, pattern[:40], pattern * 2]
        result = myers_levenshtein_batch(pattern, texts, bound=25)
        expected = [levenshtein_distance(pattern, t, bound=25) for t in texts]
        assert result.tolist() == expected

    def test_empty_pattern(self):
        result = myers_levenshtein_batch("", ["", "AC", "ACGT"], bound=3)
        assert result.tolist() == [0, 2, 3 + 1]

    def test_empty_texts(self):
        result = myers_levenshtein_batch("ACGT", [])
        assert result.tolist() == []


class TestInputPaths:
    def test_read_pool_input_matches_list(self, rng):
        pattern = "".join(rng.choice(BASES) for _ in range(110))
        texts = [_mutated(pattern, rng, 8) for _ in range(30)]
        pool = ReadPool.from_strings(texts)
        assert np.array_equal(
            myers_levenshtein_batch(pattern, pool, bound=12),
            myers_levenshtein_batch(pattern, texts, bound=12),
        )

    def test_view_input_matches_list(self, rng):
        pattern = "".join(rng.choice(BASES) for _ in range(80))
        texts = [_mutated(pattern, rng, 5) for _ in range(10)]
        pool = ReadPool.from_strings(texts)
        view = pool.view([7, 2, 2, 9])
        expected = [
            levenshtein_distance(pattern, texts[index], bound=9)
            for index in (7, 2, 2, 9)
        ]
        assert myers_levenshtein_batch(pattern, view, bound=9).tolist() == expected

    def test_non_acgt_pattern_falls_back(self):
        result = myers_levenshtein_batch("ACNT", ["ACGT", "ANT"], bound=3)
        expected = [
            levenshtein_distance("ACNT", text, bound=3) for text in ["ACGT", "ANT"]
        ]
        assert result.tolist() == expected

    def test_non_acgt_texts_fall_back(self):
        texts = ["ACGT", "AC-T", "acgt"]
        result = myers_levenshtein_batch("ACGT", texts)
        expected = [levenshtein_distance("ACGT", text) for text in texts]
        assert result.tolist() == expected


class TestMasksReuse:
    def test_fixed_with_shared_masks_matches(self, rng):
        from repro.dna.distance import _pattern_masks

        pattern = "".join(rng.choice(BASES) for _ in range(70))
        masks = _pattern_masks(pattern)
        for _ in range(20):
            text = _mutated(pattern, rng, rng.randrange(12))
            for bound in (None, 4, 20):
                assert myers_levenshtein_fixed(
                    pattern, text, bound=bound, masks=masks
                ) == levenshtein_distance(pattern, text, bound=bound)
