"""Tests for the DNA alphabet primitives."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dna.alphabet import (
    BASES,
    BASE_TO_INDEX,
    complement,
    is_dna,
    random_sequence,
    reverse_complement,
)

dna = st.text(alphabet=BASES, max_size=200)


class TestIsDna:
    def test_accepts_valid(self):
        assert is_dna("ACGTACGT")

    def test_accepts_empty(self):
        assert is_dna("")

    def test_rejects_other_letters(self):
        assert not is_dna("ACGU")

    def test_rejects_lowercase(self):
        assert not is_dna("acgt")


class TestComplement:
    def test_known_pairs(self):
        assert complement("ACGT") == "TGCA"

    @given(dna)
    def test_involution(self, sequence):
        assert complement(complement(sequence)) == sequence

    @given(dna)
    def test_reverse_complement_involution(self, sequence):
        assert reverse_complement(reverse_complement(sequence)) == sequence

    @given(dna)
    def test_reverse_complement_is_reversed_complement(self, sequence):
        assert reverse_complement(sequence) == complement(sequence)[::-1]

    @given(dna)
    def test_preserves_alphabet(self, sequence):
        assert is_dna(reverse_complement(sequence))


class TestRandomSequence:
    def test_length(self, rng):
        assert len(random_sequence(137, rng)) == 137

    def test_zero_length(self, rng):
        assert random_sequence(0, rng) == ""

    def test_negative_length_raises(self, rng):
        with pytest.raises(ValueError):
            random_sequence(-1, rng)

    def test_deterministic_under_seed(self):
        a = random_sequence(50, random.Random(7))
        b = random_sequence(50, random.Random(7))
        assert a == b

    def test_uses_all_bases_eventually(self, rng):
        sequence = random_sequence(500, rng)
        assert set(sequence) == set(BASES)


def test_base_index_tables_are_inverse():
    for base, index in BASE_TO_INDEX.items():
        assert BASES[index] == base
