"""Structural property tests for the partial-order alignment graph."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dna.alphabet import random_sequence
from repro.dna.poa import PartialOrderGraph, poa_consensus
from repro.simulation.iid import IIDChannel

dna = st.text(alphabet="ACGT", min_size=1, max_size=30)


class TestGraphInvariants:
    @given(st.lists(dna, min_size=1, max_size=5))
    def test_paths_traverse_edges(self, sequences):
        graph = PartialOrderGraph()
        for sequence in sequences:
            graph.add_sequence(sequence)
        for path in graph.paths:
            for src, dst in zip(path, path[1:]):
                assert dst in graph.succs[src]
                assert src in graph.preds[dst]

    @given(st.lists(dna, min_size=1, max_size=5))
    def test_path_spells_its_read(self, sequences):
        graph = PartialOrderGraph()
        for sequence in sequences:
            graph.add_sequence(sequence)
        for sequence, path in zip(sequences, graph.paths):
            assert "".join(graph.bases[node] for node in path) == sequence

    @given(st.lists(dna, min_size=1, max_size=5))
    def test_columns_partition_nodes(self, sequences):
        graph = PartialOrderGraph()
        for sequence in sequences:
            graph.add_sequence(sequence)
        seen = []
        for column in graph.columns():
            seen.extend(column)
        assert sorted(seen) == list(range(len(graph.bases)))

    @given(st.lists(dna, min_size=1, max_size=5))
    def test_column_members_have_distinct_bases(self, sequences):
        graph = PartialOrderGraph()
        for sequence in sequences:
            graph.add_sequence(sequence)
        for column in graph.columns():
            bases = [graph.bases[node] for node in column]
            assert len(bases) == len(set(bases))

    @given(st.lists(dna, min_size=1, max_size=5))
    def test_every_path_node_belongs_to_a_column(self, sequences):
        # Note: a path may touch one aligned group more than once — POA
        # groups are not strict antichains (spoa behaves the same) — so we
        # assert membership, not uniqueness.
        graph = PartialOrderGraph()
        for sequence in sequences:
            graph.add_sequence(sequence)
        column_of = {}
        for index, column in enumerate(graph.columns()):
            for node in column:
                column_of[node] = index
        for path in graph.paths:
            assert all(node in column_of for node in path)


class TestConsensusProperties:
    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=1000))
    def test_consensus_deterministic(self, seed):
        rng = random.Random(seed)
        channel = IIDChannel.from_total_rate(0.08)
        reference = random_sequence(40, rng)
        reads = [channel.transmit(reference, rng) for _ in range(5)]
        reads = [read for read in reads if read] or [reference]
        assert poa_consensus(reads, 40) == poa_consensus(reads, 40)

    @settings(max_examples=20)
    @given(st.integers(min_value=1, max_value=1000))
    def test_trimming_never_exceeds_expected_length(self, seed):
        rng = random.Random(seed)
        channel = IIDChannel(p_ins=0.1, p_del=0.0, p_sub=0.02)
        reference = random_sequence(40, rng)
        reads = [channel.transmit(reference, rng) for _ in range(5)]
        assert len(poa_consensus(reads, expected_length=40)) <= 40
