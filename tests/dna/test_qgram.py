"""Tests for q-gram and w-gram signatures."""

import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dna.qgram import QGramSignature, WGramSignature, sample_grams

dna = st.text(alphabet="ACGT", max_size=80)


class TestSampleGrams:
    def test_count_and_length(self, rng):
        grams = sample_grams(10, 4, rng)
        assert len(grams) == 10
        assert all(len(g) == 4 for g in grams)
        assert len(set(grams)) == 10

    def test_too_many_raises(self, rng):
        with pytest.raises(ValueError):
            sample_grams(5, 1, rng)  # only 4 distinct 1-grams exist

    def test_invalid_length(self, rng):
        with pytest.raises(ValueError):
            sample_grams(1, 0, rng)

    def test_deterministic(self):
        a = sample_grams(8, 3, random.Random(1))
        b = sample_grams(8, 3, random.Random(1))
        assert a == b


class TestQGramSignature:
    def test_presence_bits(self):
        scheme = QGramSignature(["AC", "GG", "TT"])
        signature = scheme.compute("ACGT")
        assert signature.tolist() == [1, 0, 0]

    def test_distance_is_hamming(self):
        a = np.array([1, 0, 1, 0], dtype=np.uint8)
        b = np.array([1, 1, 0, 0], dtype=np.uint8)
        assert QGramSignature.distance(a, b) == 2

    def test_empty_grams_raise(self):
        with pytest.raises(ValueError):
            QGramSignature([])

    @given(dna)
    def test_self_distance_zero(self, sequence):
        scheme = QGramSignature(sample_grams(16, 3, random.Random(0)))
        signature = scheme.compute(sequence)
        assert QGramSignature.distance(signature, signature) == 0


class TestWGramSignature:
    def test_positions(self):
        scheme = WGramSignature(["AC", "GT", "CA"])
        signature = scheme.compute("ACGT")
        assert signature.tolist() == [0, 2, 4]  # CA absent -> sentinel len=4

    def test_distance_is_l1(self):
        a = np.array([0, 5, 10], dtype=np.int32)
        b = np.array([2, 5, 4], dtype=np.int32)
        assert WGramSignature.distance(a, b) == 8

    @given(dna, dna)
    def test_distance_symmetric(self, a, b):
        scheme = WGramSignature(sample_grams(8, 3, random.Random(0)))
        sig_a, sig_b = scheme.compute(a), scheme.compute(b)
        assert WGramSignature.distance(sig_a, sig_b) == WGramSignature.distance(
            sig_b, sig_a
        )

    @given(dna)
    def test_first_occurrence_semantics(self, sequence):
        grams = sample_grams(8, 2, random.Random(0))
        scheme = WGramSignature(grams)
        signature = scheme.compute(sequence)
        for gram, position in zip(grams, signature.tolist()):
            found = sequence.find(gram)
            assert position == (len(sequence) if found < 0 else found)


def _scalar_qgram(grams, sequence):
    return [1 if gram in sequence else 0 for gram in grams]


def _scalar_wgram(grams, sequence):
    positions = []
    for gram in grams:
        found = sequence.find(gram)
        positions.append(len(sequence) if found < 0 else found)
    return positions


class TestVectorisedPaths:
    """The radix fast path and the batch builder must match the scalar loop."""

    @given(st.lists(dna, max_size=30), st.integers(min_value=2, max_value=4))
    def test_batch_matches_scalar(self, sequences, gram_length):
        grams = sample_grams(12, gram_length, random.Random(3))
        q, w = QGramSignature(grams), WGramSignature(grams)
        for sequence, q_sig, w_sig in zip(
            sequences, q.compute_batch(sequences), w.compute_batch(sequences)
        ):
            assert q_sig.tolist() == _scalar_qgram(grams, sequence)
            assert w_sig.tolist() == _scalar_wgram(grams, sequence)

    def test_batch_with_edge_reads(self):
        grams = sample_grams(12, 3, random.Random(5))
        q, w = QGramSignature(grams), WGramSignature(grams)
        # Short reads (fewer than gram_length windows), empty reads, and a
        # pair of reads whose concatenation would create a phantom window
        # across the boundary.
        reads = ["", "A", "AC", grams[0], grams[0][:2], grams[0][2:] + grams[1]]
        for read, q_sig, w_sig in zip(reads, q.compute_batch(reads), w.compute_batch(reads)):
            assert q_sig.tolist() == _scalar_qgram(grams, read)
            assert w_sig.tolist() == _scalar_wgram(grams, read)

    def test_batch_empty(self):
        grams = sample_grams(4, 3, random.Random(5))
        assert QGramSignature(grams).compute_batch([]) == []
        assert WGramSignature(grams).compute_batch([]) == []

    def test_non_acgt_read_falls_back(self):
        grams = sample_grams(8, 2, random.Random(7))
        q, w = QGramSignature(grams), WGramSignature(grams)
        reads = ["ACGT", "ACNGT", "acgt", "ACéGT"]
        for read in reads:
            assert q.compute(read).tolist() == _scalar_qgram(grams, read)
            assert w.compute(read).tolist() == _scalar_wgram(grams, read)
        for read, q_sig, w_sig in zip(reads, q.compute_batch(reads), w.compute_batch(reads)):
            assert q_sig.tolist() == _scalar_qgram(grams, read)
            assert w_sig.tolist() == _scalar_wgram(grams, read)

    def test_mixed_length_grams_fall_back(self):
        # Mixed gram lengths disable the radix path entirely; results must
        # still match the scalar loop.
        scheme = QGramSignature(["AC", "GGT"])
        assert scheme.compute("ACGGTT").tolist() == [1, 1]
        batch = scheme.compute_batch(["ACGGTT", "TTTT"])
        assert [sig.tolist() for sig in batch] == [[1, 1], [0, 0]]

    def test_repeated_gram_first_occurrence_in_batch(self):
        # A gram occurring many times must report its FIRST position on
        # the batched path (regression: fancy-index assignment order).
        scheme = WGramSignature(["AAA", "CCC"])
        batch = scheme.compute_batch(["TAAAGAAA", "CCCC"])
        assert batch[0].tolist() == [1, 8]
        assert batch[1].tolist() == [4, 0]
