"""Shape and sanity tests for the kernel microbenchmark document."""

import json

import pytest

from repro.benchmarking.kernels import (
    KERNEL_BENCH_KIND,
    KERNEL_BENCH_SCHEMA_VERSION,
    load_kernel_bench,
    render_kernel_bench,
    run_kernel_bench,
    validate_kernel_bench,
)


def tiny_report():
    return run_kernel_bench(
        git_sha="test",
        pairs=10,
        strand_nt=40,
        edits=4,
        reads=30,
        rs_rows=32,
        verdict_lanes=24,
        consensus_clusters=6,
        poa_short_clusters=2,
        poa_long_clusters=1,
        poa_long_nt=400,
        poa_workers=0,  # skip the process-pool invariance rerun in tests
        seed=3,
    )


class TestKernelBench:
    def test_document_shape(self):
        report = tiny_report()
        assert report["kind"] == KERNEL_BENCH_KIND
        assert report["schema_version"] == KERNEL_BENCH_SCHEMA_VERSION
        kernels = {row["kernel"] for row in report["distance"]["kernels"]}
        assert kernels == {"reference_dp", "banded", "myers"}
        flavours = {row["flavour"] for row in report["signatures"]["flavours"]}
        assert flavours == {"qgram", "wgram"}

    def test_speedups_recorded(self):
        report = tiny_report()
        for row in report["distance"]["kernels"]:
            assert row["seconds"] > 0
            assert row["speedup_vs_reference"] > 0
        reference = report["distance"]["kernels"][0]
        assert reference["speedup_vs_reference"] == 1.0

    def test_correctness_fields_true(self):
        report = tiny_report()
        for row in report["distance"]["kernels"]:
            assert row["verdicts_match_reference"] is True
        for row in report["signatures"]["flavours"]:
            assert row["matches_scalar"] is True

    def test_reed_solomon_section(self):
        report = tiny_report()
        section = report["reed_solomon"]
        assert section["workload"]["rows"] == 32
        rows = {row["kernel"]: row for row in section["kernels"]}
        assert set(rows) == {"encode", "syndrome_screen", "erasure_solve"}
        for row in rows.values():
            assert row["matches_oracle"] is True
            assert row["scalar_seconds"] > 0
            assert row["batched_seconds"] > 0
            assert row["speedup"] > 0
            assert row["rows"] > 0

    def test_edit_verdict_batch_section(self):
        report = tiny_report()
        section = report["edit_verdict_batch"]
        assert section["workload"]["lanes"] == 24
        rows = {row["kernel"]: row for row in section["kernels"]}
        assert set(rows) == {"masks_reuse", "uint64_lanes"}
        for row in rows.values():
            assert row["matches_scalar"] is True
            assert row["scalar_seconds"] > 0
            assert row["batched_seconds"] > 0
            assert row["speedup"] > 0
            assert row["lanes"] == 24

    def test_consensus_section(self):
        report = tiny_report()
        section = report["consensus"]
        assert section["workload"]["clusters"] == 6
        rows = {row["kernel"]: row for row in section["kernels"]}
        assert set(rows) == {"majority", "bma"}
        for row in rows.values():
            assert row["matches_scalar"] is True
            assert row["scalar_seconds"] > 0
            assert row["batched_seconds"] > 0
            assert row["speedup"] > 0
            assert row["clusters"] == 6

    def test_consensus_poa_section(self):
        report = tiny_report()
        section = report["consensus_poa"]
        assert section["workload"]["long_nt"] == 400
        rows = {row["kernel"]: row for row in section["kernels"]}
        assert set(rows) == {
            "banded_short",
            "windowed_short",
            "banded_kb",
            "windowed_kb",
        }
        for row in rows.values():
            assert row["scalar_seconds"] > 0
            assert row["batched_seconds"] > 0
            assert row["speedup_vs_scalar"] > 0
        # Short strands delegate, so the windowed bytes are exact; the
        # banded and kb rows gate on the edit-distance tolerance.
        assert rows["windowed_short"]["matches_scalar"] is True
        assert rows["banded_short"]["within_tolerance"] is True
        assert rows["banded_kb"]["within_tolerance"] is True
        assert rows["windowed_kb"]["within_tolerance"] is True
        # poa_workers=0 skips the process-pool rerun entirely.
        assert "workers_invariant" not in rows["windowed_kb"]

    def test_render_mentions_kernels(self):
        rendered = render_kernel_bench(tiny_report())
        assert "myers" in rendered
        assert "qgram" in rendered
        assert "erasure_solve" in rendered
        assert "uint64_lanes" in rendered
        assert "majority" in rendered
        assert "oracle ok" in rendered
        assert "windowed_kb" in rendered
        assert "exact ok" in rendered


class TestValidateAndLoad:
    def test_validate_accepts_fresh_report(self):
        validate_kernel_bench(tiny_report())

    def test_validate_rejects_wrong_kind(self):
        report = tiny_report()
        report["kind"] = "something-else"
        with pytest.raises(ValueError):
            validate_kernel_bench(report)

    def test_validate_rejects_future_schema(self):
        report = tiny_report()
        report["schema_version"] = KERNEL_BENCH_SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            validate_kernel_bench(report)

    def test_validate_rejects_missing_section(self):
        report = tiny_report()
        del report["distance"]
        with pytest.raises(ValueError):
            validate_kernel_bench(report)

    def test_v1_documents_without_rs_section_still_load(self):
        report = tiny_report()
        del report["reed_solomon"]
        del report["edit_verdict_batch"]
        del report["consensus"]
        report["schema_version"] = 1
        validate_kernel_bench(report)

    def test_v2_documents_without_v3_sections_still_load(self):
        report = tiny_report()
        del report["edit_verdict_batch"]
        del report["consensus"]
        report["schema_version"] = 2
        validate_kernel_bench(report)

    def test_v3_requires_new_sections(self):
        report = tiny_report()
        del report["consensus"]
        with pytest.raises(ValueError):
            validate_kernel_bench(report)

    def test_v3_documents_without_poa_section_still_load(self):
        report = tiny_report()
        del report["consensus_poa"]
        report["schema_version"] = 3
        validate_kernel_bench(report)

    def test_v4_requires_poa_section(self):
        report = tiny_report()
        del report["consensus_poa"]
        with pytest.raises(ValueError):
            validate_kernel_bench(report)

    def test_load_roundtrip(self, tmp_path):
        report = tiny_report()
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps(report))
        assert load_kernel_bench(path) == report
