"""Shape and sanity tests for the kernel microbenchmark document."""

from repro.benchmarking.kernels import (
    KERNEL_BENCH_KIND,
    KERNEL_BENCH_SCHEMA_VERSION,
    render_kernel_bench,
    run_kernel_bench,
)


def tiny_report():
    return run_kernel_bench(
        git_sha="test", pairs=10, strand_nt=40, edits=4, reads=30, seed=3
    )


class TestKernelBench:
    def test_document_shape(self):
        report = tiny_report()
        assert report["kind"] == KERNEL_BENCH_KIND
        assert report["schema_version"] == KERNEL_BENCH_SCHEMA_VERSION
        kernels = {row["kernel"] for row in report["distance"]["kernels"]}
        assert kernels == {"reference_dp", "banded", "myers"}
        flavours = {row["flavour"] for row in report["signatures"]["flavours"]}
        assert flavours == {"qgram", "wgram"}

    def test_speedups_recorded(self):
        report = tiny_report()
        for row in report["distance"]["kernels"]:
            assert row["seconds"] > 0
            assert row["speedup_vs_reference"] > 0
        reference = report["distance"]["kernels"][0]
        assert reference["speedup_vs_reference"] == 1.0

    def test_render_mentions_kernels(self):
        rendered = render_kernel_bench(tiny_report())
        assert "myers" in rendered
        assert "qgram" in rendered
