"""Suite registry tests (no pipeline runs — those live in `repro bench`)."""

import pytest

from repro.benchmarking import SUITES, get_suite


class TestRegistry:
    def test_known_suites(self):
        assert set(SUITES) == {"smoke", "fig3", "table2", "fig6"}

    def test_unknown_suite_lists_known(self):
        with pytest.raises(ValueError, match="smoke"):
            get_suite("nope")

    def test_workload_names_unique(self):
        for suite in SUITES:
            names = [workload.name for workload in get_suite(suite)]
            assert len(names) == len(set(names))


class TestWorkloads:
    def test_data_is_deterministic(self):
        first, second = get_suite("smoke")[0], get_suite("smoke")[0]
        assert first.make_data() == second.make_data()
        assert len(first.make_data()) == first.data_bytes

    def test_configs_are_fresh_objects(self):
        workload = get_suite("smoke")[0]
        assert workload.make_config() is not workload.make_config()

    def test_configs_are_seeded(self):
        for suite in SUITES:
            for workload in get_suite(suite):
                assert workload.make_config().seed is not None
