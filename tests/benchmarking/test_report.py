"""BENCH document build/validate/write/load tests."""

import pytest

from repro.benchmarking import (
    BENCH_SCHEMA_VERSION,
    build_bench_report,
    default_output_path,
    load_bench_report,
    validate_bench_report,
    write_bench_report,
)


def latency_summary(p50=0.5):
    return {"p50": p50, "p99": p50 * 1.2, "mean": p50, "min": p50 * 0.9, "max": p50 * 1.3}


def workload_row(name="wl", p50=0.5, **quality_overrides):
    quality = {
        "schema_version": 1,
        "channel": {"substitution_rate": 0.02, "insertion_rate": 0.02, "deletion_rate": 0.02},
        "clustering": {"purity": 1.0, "fragmentation": 0, "under_merged": 0, "over_merged": 0},
        "reconstruction": {"exact_recovery_fraction": 1.0, "mean_edit_distance": 0.0},
        "decoding": {
            "failed_rows": 0,
            "symbols_corrected": 0,
            "erasures": 0,
            "clean_row_fraction": 1.0,
        },
    }
    quality.update(quality_overrides)
    return {
        "name": name,
        "params": {"error_rate": 0.04},
        "data_bytes": 400,
        "repeats": 3,
        "success_rate": 1.0,
        "latency_s": {"encoding": latency_summary(0.01), "total": latency_summary(p50)},
        "throughput_bytes_per_s": 400 / p50,
        "quality": quality,
    }


def bench_report(**kwargs):
    return build_bench_report("smoke", [workload_row()], git_sha="deadbeef", **kwargs)


class TestBuild:
    def test_top_level_shape(self):
        report = bench_report()
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        assert report["kind"] == "repro-bench"
        assert report["suite"] == "smoke"
        assert report["git_sha"] == "deadbeef"
        validate_bench_report(report)

    def test_default_output_path_names_suite(self):
        assert default_output_path("smoke").name == "BENCH_smoke.json"


class TestValidate:
    def test_missing_top_level_key(self):
        report = bench_report()
        del report["git_sha"]
        with pytest.raises(ValueError, match="git_sha"):
            validate_bench_report(report)

    def test_wrong_kind(self):
        report = bench_report()
        report["kind"] = "something-else"
        with pytest.raises(ValueError, match="kind"):
            validate_bench_report(report)

    def test_newer_schema_rejected(self):
        report = bench_report()
        report["schema_version"] = BENCH_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            validate_bench_report(report)

    def test_no_workloads(self):
        report = bench_report()
        report["workloads"] = []
        with pytest.raises(ValueError, match="no workloads"):
            validate_bench_report(report)

    def test_workload_missing_quality(self):
        report = bench_report()
        del report["workloads"][0]["quality"]
        with pytest.raises(ValueError, match="quality"):
            validate_bench_report(report)

    def test_workload_missing_total_latency(self):
        report = bench_report()
        del report["workloads"][0]["latency_s"]["total"]
        with pytest.raises(ValueError, match="total latency"):
            validate_bench_report(report)

    def test_latency_summary_missing_percentile(self):
        report = bench_report()
        del report["workloads"][0]["latency_s"]["total"]["p99"]
        with pytest.raises(ValueError, match="p99"):
            validate_bench_report(report)

    def test_quality_without_schema_version(self):
        report = bench_report()
        report["workloads"][0]["quality"] = {"clustering": {}}
        with pytest.raises(ValueError, match="malformed quality"):
            validate_bench_report(report)


class TestDiskRoundTrip:
    def test_write_then_load(self, tmp_path):
        report = bench_report()
        path = write_bench_report(report, tmp_path / "BENCH_smoke.json")
        assert load_bench_report(path) == report

    def test_write_refuses_invalid(self, tmp_path):
        report = bench_report()
        report["workloads"] = []
        with pytest.raises(ValueError):
            write_bench_report(report, tmp_path / "bad.json")
        assert not (tmp_path / "bad.json").exists()
