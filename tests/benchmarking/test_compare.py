"""Regression-gate tests: identical runs pass, injected regressions fail."""

import copy

import pytest

from repro.benchmarking import (
    CompareThresholds,
    compare_kernel_reports,
    compare_reports,
    diff_metric_maps,
    render_comparison,
)
from tests.benchmarking.test_report import bench_report


class TestIdentity:
    def test_identical_reports_pass(self):
        report = bench_report()
        result = compare_reports(report, copy.deepcopy(report))
        assert result.ok
        assert result.regressions == []

    def test_render_mentions_verdict(self):
        report = bench_report()
        rendered = render_comparison(compare_reports(report, report))
        assert "OK (no regressions)" in rendered


class TestQualityRegressions:
    def test_halved_purity_fails(self):
        baseline = bench_report()
        new = copy.deepcopy(baseline)
        new["workloads"][0]["quality"]["clustering"]["purity"] = 0.5
        result = compare_reports(baseline, new)
        assert not result.ok
        assert any("purity" in line for line in result.regressions)

    def test_doubled_observed_rate_fails_either_direction(self):
        baseline = bench_report()
        worse = copy.deepcopy(baseline)
        worse["workloads"][0]["quality"]["channel"]["substitution_rate"] = 0.04
        assert not compare_reports(baseline, worse).ok
        # Observed rates must *match* the baseline: an improbable halving
        # signals a channel bug just as much as a doubling.
        better = copy.deepcopy(baseline)
        better["workloads"][0]["quality"]["channel"]["substitution_rate"] = 0.005
        assert not compare_reports(baseline, better).ok

    def test_doubled_corrections_fails(self):
        baseline = bench_report()
        baseline["workloads"][0]["quality"]["decoding"]["symbols_corrected"] = 40
        new = copy.deepcopy(baseline)
        new["workloads"][0]["quality"]["decoding"]["symbols_corrected"] = 80
        result = compare_reports(baseline, new)
        assert not result.ok

    def test_small_drift_within_tolerance_passes(self):
        baseline = bench_report()
        new = copy.deepcopy(baseline)
        new["workloads"][0]["quality"]["clustering"]["purity"] = 0.995
        assert compare_reports(baseline, new).ok

    def test_improvement_passes(self):
        baseline = bench_report()
        baseline["workloads"][0]["quality"]["reconstruction"][
            "exact_recovery_fraction"
        ] = 0.8
        new = copy.deepcopy(baseline)
        new["workloads"][0]["quality"]["reconstruction"][
            "exact_recovery_fraction"
        ] = 1.0
        assert compare_reports(baseline, new).ok

    def test_missing_workload_fails(self):
        baseline = bench_report()
        new = copy.deepcopy(baseline)
        new["workloads"][0]["name"] = "renamed"
        result = compare_reports(baseline, new)
        assert any("missing" in line for line in result.regressions)

    def test_suite_mismatch_fails(self):
        baseline = bench_report()
        new = copy.deepcopy(baseline)
        new["suite"] = "fig3"
        assert not compare_reports(baseline, new).ok


class TestLatencyGate:
    def test_slower_than_ratio_fails(self):
        baseline = bench_report()
        new = copy.deepcopy(baseline)
        new["workloads"][0]["latency_s"]["total"]["p50"] = 1.0
        result = compare_reports(baseline, new)
        assert any("latency" in line for line in result.regressions)

    def test_quality_only_skips_latency(self):
        baseline = bench_report()
        new = copy.deepcopy(baseline)
        new["workloads"][0]["latency_s"]["total"]["p50"] = 10.0
        thresholds = CompareThresholds(quality_only=True)
        assert compare_reports(baseline, new, thresholds).ok

    def test_sub_10ms_noise_ignored(self):
        baseline = bench_report()
        baseline["workloads"][0]["latency_s"]["total"]["p50"] = 0.001
        new = copy.deepcopy(baseline)
        new["workloads"][0]["latency_s"]["total"]["p50"] = 0.008
        assert compare_reports(baseline, new).ok


class TestThresholds:
    def test_validation(self):
        with pytest.raises(ValueError):
            CompareThresholds(max_latency_ratio=0)
        with pytest.raises(ValueError):
            CompareThresholds(quality_tolerance=-0.1)

    def test_custom_tolerance_loosens_gate(self):
        baseline = bench_report()
        new = copy.deepcopy(baseline)
        new["workloads"][0]["quality"]["clustering"]["purity"] = 0.5
        loose = CompareThresholds(quality_tolerance=0.6)
        assert compare_reports(baseline, new, loose).ok


class TestIdenticalQualityGate:
    def test_identical_quality_passes(self):
        report = bench_report()
        thresholds = CompareThresholds(identical_quality=True, quality_only=True)
        result = compare_reports(report, copy.deepcopy(report), thresholds)
        assert result.ok

    def test_any_quality_drift_fails(self):
        baseline = bench_report()
        drifted = copy.deepcopy(baseline)
        # A drift far inside the tolerant gate's slack must still fail the
        # exact gate: worker-count sweeps may not move quality at all.
        row = drifted["workloads"][0]
        row["quality"]["reconstruction"]["mean_edit_distance"] += 1e-9
        thresholds = CompareThresholds(identical_quality=True, quality_only=True)
        result = compare_reports(baseline, drifted, thresholds)
        assert not result.ok
        assert any("byte-identical" in line for line in result.regressions)


def kernel_report():
    """A minimal kernel-bench document for gate tests (no timing runs)."""
    return {
        "kind": "repro-kernel-bench",
        "schema_version": 2,
        "distance": {
            "kernels": [
                {
                    "kernel": "myers",
                    "verdicts_match_reference": True,
                    "speedup_vs_reference": 40.0,
                }
            ]
        },
        "signatures": {
            "flavours": [
                {"flavour": "qgram", "matches_scalar": True, "speedup": 2.0}
            ]
        },
        "reed_solomon": {
            "kernels": [
                {"kernel": "encode", "matches_oracle": True, "speedup": 12.0},
                {"kernel": "erasure_solve", "matches_oracle": True, "speedup": 20.0},
            ]
        },
        "consensus_poa": {
            "kernels": [
                {
                    "kernel": "windowed_short",
                    "matches_scalar": True,
                    "speedup_vs_scalar": 1.0,
                },
                {
                    "kernel": "windowed_kb",
                    "within_tolerance": True,
                    "workers_invariant": True,
                    "speedup_vs_scalar": 6.0,
                },
            ]
        },
    }


class TestKernelGate:
    def test_identical_reports_pass(self):
        result = compare_kernel_reports(kernel_report(), kernel_report())
        assert result.ok
        assert result.warnings == []

    def test_correctness_flip_is_regression(self):
        new = kernel_report()
        new["reed_solomon"]["kernels"][0]["matches_oracle"] = False
        result = compare_kernel_reports(kernel_report(), new)
        assert not result.ok
        assert any("matches_oracle" in line for line in result.regressions)

    def test_correctness_field_disappearing_is_regression(self):
        new = kernel_report()
        del new["distance"]["kernels"][0]["verdicts_match_reference"]
        result = compare_kernel_reports(kernel_report(), new)
        assert not result.ok

    def test_new_correctness_field_is_not_a_regression(self):
        baseline = kernel_report()
        del baseline["signatures"]["flavours"][0]["matches_scalar"]
        result = compare_kernel_reports(baseline, kernel_report())
        assert result.ok

    def test_speed_drop_warns_but_passes(self):
        new = kernel_report()
        new["reed_solomon"]["kernels"][0]["speedup"] = 2.0
        result = compare_kernel_reports(kernel_report(), new)
        assert result.ok
        assert any("speedup" in line for line in result.warnings)

    def test_small_speed_drop_does_not_warn(self):
        new = kernel_report()
        new["reed_solomon"]["kernels"][0]["speedup"] = 10.0
        result = compare_kernel_reports(kernel_report(), new)
        assert result.ok
        assert result.warnings == []

    def test_missing_kernel_is_regression(self):
        new = kernel_report()
        new["reed_solomon"]["kernels"].pop()
        result = compare_kernel_reports(kernel_report(), new)
        assert not result.ok
        assert any("erasure_solve" in line for line in result.regressions)

    def test_missing_section_is_regression(self):
        new = kernel_report()
        del new["reed_solomon"]
        result = compare_kernel_reports(kernel_report(), new)
        assert not result.ok

    def test_v1_baseline_without_rs_section_passes(self):
        baseline = kernel_report()
        del baseline["reed_solomon"]
        baseline["schema_version"] = 1
        result = compare_kernel_reports(baseline, kernel_report())
        assert result.ok

    def test_tolerance_flip_is_regression(self):
        new = kernel_report()
        new["consensus_poa"]["kernels"][1]["within_tolerance"] = False
        result = compare_kernel_reports(kernel_report(), new)
        assert not result.ok
        assert any("within_tolerance" in line for line in result.regressions)

    def test_worker_invariance_flip_is_regression(self):
        new = kernel_report()
        new["consensus_poa"]["kernels"][1]["workers_invariant"] = False
        result = compare_kernel_reports(kernel_report(), new)
        assert not result.ok
        assert any("workers_invariant" in line for line in result.regressions)

    def test_poa_speedup_drop_warns_but_passes(self):
        new = kernel_report()
        new["consensus_poa"]["kernels"][1]["speedup_vs_scalar"] = 1.5
        result = compare_kernel_reports(kernel_report(), new)
        assert result.ok
        assert any("speedup_vs_scalar" in line for line in result.warnings)

    def test_render_mentions_warnings(self):
        new = kernel_report()
        new["reed_solomon"]["kernels"][0]["speedup"] = 1.0
        rendered = render_comparison(
            compare_kernel_reports(kernel_report(), new)
        )
        assert "warnings (1):" in rendered
        assert "OK (no regressions)" in rendered

    def test_invalid_ratio_raises(self):
        with pytest.raises(ValueError):
            compare_kernel_reports(kernel_report(), kernel_report(), 0)


class TestDiffMetricMaps:
    def test_identical_maps_pass(self):
        result = diff_metric_maps({"a": 1.0, "b": 0.5}, {"a": 1.0, "b": 0.5})
        assert result.ok
        assert len(result.deltas) == 2

    def test_movement_past_tolerance_is_regression_both_directions(self):
        for new_value in (0.7, 1.3):
            result = diff_metric_maps({"a": 1.0}, {"a": new_value}, tolerance=0.1)
            assert not result.ok
            assert any("drifted" in line for line in result.regressions)

    def test_movement_within_tolerance_passes(self):
        assert diff_metric_maps({"a": 1.0}, {"a": 1.05}, tolerance=0.1).ok

    def test_slack_absorbs_absolute_noise_near_zero(self):
        assert diff_metric_maps({"a": 0.0}, {"a": 1e-12}, slack=1e-9).ok
        assert not diff_metric_maps({"a": 0.0}, {"a": 1e-6}, slack=1e-9).ok

    def test_new_key_warns_but_passes(self):
        result = diff_metric_maps({}, {"fresh": 1.0})
        assert result.ok
        assert any("no history" in warning for warning in result.warnings)

    def test_missing_key_is_regression(self):
        result = diff_metric_maps({"gone": 1.0}, {})
        assert not result.ok

    def test_message_names_workload_and_baseline(self):
        result = diff_metric_maps(
            {"a": 1.0}, {"a": 2.0}, workload="run-42", baseline_name="trailing 3"
        )
        assert any(
            "run-42" in line and "trailing 3" in line
            for line in result.regressions
        )

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_metric_maps({}, {}, tolerance=-0.1)
