"""Bench runner rows: shape and the load-imbalance rollup."""

from repro.benchmarking.report import build_bench_report, validate_bench_report
from repro.benchmarking.runner import STAGES, run_workload
from repro.benchmarking.suites import get_suite


class TestRunWorkload:
    def test_row_includes_load_imbalance_rollup(self):
        workload = get_suite("smoke")[0]
        row = run_workload(workload)
        assert isinstance(row["load_imbalance"], dict)
        # The pipeline's fan-out sites record one gauge per calling span;
        # every rolled-up value is max/mean >= 1.0 by construction.
        assert row["load_imbalance"]
        for span, value in row["load_imbalance"].items():
            assert isinstance(span, str)
            assert value >= 1.0

    def test_row_validates_as_bench_workload(self):
        workload = get_suite("smoke")[0]
        row = run_workload(workload)
        assert set(row["latency_s"]) == set(STAGES)
        validate_bench_report(build_bench_report("smoke", [row], git_sha="test"))
